// Package telemetry is the observability subsystem: a concurrent metrics
// registry (counters, gauges, fixed-bucket histograms, labeled families),
// span-style structured event tracing emitted as JSON lines, and an HTTP
// exposition server serving Prometheus text, run snapshots, and pprof.
//
// The package is stdlib-only and sits at the leaf of the dependency graph:
// every other internal package may import it, it imports none of them.
//
// Telemetry is off by default. Every instrument holds a pointer to its
// registry's enabled flag and checks it first, so the disabled hot path is
// one atomic load and a predictable branch — cheap enough to leave the
// instrumentation compiled into the protocol's inner loops. Enable it
// globally with Enable(true), by mounting the HTTP server (Serve /
// EnsureServer), or per run via chc.RunConfig.TelemetryAddr and the
// chcrun -metrics-addr flag.
//
// Metric naming follows the Prometheus convention
// chc_<subsystem>_<quantity>[_total|_seconds]: counters end in _total,
// durations are histograms in seconds, gauges are bare quantities. Spans
// form the hierarchy run → instance → round → phase through their
// attributes (run id, instance, proc, round) rather than through nesting,
// so a sink can reassemble the tree from a flat JSON-lines stream.
package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MetricType discriminates the instrument kinds held by a Registry.
type MetricType string

// Instrument kinds, named after their Prometheus exposition types.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// DefBuckets covers the repo's latency range: microsecond LP solves through
// multi-second recovery waits. Values are seconds.
var DefBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// RoundBuckets covers decided-round counts; t_end for practical parameter
// sets lands well under a few hundred rounds.
var RoundBuckets = []float64{1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 256, 512}

// WideBuckets stretches the latency range up to a minute for instruments
// watching pathological storage (injected fsync delays, sick disks) where
// DefBuckets would pile everything into the overflow bucket. Values are
// seconds.
var WideBuckets = []float64{
	1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Registry holds a flat namespace of instruments. The zero value is not
// usable; construct with NewRegistry or use the process-wide Default.
type Registry struct {
	on atomic.Bool

	mu      sync.RWMutex
	fams    map[string]*family
	hbounds map[string][]float64 // per-family histogram bucket overrides
	lcaps   map[string]int       // per-family label-cardinality caps
}

// family is one named metric with its (possibly labeled) children.
type family struct {
	name   string
	help   string
	typ    MetricType
	labels []string // label names; empty for unlabeled metrics

	mu       sync.RWMutex
	children map[string]*cell // keyed by joined label values
	order    []string         // registration order of children keys
	bounds   []float64        // histogram families: bucket override (nil = caller's)
	lcap     int              // max distinct label sets; 0 = unlimited
	lcount   int              // label sets created, excluding the overflow child

	// collect, when non-nil, overrides the stored children at read time:
	// the family is a pull-style collector (CounterFunc / GaugeFunc).
	collect func() float64
}

// metric is the value holder of one (family, label values) pair.
type metric interface {
	snapshotValue() Sample
}

// cell pairs a metric with the label values it was created under, so
// snapshots never have to reverse the map key (label values may contain
// any byte, including the key separator).
type cell struct {
	values []string
	m      metric
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry used by all package-level
// instrumentation across the repo.
func Default() *Registry { return defaultRegistry }

// NewRegistry constructs an empty, disabled registry. Tests use private
// registries to stay independent of the process-wide instrumentation.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// SetEnabled flips metric collection on or off and reports the previous
// state. Disabled instruments drop updates at the cost of one atomic load.
func (r *Registry) SetEnabled(on bool) bool { return r.on.Swap(on) }

// Enabled reports whether the registry is collecting.
func (r *Registry) Enabled() bool { return r.on.Load() }

// Enable flips the default registry and reports the previous state.
func Enable(on bool) bool { return defaultRegistry.SetEnabled(on) }

// Enabled reports whether the default registry is collecting.
func Enabled() bool { return defaultRegistry.Enabled() }

// sanitizeName maps an arbitrary string onto the Prometheus metric/label
// name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*. Invalid runes become '_' so a
// dynamically constructed name can never corrupt the exposition format.
func sanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// labelKey joins label values into a unique map key: each value is length-
// prefixed so no byte sequence inside a value can collide with another
// value set.
func labelKey(values []string) string {
	var b strings.Builder
	for _, v := range values {
		fmt.Fprintf(&b, "%d:%s", len(v), v)
	}
	return b.String()
}

// getFamily returns the family registered under name, creating it on first
// use. Re-registration with a conflicting type or label arity panics: that
// is a programming error, not a runtime condition.
func (r *Registry) getFamily(name, help string, typ MetricType, labels []string) *family {
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s/%d labels, was %s/%d", name, typ, len(labels), f.typ, len(f.labels)))
		}
		return f
	}
	clean := make([]string, len(labels))
	for i, l := range labels {
		clean[i] = sanitizeName(l)
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   clean,
		children: make(map[string]*cell),
	}
	if typ == TypeHistogram {
		f.bounds = r.hbounds[name] // override set before registration
	}
	f.lcap = r.lcaps[name] // cardinality cap set before registration
	r.fams[name] = f
	return f
}

// overflowLabel is the label value new series collapse into once a family's
// cardinality cap is reached.
const overflowLabel = "other"

// SetLabelCardinality caps the number of distinct label sets a labeled
// family may create, identified by metric name. Once limit live series
// exist, further label combinations are routed into a single overflow
// series whose every label value is "other" (the overflow series itself
// does not count against the cap). Like SetHistogramBuckets, the cap may be
// set before or after the family is registered; series that already exist
// are never evicted. limit <= 0 removes the cap.
//
// This guards families labeled by unbounded runtime values — per-link,
// per-peer, per-path series under fault injection — from growing without
// bound while keeping the aggregate count observable.
func (r *Registry) SetLabelCardinality(name string, limit int) {
	name = sanitizeName(name)
	r.mu.Lock()
	if r.lcaps == nil {
		r.lcaps = make(map[string]int)
	}
	r.lcaps[name] = limit
	f := r.fams[name]
	r.mu.Unlock()
	if f == nil {
		return
	}
	f.mu.Lock()
	f.lcap = limit
	f.mu.Unlock()
}

// SetLabelCardinality caps a labeled family's series count on the default
// registry.
func SetLabelCardinality(name string, limit int) {
	defaultRegistry.SetLabelCardinality(name, limit)
}

// effBounds resolves the bucket layout for a new histogram child: the family
// override when one is set, else the caller's default. Called under f.mu
// (from inside child's creation section).
func (f *family) effBounds(def []float64) []float64 {
	if f.bounds != nil {
		return f.bounds
	}
	return def
}

// SetHistogramBuckets overrides the bucket upper bounds of one histogram
// family, identified by metric name. Existing children are re-bucketed in
// place — prior observations are discarded, since they were binned under the
// old layout — and children created later inherit the override; call sites
// that cached a child *Histogram need no re-wiring. Setting the override
// before the family is registered is valid (it applies at registration), so
// a main() can widen, say, fsync-latency buckets before any package-level
// instrument observes. nil or empty bounds fall back to DefBuckets.
//
// Overrides are meant for startup configuration: observations racing a
// re-bucket may land in the retiring state and be lost with it.
func (r *Registry) SetHistogramBuckets(name string, bounds []float64) {
	name = sanitizeName(name)
	r.mu.Lock()
	if r.hbounds == nil {
		r.hbounds = make(map[string][]float64)
	}
	r.hbounds[name] = bounds
	f := r.fams[name]
	r.mu.Unlock()
	if f == nil || f.typ != TypeHistogram {
		return
	}
	f.mu.Lock()
	f.bounds = bounds
	for _, c := range f.children {
		if h, ok := c.m.(*Histogram); ok {
			h.rebucket(bounds)
		}
	}
	f.mu.Unlock()
}

// SetHistogramBuckets overrides a histogram family's buckets on the default
// registry.
func SetHistogramBuckets(name string, bounds []float64) {
	defaultRegistry.SetHistogramBuckets(name, bounds)
}

// child returns the metric cell for the given label values, creating it
// with mk on first use.
func (f *family) child(values []string, mk func() metric) metric {
	key := labelKey(values)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c.m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c.m
	}
	overflow := false
	if f.lcap > 0 && f.lcount >= f.lcap {
		// Cardinality cap reached: collapse this new label set into the
		// shared overflow series instead of growing the family.
		overflow = true
		values = make([]string, len(f.labels))
		for i := range values {
			values[i] = overflowLabel
		}
		key = labelKey(values)
		if c, ok := f.children[key]; ok {
			return c.m
		}
	}
	c = &cell{values: append([]string(nil), values...), m: mk()}
	f.children[key] = c
	f.order = append(f.order, key)
	if !overflow {
		f.lcount++
	}
	return c.m
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing integer. The hot path is one
// enabled check plus one atomic add.
type Counter struct {
	on *atomic.Bool
	v  atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0; negative deltas are ignored to keep the
// counter monotone).
func (c *Counter) Add(n int64) {
	if c == nil || !c.on.Load() || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count regardless of the enabled flag.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) snapshotValue() Sample { return Sample{Value: float64(c.v.Load())} }

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.getFamily(name, help, TypeCounter, nil)
	m := f.child(nil, func() metric { return &Counter{on: &r.on} })
	return m.(*Counter)
}

// CounterVec is a labeled family of counters.
type CounterVec struct {
	r *Registry
	f *family
}

// CounterVec registers (or finds) a counter family with the given label
// names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r: r, f: r.getFamily(name, help, TypeCounter, labels)}
}

// With returns the child counter for the given label values (one per label
// name, in order). Callers on hot paths should cache the child.
func (v *CounterVec) With(values ...string) *Counter {
	values = padValues(values, len(v.f.labels))
	m := v.f.child(values, func() metric { return &Counter{on: &v.r.on} })
	return m.(*Counter)
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is an arbitrary float64 that can go up and down. Stored as raw bits
// so Add can CAS without a mutex.
type Gauge struct {
	on   *atomic.Bool
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil || !g.on.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) snapshotValue() Sample { return Sample{Value: g.Value()} }

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.getFamily(name, help, TypeGauge, nil)
	m := f.child(nil, func() metric { return &Gauge{on: &r.on} })
	return m.(*Gauge)
}

// GaugeVec is a labeled family of gauges.
type GaugeVec struct {
	r *Registry
	f *family
}

// GaugeVec registers (or finds) a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r: r, f: r.getFamily(name, help, TypeGauge, labels)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	values = padValues(values, len(v.f.labels))
	m := v.f.child(values, func() metric { return &Gauge{on: &v.r.on} })
	return m.(*Gauge)
}

// ---------------------------------------------------------------------------
// Pull-style collectors

// funcMetric reads its value from a callback at snapshot time; updates cost
// nothing because there are none — the producer keeps its own counters and
// the registry mirrors them on demand.
type funcMetric struct{ fn func() float64 }

func (m *funcMetric) snapshotValue() Sample { return Sample{Value: m.fn()} }

// CounterFunc registers a counter whose value is read from fn at exposition
// time. Used to mirror pre-existing atomic counters (geometry cache stats,
// component-local tallies) into the registry without touching their hot
// paths.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.getFamily(name, help, TypeCounter, nil)
	f.mu.Lock()
	f.collect = fn
	f.mu.Unlock()
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.getFamily(name, help, TypeGauge, nil)
	f.mu.Lock()
	f.collect = fn
	f.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Histogram

// Histogram counts observations into fixed buckets and tracks count, sum,
// min and max. The hot path is lock-free: one enabled check, a bucket
// search over a small sorted slice, and a handful of atomic updates.
//
// The whole mutable state lives behind one atomic pointer so a bucket-layout
// override (SetHistogramBuckets) can swap it wholesale: call sites that
// cached the *Histogram at init time pick up the new layout on their next
// observation, and every observation lands consistently in exactly one
// state — count, sum, min, max and buckets can never disagree about which
// layout they describe.
type Histogram struct {
	on *atomic.Bool
	st atomic.Pointer[histState]
}

// histState is one immutable-layout generation of a histogram.
type histState struct {
	bounds  []float64 // upper bounds, sorted ascending; +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	minBits atomic.Uint64 // float64 bits; initialised to +Inf
	maxBits atomic.Uint64 // float64 bits; initialised to -Inf
}

func newHistState(bounds []float64) *histState {
	st := &histState{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
	st.minBits.Store(math.Float64bits(math.Inf(1)))
	st.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return st
}

func newHistogram(on *atomic.Bool, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	h := &Histogram{on: on}
	h.st.Store(newHistState(bounds))
	return h
}

// rebucket swaps in a fresh state with the given bounds, discarding prior
// observations (they were binned under the old layout and cannot be
// re-binned). Observations racing the swap may land in the retiring state
// and be lost with it — overrides are meant to run at startup, before the
// instruments are hot.
func (h *Histogram) rebucket(bounds []float64) {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	h.st.Store(newHistState(bounds))
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.on.Load() || math.IsNaN(v) {
		return
	}
	st := h.st.Load()
	idx := sort.SearchFloat64s(st.bounds, v) // first bound >= v
	st.buckets[idx].Add(1)
	st.count.Add(1)
	casAdd(&st.sumBits, v)
	casMin(&st.minBits, v)
	casMax(&st.maxBits, v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.st.Load().count.Load() }

// Max returns the largest observed value, or -Inf when empty. Exact maxima
// matter here: experiment E19 asserts the observed rounds-to-decide never
// exceed the paper's closed-form bound, and a bucket upper bound would be
// too coarse for that comparison.
func (h *Histogram) Max() float64 { return math.Float64frombits(h.st.Load().maxBits.Load()) }

// Min returns the smallest observed value, or +Inf when empty.
func (h *Histogram) Min() float64 { return math.Float64frombits(h.st.Load().minBits.Load()) }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.st.Load().sumBits.Load()) }

func casAdd(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func casMin(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func casMax(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (h *Histogram) snapshotValue() Sample {
	st := h.st.Load()
	hs := &HistogramSample{
		Count:   st.count.Load(),
		Sum:     math.Float64frombits(st.sumBits.Load()),
		Buckets: make([]Bucket, 0, len(st.bounds)+1),
	}
	if hs.Count > 0 {
		hs.Min = math.Float64frombits(st.minBits.Load())
		hs.Max = math.Float64frombits(st.maxBits.Load())
	}
	var cum uint64
	for i, b := range st.bounds {
		cum += st.buckets[i].Load()
		hs.Buckets = append(hs.Buckets, Bucket{UpperBound: b, CumulativeCount: cum})
	}
	cum += st.buckets[len(st.bounds)].Load()
	hs.Buckets = append(hs.Buckets, Bucket{UpperBound: math.Inf(1), CumulativeCount: cum})
	return Sample{Histogram: hs}
}

// Histogram registers (or finds) an unlabeled histogram with the given
// bucket upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.getFamily(name, help, TypeHistogram, nil)
	m := f.child(nil, func() metric { return newHistogram(&r.on, f.effBounds(bounds)) })
	return m.(*Histogram)
}

// HistogramVec is a labeled family of histograms sharing one bucket layout.
type HistogramVec struct {
	r      *Registry
	f      *family
	bounds []float64
}

// HistogramVec registers (or finds) a histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r: r, f: r.getFamily(name, help, TypeHistogram, labels), bounds: bounds}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	values = padValues(values, len(v.f.labels))
	m := v.f.child(values, func() metric { return newHistogram(&v.r.on, v.f.effBounds(v.bounds)) })
	return m.(*Histogram)
}

// padValues forces the label value count to match the label name count so a
// miscounted call site degrades into empty labels instead of a panic.
func padValues(values []string, n int) []string {
	if len(values) == n {
		return values
	}
	out := make([]string, n)
	copy(out, values)
	return out
}

// ---------------------------------------------------------------------------
// Snapshot

// Snapshot is a point-in-time copy of every instrument in a registry. It is
// the aggregate surfaced as chc.Telemetry in RunResult/BatchResult and the
// payload of chcrun -telemetry-json.
type Snapshot struct {
	Generated time.Time      `json:"generated"`
	Enabled   bool           `json:"enabled"`
	Metrics   []MetricFamily `json:"metrics"`
}

// MetricFamily is one named metric with all of its labeled samples.
type MetricFamily struct {
	Name    string     `json:"name"`
	Help    string     `json:"help,omitempty"`
	Type    MetricType `json:"type"`
	Samples []Sample   `json:"samples"`
}

// Sample is one (label values → value) cell. Histogram is set instead of
// Value for histogram families.
type Sample struct {
	Labels    map[string]string `json:"labels,omitempty"`
	Value     float64           `json:"value"`
	Histogram *HistogramSample  `json:"histogram,omitempty"`
}

// HistogramSample is the frozen state of one histogram. Bucket counts are
// cumulative, Prometheus-style.
type HistogramSample struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Buckets []Bucket `json:"buckets"`
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	UpperBound      float64 `json:"le"`
	CumulativeCount uint64  `json:"count"`
}

// bucketJSON is the wire form of Bucket: the overflow bucket's +Inf bound is
// not representable as a bare JSON number, so it travels as the string
// "+Inf" (mirroring the text exposition's le="+Inf").
type bucketJSON struct {
	UpperBound      any    `json:"le"`
	CumulativeCount uint64 `json:"count"`
}

// MarshalJSON encodes the bucket, stringifying a non-finite bound.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := any(b.UpperBound)
	if math.IsInf(b.UpperBound, 0) || math.IsNaN(b.UpperBound) {
		le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return json.Marshal(bucketJSON{UpperBound: le, CumulativeCount: b.CumulativeCount})
}

// UnmarshalJSON accepts both numeric and stringified bounds.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw bucketJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	switch le := raw.UpperBound.(type) {
	case float64:
		b.UpperBound = le
	case string:
		f, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("telemetry: bucket bound %q: %w", le, err)
		}
		b.UpperBound = f
	default:
		return fmt.Errorf("telemetry: bucket bound has type %T", raw.UpperBound)
	}
	b.CumulativeCount = raw.CumulativeCount
	return nil
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the containing bucket, clamped to the observed min/max. Good
// enough for reporting latency percentiles from fixed buckets.
func (h *HistogramSample) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := q * float64(h.Count)
	lower, prev := 0.0, uint64(0)
	for _, b := range h.Buckets {
		if float64(b.CumulativeCount) >= rank {
			upper := b.UpperBound
			if math.IsInf(upper, 1) {
				return h.Max
			}
			width := upper - lower
			inBucket := float64(b.CumulativeCount - prev)
			if inBucket <= 0 {
				return math.Min(math.Max(upper, h.Min), h.Max)
			}
			v := lower + width*(rank-float64(prev))/inBucket
			return math.Min(math.Max(v, h.Min), h.Max)
		}
		lower, prev = b.UpperBound, b.CumulativeCount
	}
	return h.Max
}

// Snapshot freezes the registry. Families and samples are sorted by name
// and label values so output is deterministic.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.RUnlock()

	snap := &Snapshot{Generated: time.Now(), Enabled: r.Enabled()}
	for _, f := range fams {
		snap.Metrics = append(snap.Metrics, f.snapshot())
	}
	return snap
}

func (f *family) snapshot() MetricFamily {
	mf := MetricFamily{Name: f.name, Help: f.help, Type: f.typ}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.collect != nil {
		mf.Samples = []Sample{{Value: f.collect()}}
		return mf
	}
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	for _, key := range keys {
		c := f.children[key]
		s := c.m.snapshotValue()
		if len(f.labels) > 0 {
			s.Labels = make(map[string]string, len(f.labels))
			for i, name := range f.labels {
				if i < len(c.values) {
					s.Labels[name] = c.values[i]
				} else {
					s.Labels[name] = ""
				}
			}
		}
		mf.Samples = append(mf.Samples, s)
	}
	return mf
}

// Find returns the snapshot family with the given name, or nil.
func (s *Snapshot) Find(name string) *MetricFamily {
	if s == nil {
		return nil
	}
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			return &s.Metrics[i]
		}
	}
	return nil
}

// Total sums the values of every sample in the family (counters/gauges) —
// convenient when a family is labeled but the caller wants the aggregate.
func (mf *MetricFamily) Total() float64 {
	if mf == nil {
		return 0
	}
	var t float64
	for _, s := range mf.Samples {
		t += s.Value
	}
	return t
}

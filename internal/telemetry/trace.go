package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one structured trace record. Span ends carry their duration;
// point events leave Dur zero. The run → instance → round → phase hierarchy
// lives in Attrs (run, instance, proc, round, ...), so a flat JSON-lines
// stream can be re-assembled into the tree.
type Event struct {
	Time  time.Time      `json:"ts"`
	Name  string         `json:"name"`
	Dur   time.Duration  `json:"dur_ns,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Sink receives trace events. Implementations must be safe for concurrent
// use; Emit is called from protocol hot paths while tracing is enabled.
type Sink interface {
	Emit(ev Event)
}

// sinkBox wraps the interface so an atomic.Pointer can hold it.
type sinkBox struct{ s Sink }

var activeSink atomic.Pointer[sinkBox]

// SetSink installs the process-wide trace sink and returns the previous
// one. A nil sink disables tracing; while disabled, span creation costs one
// atomic load.
func SetSink(s Sink) Sink {
	var prev *sinkBox
	if s == nil {
		prev = activeSink.Swap(nil)
	} else {
		prev = activeSink.Swap(&sinkBox{s: s})
	}
	if prev == nil {
		return nil
	}
	return prev.s
}

// TraceOn reports whether a sink is installed. Call sites pay one atomic
// load; attribute maps are only built when this returns true.
func TraceOn() bool { return activeSink.Load() != nil }

// Emit records a point event (no duration) if tracing is enabled.
func Emit(name string, attrs map[string]any) {
	box := activeSink.Load()
	if box == nil {
		return
	}
	box.s.Emit(Event{Time: time.Now(), Name: name, Attrs: attrs})
}

// Span is an in-flight timed region. A nil *Span is valid and inert, so
// call sites can unconditionally End() the result of StartSpan.
type Span struct {
	name  string
	start time.Time
	attrs map[string]any
}

// StartSpan opens a span; returns nil (inert) when tracing is disabled.
// The attrs map is retained until End and must not be mutated afterwards.
func StartSpan(name string, attrs map[string]any) *Span {
	if activeSink.Load() == nil {
		return nil
	}
	return &Span{name: name, start: time.Now(), attrs: attrs}
}

// End closes the span, merging extra attributes into the ones given at
// start, and emits it with its measured duration.
func (s *Span) End(extra map[string]any) {
	if s == nil {
		return
	}
	box := activeSink.Load()
	if box == nil {
		return
	}
	attrs := s.attrs
	if len(extra) > 0 {
		if attrs == nil {
			attrs = extra
		} else {
			for k, v := range extra {
				attrs[k] = v
			}
		}
	}
	box.s.Emit(Event{Time: s.start, Name: s.name, Dur: time.Since(s.start), Attrs: attrs})
}

// JSONSink writes each event as one JSON object per line.
type JSONSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONSink wraps w; writes are serialised internally.
func NewJSONSink(w io.Writer) *JSONSink {
	return &JSONSink{enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (j *JSONSink) Emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	_ = j.enc.Encode(ev) // tracing is best-effort; a broken sink must not stall the protocol
}

// MemorySink buffers events in memory — the measurement substrate for
// experiment E19 and the trace tests.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// NewMemorySink returns an empty buffer sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Emit implements Sink.
func (m *MemorySink) Emit(ev Event) {
	m.mu.Lock()
	m.events = append(m.events, ev)
	m.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Reset discards the buffer.
func (m *MemorySink) Reset() {
	m.mu.Lock()
	m.events = nil
	m.mu.Unlock()
}

package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4): # HELP and # TYPE lines per family, then one sample line
// per (labels) cell; histograms expand into _bucket{le=...}, _sum and
// _count series.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	for _, mf := range snap.Metrics {
		if err := writeFamilyText(w, mf); err != nil {
			return err
		}
	}
	return nil
}

func writeFamilyText(w io.Writer, mf MetricFamily) error {
	if mf.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", mf.Name, escapeHelp(mf.Help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", mf.Name, mf.Type); err != nil {
		return err
	}
	for _, s := range mf.Samples {
		if mf.Type == TypeHistogram {
			if err := writeHistogramText(w, mf.Name, s); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", mf.Name, formatLabels(s.Labels, "", ""), formatValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogramText(w io.Writer, name string, s Sample) error {
	h := s.Histogram
	if h == nil {
		return nil
	}
	for _, b := range h.Buckets {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = formatValue(b.UpperBound)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, formatLabels(s.Labels, "le", le), b.CumulativeCount); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, formatLabels(s.Labels, "", ""), formatValue(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, formatLabels(s.Labels, "", ""), h.Count)
	return err
}

// formatLabels renders {k="v",...}, optionally appending one extra pair
// (used for the histogram le label). Returns "" when there are no labels.
func formatLabels(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, k := range keys {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes backslash, double quote and newline per the
// exposition format. Carriage returns are escaped too (an extension the
// package's own parser understands) because line-based readers strip a
// trailing \r and would otherwise corrupt the value.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ { // bytes, not runes: invalid UTF-8 must survive
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline (quotes are legal in HELP text).
func escapeHelp(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// TextSample is one parsed sample line of a Prometheus text exposition.
type TextSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseText is a strict parser for the subset of the Prometheus text format
// that WriteText emits. It exists so the exposition tests and the fuzz
// target can verify round-trips without external dependencies, and so the
// examples can read values back off a live /metrics endpoint.
func ParseText(r io.Reader) ([]TextSample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []TextSample
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if err := checkComment(text); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			continue
		}
		s, err := parseSampleLine(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func checkComment(text string) error {
	fields := strings.SplitN(text, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return fmt.Errorf("malformed comment %q", text)
	}
	if !validName(fields[2]) {
		return fmt.Errorf("invalid metric name %q", fields[2])
	}
	if fields[1] == "TYPE" {
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", text)
		}
		switch MetricType(fields[3]) {
		case TypeCounter, TypeGauge, TypeHistogram:
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

func parseSampleLine(text string) (TextSample, error) {
	s := TextSample{}
	rest := text
	// Metric name runs until '{' or ' '.
	end := strings.IndexAny(rest, "{ ")
	if end <= 0 {
		return s, fmt.Errorf("malformed sample %q", text)
	}
	s.Name = rest[:end]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, text)
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimLeft(rest, " ")
	if rest == "" {
		return s, fmt.Errorf("missing value in %q", text)
	}
	// Value is the first field; an optional timestamp may follow.
	valStr := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		valStr = rest[:sp]
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", valStr, text)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a {k="v",...} block, returning the remainder.
func parseLabels(rest string) (map[string]string, string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		if i >= len(rest) {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if rest[i] == '}' {
			return labels, rest[i+1:], nil
		}
		if rest[i] == ',' {
			i++
			continue
		}
		eq := strings.IndexByte(rest[i:], '=')
		if eq <= 0 {
			return nil, "", fmt.Errorf("malformed label pair")
		}
		name := rest[i : i+eq]
		if !validName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(rest) || rest[i] != '"' {
			return nil, "", fmt.Errorf("label value not quoted")
		}
		val, n, err := unescapeQuoted(rest[i:])
		if err != nil {
			return nil, "", err
		}
		labels[name] = val
		i += n
	}
}

// unescapeQuoted parses a leading quoted string with \\, \" and \n escapes,
// returning the value and the number of input bytes consumed.
func unescapeQuoted(s string) (string, int, error) {
	var b strings.Builder
	i := 1 // past opening quote
	for i < len(s) {
		c := s[i]
		switch c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", s[i+1])
			}
			i += 2
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

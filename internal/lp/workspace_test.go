package lp

import (
	"math"
	"math/rand"
	"testing"
)

const wsEps = 1e-9

// randomBoxProblem builds a bounded LP over a random box with random cuts,
// guaranteed feasible (the origin-centred box always is).
func randomBoxProblem(rng *rand.Rand, nVars, nCuts int) *Problem {
	cons := make([]Constraint, 0, 2*nVars+nCuts)
	for j := 0; j < nVars; j++ {
		up := make([]float64, nVars)
		up[j] = 1
		lo := make([]float64, nVars)
		lo[j] = -1
		cons = append(cons,
			Constraint{Coeffs: up, Op: LE, RHS: 1 + rng.Float64()},
			Constraint{Coeffs: lo, Op: LE, RHS: 1 + rng.Float64()},
		)
	}
	for c := 0; c < nCuts; c++ {
		row := make([]float64, nVars)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		cons = append(cons, Constraint{Coeffs: row, Op: LE, RHS: 1 + rng.Float64()})
	}
	obj := make([]float64, nVars)
	for j := range obj {
		obj[j] = rng.NormFloat64()
	}
	free := make([]bool, nVars)
	for j := range free {
		free[j] = true
	}
	return &Problem{NumVars: nVars, Objective: obj, Minimize: true, Constraints: cons, Free: free}
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestSolveWithMatchesSolveBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ws := NewWorkspace()
	for trial := 0; trial < 200; trial++ {
		p := randomBoxProblem(rng, 2+trial%4, trial%8)
		ref, err := p.Solve(wsEps)
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		got, err := p.SolveWith(ws, wsEps)
		if err != nil {
			t.Fatalf("trial %d: SolveWith: %v", trial, err)
		}
		if ref.Status != got.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, ref.Status, got.Status)
		}
		if ref.Status != Optimal {
			continue
		}
		if !bitsEqual(ref.X, got.X) || math.Float64bits(ref.Value) != math.Float64bits(got.Value) {
			t.Fatalf("trial %d: SolveWith diverges from Solve:\n  ref %v (%v)\n  got %v (%v)",
				trial, ref.X, ref.Value, got.X, got.Value)
		}
	}
}

func TestSolutionSurvivesWorkspaceReuse(t *testing.T) {
	// Solution.X must be freshly allocated: solving a second problem with
	// the same workspace must not clobber the first solution.
	rng := rand.New(rand.NewSource(11))
	ws := NewWorkspace()
	p1 := randomBoxProblem(rng, 3, 4)
	s1, err := p1.SolveWith(ws, wsEps)
	if err != nil || s1.Status != Optimal {
		t.Fatalf("first solve: %v %v", s1, err)
	}
	snapshot := append([]float64(nil), s1.X...)
	for i := 0; i < 50; i++ {
		p := randomBoxProblem(rng, 4, 8)
		if _, err := p.SolveWith(ws, wsEps); err != nil {
			t.Fatalf("reuse solve %d: %v", i, err)
		}
	}
	if !bitsEqual(s1.X, snapshot) {
		t.Fatalf("Solution.X changed under workspace reuse: %v -> %v", snapshot, s1.X)
	}
}

func TestHelpersWithMatchBaseBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ws := NewWorkspace()
	for trial := 0; trial < 50; trial++ {
		n := 2 + trial%3
		// Random bounded polyhedron: a box plus random cuts.
		var a [][]float64
		var b []float64
		for j := 0; j < n; j++ {
			up := make([]float64, n)
			up[j] = 1
			lo := make([]float64, n)
			lo[j] = -1
			a = append(a, up, lo)
			b = append(b, 1+rng.Float64(), 1+rng.Float64())
		}
		for c := 0; c < 4; c++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			a = append(a, row)
			b = append(b, 1+rng.Float64())
		}
		dir := make([]float64, n)
		for j := range dir {
			dir[j] = rng.NormFloat64()
		}

		x1, v1, err1 := MaximizeOverHalfspaces(dir, a, b, wsEps)
		x2, v2, err2 := MaximizeOverHalfspacesWith(ws, dir, a, b, wsEps)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: maximize err %v vs %v", trial, err1, err2)
		}
		if err1 == nil && (!bitsEqual(x1, x2) || math.Float64bits(v1) != math.Float64bits(v2)) {
			t.Fatalf("trial %d: MaximizeOverHalfspacesWith diverges", trial)
		}

		x1, v1, err1 = MinimizeOverHalfspaces(dir, a, b, wsEps)
		x2, v2, err2 = MinimizeOverHalfspacesWith(ws, dir, a, b, wsEps)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: minimize err %v vs %v", trial, err1, err2)
		}
		if err1 == nil && (!bitsEqual(x1, x2) || math.Float64bits(v1) != math.Float64bits(v2)) {
			t.Fatalf("trial %d: MinimizeOverHalfspacesWith diverges", trial)
		}

		c1, r1, err1 := ChebyshevCenter(a, b, wsEps)
		c2, r2, err2 := ChebyshevCenterWith(ws, a, b, wsEps)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: chebyshev err %v vs %v", trial, err1, err2)
		}
		if err1 == nil && (!bitsEqual(c1, c2) || math.Float64bits(r1) != math.Float64bits(r2)) {
			t.Fatalf("trial %d: ChebyshevCenterWith diverges", trial)
		}

		// Membership test: centre of the box is inside the hull of the box
		// corners in 2-D; reuse the random dir as a query scaled inward.
		verts := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
		q := []float64{0.25 + rng.Float64() / 2, 0.25 + rng.Float64()/2}
		w1, err1 := ConvexWeights(verts, q, wsEps)
		w2, err2 := ConvexWeightsWith(ws, verts, q, wsEps)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: weights err %v vs %v", trial, err1, err2)
		}
		if err1 == nil && !bitsEqual(w1, w2) {
			t.Fatalf("trial %d: ConvexWeightsWith diverges", trial)
		}
	}
}

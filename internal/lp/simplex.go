// Package lp implements a small, dependency-free linear programming solver:
// a dense two-phase tableau simplex with Bland's anti-cycling rule.
//
// The solver targets the modest problem sizes that arise inside the convex
// hull consensus library (dimensions up to ~6, at most a few hundred
// constraints): Chebyshev centres of halfspace intersections, support
// functions, convex-combination membership tests, and linear cost
// minimisation over polytopes.
//
// Callers on hot paths should allocate a Workspace once and use SolveWith
// (or the ...With helper variants): all tableau and scratch memory then
// comes from a reusable arena and the solver performs no steady-state
// allocations beyond the returned Solution.
package lp

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"chc/internal/geom/pool"
)

// Status reports the outcome of an LP solve.
type Status int

// Possible solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

// String renders the status for logs and error messages.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota + 1 // <=
	EQ               // ==
	GE               // >=
)

// Constraint is a single linear constraint: Coeffs · x  Op  RHS.
type Constraint struct {
	Coeffs []float64
	Op     Op
	RHS    float64
}

// Problem is a linear program over NumVars variables.
//
// By default every variable is non-negative; set Free[j] = true to make
// variable j unrestricted in sign (it is split internally). The objective is
// minimised when Minimize is true and maximised otherwise.
type Problem struct {
	NumVars     int
	Objective   []float64
	Minimize    bool
	Constraints []Constraint
	Free        []bool // optional; nil means all variables >= 0
}

// Solution is the result of a successful or unsuccessful solve.
type Solution struct {
	Status Status
	X      []float64 // variable values (valid only when Status == Optimal)
	Value  float64   // objective value (valid only when Status == Optimal)
}

// ErrBadProblem is returned for structurally invalid problems.
var ErrBadProblem = errors.New("lp: malformed problem")

const maxPivots = 200000

// Workspace holds the reusable scratch memory of the solver: the simplex
// tableau, cost rows, column maps, and the constraint scaffolding the
// ...With helpers build. A Workspace must not be used from more than one
// goroutine at a time; zero value is ready to use.
type Workspace struct {
	arena pool.Arena
	cons  []Constraint
}

// NewWorkspace returns an empty solver workspace.
func NewWorkspace() *Workspace { return new(Workspace) }

// constraints hands out a reusable zeroed []Constraint of length n.
func (w *Workspace) constraints(n int) []Constraint {
	if cap(w.cons) < n {
		w.cons = make([]Constraint, n)
	}
	c := w.cons[:n]
	for i := range c {
		c[i] = Constraint{}
	}
	return c
}

var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

func getWS() *Workspace { return wsPool.Get().(*Workspace) }

func putWS(w *Workspace) {
	w.arena.Reset()
	wsPool.Put(w)
}

// Solve runs two-phase simplex on the problem with tolerance eps.
// Infeasible and Unbounded outcomes are reported in Solution.Status, not as
// errors; errors indicate malformed input or pivot-limit exhaustion.
// Scratch memory comes from a pooled workspace.
func (p *Problem) Solve(eps float64) (*Solution, error) {
	return p.SolveWith(nil, eps)
}

// SolveWith is Solve using the caller's workspace for all internal scratch
// (nil borrows one from a shared pool). The workspace's arena is rewound
// before SolveWith returns, so any memory previously drawn from it is
// recycled; Solution.X is always freshly allocated and safe to retain.
func (p *Problem) SolveWith(ws *Workspace, eps float64) (*Solution, error) {
	mSolves.Inc()
	if p.NumVars <= 0 {
		return nil, fmt.Errorf("%w: NumVars = %d", ErrBadProblem, p.NumVars)
	}
	if len(p.Objective) != p.NumVars {
		return nil, fmt.Errorf("%w: objective has %d coefficients for %d variables", ErrBadProblem, len(p.Objective), p.NumVars)
	}
	if p.Free != nil && len(p.Free) != p.NumVars {
		return nil, fmt.Errorf("%w: Free has %d entries for %d variables", ErrBadProblem, len(p.Free), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != p.NumVars {
			return nil, fmt.Errorf("%w: constraint %d has %d coefficients for %d variables", ErrBadProblem, i, len(c.Coeffs), p.NumVars)
		}
		switch c.Op {
		case LE, EQ, GE:
		default:
			return nil, fmt.Errorf("%w: constraint %d has invalid op %d", ErrBadProblem, i, c.Op)
		}
	}

	if ws == nil {
		ws = getWS()
		defer putWS(ws)
	}
	a := &ws.arena
	defer a.Reset()

	// Map to internal columns: free variables become (x+ - x-).
	nCols := 0
	colOf := a.Ints(p.NumVars) // first internal column of variable j
	split := a.Bools(p.NumVars)
	for j := 0; j < p.NumVars; j++ {
		colOf[j] = nCols
		if p.Free != nil && p.Free[j] {
			split[j] = true
			nCols += 2
		} else {
			nCols++
		}
	}

	obj := a.Floats(nCols)
	sign := 1.0
	if !p.Minimize {
		sign = -1.0 // maximise by minimising the negation
	}
	for j := 0; j < p.NumVars; j++ {
		obj[colOf[j]] = sign * p.Objective[j]
		if split[j] {
			obj[colOf[j]+1] = -sign * p.Objective[j]
		}
	}

	rows := a.Rows(len(p.Constraints), nCols)
	for i, c := range p.Constraints {
		row := rows[i]
		for j, v := range c.Coeffs {
			row[colOf[j]] = v
			if split[j] {
				row[colOf[j]+1] = -v
			}
		}
	}

	xInternal, val, status, err := solveStandardized(a, obj, rows, p.Constraints, eps)
	if err != nil {
		return nil, err
	}
	sol := &Solution{Status: status}
	if status != Optimal {
		return sol, nil
	}
	x := make([]float64, p.NumVars)
	for j := 0; j < p.NumVars; j++ {
		x[j] = xInternal[colOf[j]]
		if split[j] {
			x[j] -= xInternal[colOf[j]+1]
		}
	}
	sol.X = x
	sol.Value = sign * val
	return sol, nil
}

// solveStandardized minimises obj·x subject to rows[i]·x (cons[i].Op)
// cons[i].RHS, x >= 0, using a two-phase dense tableau. All scratch
// (including the returned x) is drawn from the arena; the caller copies out
// what it needs before rewinding.
func solveStandardized(a *pool.Arena, obj []float64, rows [][]float64, cons []Constraint, eps float64) ([]float64, float64, Status, error) {
	m := len(rows)
	n := len(obj)

	// Count slacks/surplus and artificials.
	nSlack := 0
	for _, c := range cons {
		if c.Op != EQ {
			nSlack++
		}
	}
	total := n + nSlack + m // reserve an artificial per row (not all used)
	width := total + 1      // includes RHS column

	// Build tableau rows; normalise RHS to be non-negative first.
	tab := a.Rows(m, width)
	basis := a.Ints(m)
	nArt := 0
	slackCol := n
	artCol := n + nSlack
	for i := 0; i < m; i++ {
		row := tab[i]
		copy(row, rows[i])
		b := cons[i].RHS
		op := cons[i].Op
		if b < 0 {
			for j := range row[:n] {
				row[j] = -row[j]
			}
			b = -b
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		switch op {
		case LE:
			row[slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			basis[i] = artCol
			artCol++
			nArt++
		case EQ:
			row[artCol] = 1
			basis[i] = artCol
			artCol++
			nArt++
		}
		row[width-1] = b // RHS stored in the last cell
	}

	// Phase 1: minimise sum of artificials (only if any were added).
	if nArt > 0 {
		cost := a.Floats(width)
		for i := 0; i < m; i++ {
			if basis[i] >= n+nSlack {
				// Artificial in basis: subtract its row from the cost row.
				for j := 0; j < width; j++ {
					cost[j] -= tab[i][j]
				}
			}
		}
		// The objective coefficients of artificials are 1; after the
		// subtraction above, reduced costs are correct with artificial
		// columns zeroed in basis rows. Mark artificial columns:
		for j := n + nSlack; j < total; j++ {
			cost[j]++
		}
		if err := pivotLoop(tab, cost, basis, total, eps, n+nSlack); err != nil {
			return nil, 0, 0, err
		}
		if basis[0] == -1 {
			// Phase 1 is bounded below by zero; hitting this means the
			// tableau degenerated numerically.
			return nil, 0, 0, errors.New("lp: phase-1 reported unbounded (numerical trouble)")
		}
		if cost[width-1] < -eps*float64(m+1) {
			// Residual artificial infeasibility (cost row holds -objective).
			return nil, 0, Infeasible, nil
		}
		// Drive any remaining artificials out of the basis.
		for i := 0; i < m; i++ {
			if basis[i] < n+nSlack {
				continue
			}
			// Find a non-artificial column with nonzero coefficient.
			replaced := false
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, i, j)
					replaced = true
					break
				}
			}
			if !replaced {
				// Row is redundant; zero it (keep artificial at value 0).
				for j := range tab[i] {
					if j != basis[i] {
						tab[i][j] = 0
					}
				}
				tab[i][width-1] = 0
			}
		}
	}

	// Phase 2: minimise the real objective. Forbid artificial columns.
	cost := a.Floats(width)
	copy(cost, obj)
	// Express the cost row in terms of the current basis.
	for i := 0; i < m; i++ {
		cj := cost[basis[i]]
		if cj == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			cost[j] -= cj * tab[i][j]
		}
	}
	if err := pivotLoop(tab, cost, basis, n+nSlack, eps, n+nSlack); err != nil {
		return nil, 0, 0, err
	}
	// Detect unboundedness: pivotLoop signals it via sentinel basis value.
	if basis[0] == -1 {
		return nil, 0, Unbounded, nil
	}

	x := a.Floats(total)
	for i := 0; i < m; i++ {
		x[basis[i]] = tab[i][width-1]
	}
	return x[:n], -cost[width-1], Optimal, nil
}

// pivotLoop runs simplex iterations on the tableau, minimising the cost row.
// Columns at index >= colLimit never enter the basis (used to exclude
// artificials in phase 2). artStart marks where artificial columns begin so
// Bland's rule can prefer driving them out. Unboundedness is signalled by
// setting basis[0] = -1.
func pivotLoop(tab [][]float64, cost []float64, basis []int, colLimit int, eps float64, artStart int) error {
	m := len(tab)
	width := len(cost)
	for iter := 0; iter < maxPivots; iter++ {
		// Bland's rule: entering column = smallest index with cost < -eps.
		enter := -1
		for j := 0; j < colLimit; j++ {
			if cost[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		// Ratio test; Bland's rule on ties: smallest basis index leaves.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][enter]
			if a <= eps {
				continue
			}
			ratio := tab[i][width-1] / a
			if ratio < bestRatio-eps {
				bestRatio, leave = ratio, i
			} else if ratio < bestRatio+eps && leave >= 0 {
				// Tie: prefer kicking out artificials, then Bland.
				bi, bl := basis[i], basis[leave]
				if (bi >= artStart && bl < artStart) || (bi < artStart) == (bl < artStart) && bi < bl {
					leave = i
				}
			}
		}
		if leave < 0 {
			basis[0] = -1 // unbounded
			return nil
		}
		pivot(tab, basis, leave, enter)
		// Update the cost row.
		ce := cost[enter]
		if ce != 0 {
			prow := tab[leave]
			for j := 0; j < width; j++ {
				cost[j] -= ce * prow[j]
			}
		}
	}
	return errors.New("lp: pivot limit exceeded")
}

// pivot performs a Gauss-Jordan pivot on tab[row][col] and updates the basis.
func pivot(tab [][]float64, basis []int, row, col int) {
	prow := tab[row]
	inv := 1 / prow[col]
	for j := range prow {
		prow[j] *= inv
	}
	prow[col] = 1 // exact
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		ri := tab[i]
		for j := range ri {
			ri[j] -= f * prow[j]
		}
		ri[col] = 0 // exact
	}
	basis[row] = col
}

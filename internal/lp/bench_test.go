package lp

import (
	"math/rand"
	"testing"
)

// randomLP builds a bounded feasible LP: minimise a random objective over a
// randomly rotated box with extra random cutting planes.
func randomLP(rng *rand.Rand, nVars, nCuts int) *Problem {
	var cons []Constraint
	for i := 0; i < nVars; i++ {
		up := make([]float64, nVars)
		up[i] = 1
		cons = append(cons, Constraint{Coeffs: up, Op: LE, RHS: 10})
		down := make([]float64, nVars)
		down[i] = -1
		cons = append(cons, Constraint{Coeffs: down, Op: LE, RHS: 10})
	}
	for c := 0; c < nCuts; c++ {
		row := make([]float64, nVars)
		for i := range row {
			row[i] = rng.NormFloat64()
		}
		cons = append(cons, Constraint{Coeffs: row, Op: LE, RHS: 5 + rng.Float64()*20})
	}
	obj := make([]float64, nVars)
	for i := range obj {
		obj[i] = rng.NormFloat64()
	}
	free := make([]bool, nVars)
	for i := range free {
		free[i] = true
	}
	return &Problem{NumVars: nVars, Objective: obj, Minimize: true, Constraints: cons, Free: free}
}

func benchSolve(b *testing.B, nVars, nCuts int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	problems := make([]*Problem, 16)
	for i := range problems {
		problems[i] = randomLP(rng, nVars, nCuts)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := problems[i%len(problems)].Solve(1e-9)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

func BenchmarkSolve3Vars16Cuts(b *testing.B)  { benchSolve(b, 3, 16) }
func BenchmarkSolve6Vars64Cuts(b *testing.B)  { benchSolve(b, 6, 64) }
func BenchmarkSolve3Vars256Cuts(b *testing.B) { benchSolve(b, 3, 256) }

func BenchmarkChebyshevCenter(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var a [][]float64
	var rhs []float64
	for c := 0; c < 60; c++ {
		row := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		a = append(a, row)
		rhs = append(rhs, 5+rng.Float64()*10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ChebyshevCenter(a, rhs, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvexWeights(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	verts := make([][]float64, 24)
	for i := range verts {
		verts[i] = []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
	}
	q := []float64{5, 5, 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Feasibility either way is fine; we measure solver throughput.
		_, _ = ConvexWeights(verts, q, 1e-9)
	}
}

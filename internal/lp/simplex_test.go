package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const testEps = 1e-9

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve(testEps)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestMaximizeSimple(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
	// Classic Dantzig example: optimum at (2, 6) with value 36.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{3, 5},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Op: LE, RHS: 4},
			{Coeffs: []float64{0, 2}, Op: LE, RHS: 12},
			{Coeffs: []float64{3, 2}, Op: LE, RHS: 18},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("Status = %v", sol.Status)
	}
	if math.Abs(sol.Value-36) > 1e-6 {
		t.Errorf("Value = %v, want 36", sol.Value)
	}
	if math.Abs(sol.X[0]-2) > 1e-6 || math.Abs(sol.X[1]-6) > 1e-6 {
		t.Errorf("X = %v, want (2,6)", sol.X)
	}
}

func TestMinimizeWithEquality(t *testing.T) {
	// min x + y s.t. x + 2y = 4, x,y >= 0 => (0,2), value 2.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Minimize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{1, 2}, Op: EQ, RHS: 4},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Value-2) > 1e-6 {
		t.Fatalf("got %v value %v, want optimal 2", sol.Status, sol.Value)
	}
}

func TestGEConstraints(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 => x=7,y=3, value 23.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{2, 3},
		Minimize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: GE, RHS: 10},
			{Coeffs: []float64{1, 0}, Op: GE, RHS: 2},
			{Coeffs: []float64{0, 1}, Op: GE, RHS: 3},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Value-23) > 1e-6 {
		t.Fatalf("got %v value %v, want optimal 23", sol.Status, sol.Value)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Minimize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Op: GE, RHS: 5},
			{Coeffs: []float64{1}, Op: LE, RHS: 3},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("Status = %v, want Infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Minimize:  false, // maximise x with x >= 0 only
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Op: GE, RHS: 0},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("Status = %v, want Unbounded", sol.Status)
	}
}

func TestFreeVariables(t *testing.T) {
	// min x s.t. x >= -5 with x free => -5.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Minimize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Op: GE, RHS: -5},
		},
		Free: []bool{true},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Value+5) > 1e-6 {
		t.Fatalf("got %v value %v, want optimal -5", sol.Status, sol.Value)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min y s.t. -x - y <= -4 (i.e. x + y >= 4), x <= 1, y free-ish >= 0.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{0, 1},
		Minimize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{-1, -1}, Op: LE, RHS: -4},
			{Coeffs: []float64{1, 0}, Op: LE, RHS: 1},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Value-3) > 1e-6 {
		t.Fatalf("got %v value %v, want optimal 3", sol.Status, sol.Value)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Degenerate vertex (multiple constraints active); Bland's rule must
	// still terminate. max x + y s.t. x <= 1, y <= 1, x + y <= 2.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Op: LE, RHS: 1},
			{Coeffs: []float64{0, 1}, Op: LE, RHS: 1},
			{Coeffs: []float64{1, 1}, Op: LE, RHS: 2},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Value-2) > 1e-6 {
		t.Fatalf("got %v value %v, want optimal 2", sol.Status, sol.Value)
	}
}

func TestBadProblems(t *testing.T) {
	cases := []*Problem{
		{NumVars: 0, Objective: nil},
		{NumVars: 2, Objective: []float64{1}},
		{NumVars: 1, Objective: []float64{1}, Free: []bool{true, false}},
		{NumVars: 1, Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1, 2}, Op: LE}}},
		{NumVars: 1, Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1}, Op: Op(99)}}},
	}
	for i, p := range cases {
		if _, err := p.Solve(testEps); !errors.Is(err, ErrBadProblem) {
			t.Errorf("case %d: err = %v, want ErrBadProblem", i, err)
		}
	}
}

func TestChebyshevCenterSquare(t *testing.T) {
	// Unit square [0,1]^2: centre (0.5,0.5), radius 0.5.
	a := [][]float64{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	b := []float64{1, 0, 1, 0}
	c, r, err := ChebyshevCenter(a, b, testEps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c[0]-0.5) > 1e-6 || math.Abs(c[1]-0.5) > 1e-6 || math.Abs(r-0.5) > 1e-6 {
		t.Errorf("centre %v radius %v", c, r)
	}
}

func TestChebyshevCenterInfeasible(t *testing.T) {
	a := [][]float64{{1}, {-1}}
	b := []float64{-1, -1} // x <= -1 and -x <= -1: empty
	if _, _, err := ChebyshevCenter(a, b, testEps); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestChebyshevCenterDegenerate(t *testing.T) {
	// The segment x in [0,2], y = 0 has radius 0 but is non-empty.
	a := [][]float64{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	b := []float64{2, 0, 0, 0}
	_, r, err := ChebyshevCenter(a, b, testEps)
	if err != nil {
		t.Fatal(err)
	}
	if r > 1e-6 {
		t.Errorf("radius = %v, want 0", r)
	}
}

func TestMinMaxOverHalfspaces(t *testing.T) {
	// Triangle (0,0),(4,0),(0,4): x >= 0, y >= 0, x + y <= 4.
	a := [][]float64{{-1, 0}, {0, -1}, {1, 1}}
	b := []float64{0, 0, 4}
	_, v, err := MaximizeOverHalfspaces([]float64{1, 0}, a, b, testEps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-4) > 1e-6 {
		t.Errorf("max x = %v, want 4", v)
	}
	_, v, err = MinimizeOverHalfspaces([]float64{1, 1}, a, b, testEps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v) > 1e-6 {
		t.Errorf("min x+y = %v, want 0", v)
	}
	// Unbounded direction.
	if _, _, err := MaximizeOverHalfspaces([]float64{1}, [][]float64{{-1}}, []float64{0}, testEps); !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestConvexWeights(t *testing.T) {
	verts := [][]float64{{0, 0}, {2, 0}, {0, 2}}
	w, err := ConvexWeights(verts, []float64{0.5, 0.5}, testEps)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	rec := []float64{0, 0}
	for i, wi := range w {
		if wi < -1e-9 {
			t.Errorf("negative weight %v", wi)
		}
		sum += wi
		rec[0] += wi * verts[i][0]
		rec[1] += wi * verts[i][1]
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("weights sum to %v", sum)
	}
	if math.Abs(rec[0]-0.5) > 1e-6 || math.Abs(rec[1]-0.5) > 1e-6 {
		t.Errorf("reconstruction = %v", rec)
	}
	// Outside the hull.
	if _, err := ConvexWeights(verts, []float64{3, 3}, testEps); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Status(42).String() != "Status(42)" {
		t.Error("Status.String mismatch")
	}
}

// Property: for random feasible bounded LPs over a box, the simplex optimum
// matches brute force over the box corners (objective linear => optimum at a
// corner of the box when the box is the only constraint set).
func TestSimplexMatchesBoxCorners(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		lo := make([]float64, n)
		hi := make([]float64, n)
		obj := make([]float64, n)
		for i := 0; i < n; i++ {
			lo[i] = rng.Float64()*4 - 2
			hi[i] = lo[i] + rng.Float64()*4 + 0.1
			obj[i] = rng.Float64()*4 - 2
		}
		var cons []Constraint
		for i := 0; i < n; i++ {
			row := make([]float64, n)
			row[i] = 1
			cons = append(cons, Constraint{Coeffs: row, Op: LE, RHS: hi[i]})
			rowNeg := make([]float64, n)
			rowNeg[i] = -1
			cons = append(cons, Constraint{Coeffs: rowNeg, Op: LE, RHS: -lo[i]})
		}
		free := make([]bool, n)
		for i := range free {
			free[i] = true
		}
		p := &Problem{NumVars: n, Objective: obj, Minimize: true, Constraints: cons, Free: free}
		sol, err := p.Solve(testEps)
		if err != nil || sol.Status != Optimal {
			return false
		}
		// Brute force: optimum of a linear function over a box.
		want := 0.0
		for i := 0; i < n; i++ {
			if obj[i] >= 0 {
				want += obj[i] * lo[i]
			} else {
				want += obj[i] * hi[i]
			}
		}
		return math.Abs(sol.Value-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ChebyshevCenter of a random box is its midpoint with radius
// half the smallest side.
func TestChebyshevCenterBoxes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		lo := make([]float64, n)
		hi := make([]float64, n)
		minSide := math.Inf(1)
		var a [][]float64
		var b []float64
		for i := 0; i < n; i++ {
			lo[i] = rng.Float64()*10 - 5
			hi[i] = lo[i] + 0.5 + rng.Float64()*5
			if s := hi[i] - lo[i]; s < minSide {
				minSide = s
			}
			row := make([]float64, n)
			row[i] = 1
			a = append(a, row)
			b = append(b, hi[i])
			rowNeg := make([]float64, n)
			rowNeg[i] = -1
			a = append(a, rowNeg)
			b = append(b, -lo[i])
		}
		c, r, err := ChebyshevCenter(a, b, testEps)
		if err != nil {
			return false
		}
		if math.Abs(r-minSide/2) > 1e-6 {
			return false
		}
		// Centre must be inside the box and at distance >= r from each face.
		for i := 0; i < n; i++ {
			if c[i] < lo[i]+r-1e-6 || c[i] > hi[i]-r+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

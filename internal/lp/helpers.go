package lp

import (
	"errors"
	"fmt"
	"math"
)

// ErrInfeasible is returned by helpers when the underlying LP has no
// feasible point.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded is returned by helpers when the underlying LP is unbounded.
var ErrUnbounded = errors.New("lp: unbounded")

// MinimizeOverHalfspaces minimises dir·x subject to a[i]·x <= b[i] with x
// free. It returns the minimiser and the optimal value.
func MinimizeOverHalfspaces(dir []float64, a [][]float64, b []float64, eps float64) ([]float64, float64, error) {
	return optimizeOverHalfspaces(nil, dir, a, b, eps, true)
}

// MaximizeOverHalfspaces maximises dir·x subject to a[i]·x <= b[i] with x
// free. It returns the maximiser and the optimal value.
func MaximizeOverHalfspaces(dir []float64, a [][]float64, b []float64, eps float64) ([]float64, float64, error) {
	return optimizeOverHalfspaces(nil, dir, a, b, eps, false)
}

// MinimizeOverHalfspacesWith is MinimizeOverHalfspaces drawing all scratch
// from the caller's workspace.
func MinimizeOverHalfspacesWith(ws *Workspace, dir []float64, a [][]float64, b []float64, eps float64) ([]float64, float64, error) {
	return optimizeOverHalfspaces(ws, dir, a, b, eps, true)
}

// MaximizeOverHalfspacesWith is MaximizeOverHalfspaces drawing all scratch
// from the caller's workspace.
func MaximizeOverHalfspacesWith(ws *Workspace, dir []float64, a [][]float64, b []float64, eps float64) ([]float64, float64, error) {
	return optimizeOverHalfspaces(ws, dir, a, b, eps, false)
}

func optimizeOverHalfspaces(ws *Workspace, dir []float64, a [][]float64, b []float64, eps float64, minimize bool) ([]float64, float64, error) {
	n := len(dir)
	if len(a) != len(b) {
		return nil, 0, fmt.Errorf("%w: %d constraint rows but %d bounds", ErrBadProblem, len(a), len(b))
	}
	if ws == nil {
		ws = getWS()
		defer putWS(ws)
	}
	cons := ws.constraints(len(a))
	for i := range a {
		if len(a[i]) != n {
			return nil, 0, fmt.Errorf("%w: row %d has %d coefficients for %d variables", ErrBadProblem, i, len(a[i]), n)
		}
		cons[i] = Constraint{Coeffs: a[i], Op: LE, RHS: b[i]}
	}
	free := ws.arena.Bools(n)
	for i := range free {
		free[i] = true
	}
	p := &Problem{NumVars: n, Objective: dir, Minimize: minimize, Constraints: cons, Free: free}
	sol, err := p.SolveWith(ws, eps)
	if err != nil {
		return nil, 0, err
	}
	switch sol.Status {
	case Optimal:
		return sol.X, sol.Value, nil
	case Infeasible:
		return nil, 0, ErrInfeasible
	default:
		return nil, 0, ErrUnbounded
	}
}

// ChebyshevCenter returns the centre and radius of the largest inscribed
// ball of the polyhedron {x : a[i]·x <= b[i]}. A zero radius indicates a
// degenerate (lower-dimensional) but non-empty polyhedron; ErrInfeasible an
// empty one; ErrUnbounded a polyhedron with unbounded inscribed balls.
func ChebyshevCenter(a [][]float64, b []float64, eps float64) (center []float64, radius float64, err error) {
	return ChebyshevCenterWith(nil, a, b, eps)
}

// ChebyshevCenterWith is ChebyshevCenter drawing all scratch from the
// caller's workspace. The returned centre is freshly allocated.
func ChebyshevCenterWith(ws *Workspace, a [][]float64, b []float64, eps float64) (center []float64, radius float64, err error) {
	if len(a) == 0 {
		return nil, 0, fmt.Errorf("%w: no constraints", ErrBadProblem)
	}
	n := len(a[0])
	if ws == nil {
		ws = getWS()
		defer putWS(ws)
	}
	// Variables: x (free, n of them) and r >= 0.
	// Maximise r subject to a[i]·x + ||a[i]|| r <= b[i].
	cons := ws.constraints(len(a))
	for i := range a {
		if len(a[i]) != n {
			return nil, 0, fmt.Errorf("%w: row %d has %d coefficients for %d variables", ErrBadProblem, i, len(a[i]), n)
		}
		var norm float64
		for _, v := range a[i] {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		row := ws.arena.Floats(n + 1)
		copy(row, a[i])
		row[n] = norm
		cons[i] = Constraint{Coeffs: row, Op: LE, RHS: b[i]}
	}
	obj := ws.arena.Floats(n + 1)
	obj[n] = 1
	free := ws.arena.Bools(n + 1)
	for i := 0; i < n; i++ {
		free[i] = true
	}
	p := &Problem{NumVars: n + 1, Objective: obj, Minimize: false, Constraints: cons, Free: free}
	sol, err := p.SolveWith(ws, eps)
	if err != nil {
		return nil, 0, err
	}
	switch sol.Status {
	case Optimal:
		return sol.X[:n], sol.X[n], nil
	case Infeasible:
		return nil, 0, ErrInfeasible
	default:
		return nil, 0, ErrUnbounded
	}
}

// ConvexWeights finds non-negative weights w with sum(w) = 1 such that
// sum_i w[i]*verts[i] = q, i.e. it certifies membership of q in the convex
// hull of verts. It returns ErrInfeasible when q is outside the hull.
func ConvexWeights(verts [][]float64, q []float64, eps float64) ([]float64, error) {
	return ConvexWeightsWith(nil, verts, q, eps)
}

// ConvexWeightsWith is ConvexWeights drawing all scratch from the caller's
// workspace. The returned weights are freshly allocated.
func ConvexWeightsWith(ws *Workspace, verts [][]float64, q []float64, eps float64) ([]float64, error) {
	if len(verts) == 0 {
		return nil, fmt.Errorf("%w: no vertices", ErrBadProblem)
	}
	d := len(q)
	k := len(verts)
	if ws == nil {
		ws = getWS()
		defer putWS(ws)
	}
	cons := ws.constraints(d + 1)
	for coord := 0; coord < d; coord++ {
		row := ws.arena.Floats(k)
		for i, v := range verts {
			if len(v) != d {
				return nil, fmt.Errorf("%w: vertex %d has dimension %d, want %d", ErrBadProblem, i, len(v), d)
			}
			row[i] = v[coord]
		}
		cons[coord] = Constraint{Coeffs: row, Op: EQ, RHS: q[coord]}
	}
	ones := ws.arena.Floats(k)
	for i := range ones {
		ones[i] = 1
	}
	cons[d] = Constraint{Coeffs: ones, Op: EQ, RHS: 1}
	p := &Problem{NumVars: k, Objective: ws.arena.Floats(k), Minimize: true, Constraints: cons}
	sol, err := p.SolveWith(ws, eps)
	if err != nil {
		return nil, err
	}
	if sol.Status != Optimal {
		return nil, ErrInfeasible
	}
	return sol.X, nil
}

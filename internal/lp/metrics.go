package lp

import "chc/internal/telemetry"

// mSolves counts simplex invocations process-wide. LP solves are the finest
// unit of geometry work (hundreds per support-sampled intersection), so they
// get a counter only — per-solve spans would dominate any trace. Round-level
// spans in the protocol layer carry the latency.
var mSolves = telemetry.Default().Counter("chc_lp_solves_total",
	"Two-phase simplex solves across the process.")

// Package trace reconstructs the matrix representation of Algorithm CC from
// execution records and verifies the paper's analytical machinery on real
// runs:
//
//   - the transition matrices M[t] built by Rules 1 and 2 of Section 5,
//   - their products P[t] = M[t]·M[t-1]···M[1] (backward convention, eq. 4),
//   - Lemma 3: P[t] is row stochastic and fault-free rows differ by at most
//     (1 - 1/n)^t per column,
//   - Theorem 1: the matrix-form state P_i[t]·v[0] (a linear combination of
//     the round-0 polytopes under the function L) equals the state h_i[t]
//     the process actually computed.
package trace

import (
	"errors"
	"fmt"
	"math"

	"chc/internal/core"
	"chc/internal/dist"
	"chc/internal/geom"
	"chc/internal/polytope"
)

// ErrNoRounds is returned when the execution had no averaging rounds.
var ErrNoRounds = errors.New("trace: execution has no averaging rounds")

// Analysis holds the reconstructed matrices of one execution.
type Analysis struct {
	N     int
	TEnd  int            // number of averaging rounds analysed
	M     []*geom.Matrix // M[i] is the transition matrix of round i+1
	P     []*geom.Matrix // P[i] = M[i]·...·M[0] (backward product)
	fault map[dist.ProcID]bool
}

// Build reconstructs M[t] and P[t] from the run's traces. Processes without
// a record for round t (crashed, or not yet there) receive Rule 2 rows
// (uniform 1/n), matching the paper's construction for F[t+1].
func Build(result *core.RunResult) (*Analysis, error) {
	n := result.Params.N
	tEnd := 0
	for _, id := range result.FaultFree() {
		tr, ok := result.Traces[id]
		if !ok {
			return nil, fmt.Errorf("trace: fault-free process %d has no trace", id)
		}
		if len(tr.Rounds) > tEnd {
			tEnd = len(tr.Rounds)
		}
	}
	if tEnd == 0 {
		return nil, ErrNoRounds
	}
	a := &Analysis{N: n, TEnd: tEnd, fault: result.Faulty}
	var prev *geom.Matrix
	for t := 1; t <= tEnd; t++ {
		m := geom.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			rec, ok := roundRecord(result, dist.ProcID(i), t)
			if !ok {
				// Rule 2: the process sent no round-(t+1) message; its row
				// is irrelevant and set to uniform.
				for k := 0; k < n; k++ {
					m.Set(i, k, 1/float64(n))
				}
				continue
			}
			w := 1 / float64(len(rec.Senders))
			for _, k := range rec.Senders {
				m.Set(i, int(k), w)
			}
		}
		a.M = append(a.M, m)
		if prev == nil {
			prev = m.Clone()
		} else {
			prev = matMul(m, prev) // backward product: M[t]·P[t-1]
		}
		a.P = append(a.P, prev.Clone())
	}
	return a, nil
}

// roundRecord fetches process id's record for round t, if it exists.
func roundRecord(result *core.RunResult, id dist.ProcID, t int) (core.RoundRecord, bool) {
	tr, ok := result.Traces[id]
	if !ok {
		return core.RoundRecord{}, false
	}
	for _, rec := range tr.Rounds {
		if rec.Round == t {
			return rec, true
		}
	}
	return core.RoundRecord{}, false
}

// matMul returns a·b for dense square matrices.
func matMul(a, b *geom.Matrix) *geom.Matrix {
	n := a.Rows
	out := geom.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		ra := a.Row(i)
		ro := out.Row(i)
		for k := 0; k < n; k++ {
			f := ra[k]
			if f == 0 {
				continue
			}
			rb := b.Row(k)
			for j := 0; j < n; j++ {
				ro[j] += f * rb[j]
			}
		}
	}
	return out
}

// CheckRowStochastic verifies that every reconstructed M[t] and P[t] is row
// stochastic (Lemma 3, first part).
func (a *Analysis) CheckRowStochastic(tol float64) error {
	for t, m := range a.M {
		if err := rowStochastic(m, tol); err != nil {
			return fmt.Errorf("trace: M[%d]: %w", t+1, err)
		}
	}
	for t, p := range a.P {
		if err := rowStochastic(p, tol); err != nil {
			return fmt.Errorf("trace: P[%d]: %w", t+1, err)
		}
	}
	return nil
}

func rowStochastic(m *geom.Matrix, tol float64) error {
	for i := 0; i < m.Rows; i++ {
		var sum float64
		for _, v := range m.Row(i) {
			if v < -tol {
				return fmt.Errorf("negative entry %v in row %d", v, i)
			}
			sum += v
		}
		if math.Abs(sum-1) > tol {
			return fmt.Errorf("row %d sums to %v", i, sum)
		}
	}
	return nil
}

// Delta returns max over fault-free i, j and all k of |P_ik[t] - P_jk[t]| —
// the ergodicity coefficient that Lemma 3 bounds by (1 - 1/n)^t.
// t is 1-based.
func (a *Analysis) Delta(t int) (float64, error) {
	if t < 1 || t > len(a.P) {
		return 0, fmt.Errorf("trace: round %d out of range [1, %d]", t, len(a.P))
	}
	p := a.P[t-1]
	var ids []int
	for i := 0; i < a.N; i++ {
		if !a.fault[dist.ProcID(i)] {
			ids = append(ids, i)
		}
	}
	var worst float64
	for x := range ids {
		for y := x + 1; y < len(ids); y++ {
			ri, rj := p.Row(ids[x]), p.Row(ids[y])
			for k := 0; k < a.N; k++ {
				if d := math.Abs(ri[k] - rj[k]); d > worst {
					worst = d
				}
			}
		}
	}
	return worst, nil
}

// Lemma3Bound returns (1 - 1/n)^t.
func (a *Analysis) Lemma3Bound(t int) float64 {
	return math.Pow(1-1/float64(a.N), float64(t))
}

// CheckLemma3 verifies Delta(t) <= (1 - 1/n)^t for every analysed round.
func (a *Analysis) CheckLemma3(tol float64) error {
	for t := 1; t <= a.TEnd; t++ {
		d, err := a.Delta(t)
		if err != nil {
			return err
		}
		if bound := a.Lemma3Bound(t); d > bound+tol {
			return fmt.Errorf("trace: Lemma 3 violated at round %d: delta %v > bound %v", t, d, bound)
		}
	}
	return nil
}

// VerifyTheorem1 checks, for every fault-free process and each of the given
// rounds (1-based), that the matrix-form state L(v[0]; P_i[t]) equals the
// recorded operational state h_i[t] up to Hausdorff distance tol.
// The initial vector v[0] follows initialisation steps I1/I2: crashed-in-
// round-0 processes inherit an arbitrary fault-free h_m[0].
func (a *Analysis) VerifyTheorem1(result *core.RunResult, rounds []int, tol float64) error {
	eps := result.Params.GeomEps
	if eps == 0 {
		eps = geom.DefaultEps
	}
	v0, err := initialVector(result, eps)
	if err != nil {
		return err
	}
	for _, id := range result.FaultFree() {
		for _, t := range rounds {
			if t < 1 || t > len(a.P) {
				return fmt.Errorf("trace: round %d out of range", t)
			}
			rec, ok := roundRecord(result, id, t)
			if !ok {
				return fmt.Errorf("trace: fault-free process %d missing round %d", id, t)
			}
			row := a.P[t-1].Row(int(id))
			var polys []*polytope.Polytope
			var weights []float64
			for k := 0; k < a.N; k++ {
				if row[k] > 0 {
					polys = append(polys, v0[k])
					weights = append(weights, row[k])
				}
			}
			matrixState, err := polytope.LinearCombination(polys, weights, eps)
			if err != nil {
				return fmt.Errorf("trace: matrix state of process %d round %d: %w", id, t, err)
			}
			operational, err := polytope.New(rec.State, eps)
			if err != nil {
				return err
			}
			d, err := polytope.Hausdorff(matrixState, operational, eps)
			if err != nil {
				return err
			}
			if d > tol {
				return fmt.Errorf("trace: Theorem 1 violated at process %d round %d: d_H = %v", id, t, d)
			}
		}
	}
	return nil
}

// initialVector builds v[0] per I1/I2.
func initialVector(result *core.RunResult, eps float64) ([]*polytope.Polytope, error) {
	n := result.Params.N
	v0 := make([]*polytope.Polytope, n)
	var fallback *polytope.Polytope
	for _, id := range result.FaultFree() {
		tr := result.Traces[id]
		if len(tr.H0) > 0 {
			p, err := polytope.New(tr.H0, eps)
			if err != nil {
				return nil, err
			}
			fallback = p
			break
		}
	}
	if fallback == nil {
		return nil, errors.New("trace: no fault-free round-0 state available")
	}
	for i := 0; i < n; i++ {
		tr, ok := result.Traces[dist.ProcID(i)]
		if ok && len(tr.H0) > 0 {
			p, err := polytope.New(tr.H0, eps)
			if err != nil {
				return nil, err
			}
			v0[i] = p
			continue
		}
		v0[i] = fallback // I2: arbitrary fault-free state
	}
	return v0, nil
}

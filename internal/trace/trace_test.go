package trace

import (
	"errors"
	"math/rand"
	"testing"

	"chc/internal/core"
	"chc/internal/dist"
	"chc/internal/geom"
	"chc/internal/polytope"
)

func pt(coords ...float64) geom.Point { return geom.NewPoint(coords...) }

func run(t *testing.T, seed int64, faulty []dist.ProcID, crashes []dist.CrashPlan) *core.RunResult {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inputs := make([]geom.Point, 5)
	for i := range inputs {
		inputs[i] = pt(rng.Float64()*10, rng.Float64()*10)
	}
	cfg := core.RunConfig{
		Params: core.Params{
			N: 5, F: 1, D: 2,
			Epsilon:    0.2,
			InputLower: 0, InputUpper: 10,
		},
		Inputs:  inputs,
		Faulty:  faulty,
		Crashes: crashes,
		Seed:    seed,
	}
	result, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return result
}

func TestBuildAndRowStochastic(t *testing.T) {
	result := run(t, 1, nil, nil)
	a, err := Build(result)
	if err != nil {
		t.Fatal(err)
	}
	if a.TEnd == 0 || len(a.M) != a.TEnd || len(a.P) != a.TEnd {
		t.Fatalf("analysis shape: tEnd=%d |M|=%d |P|=%d", a.TEnd, len(a.M), len(a.P))
	}
	if err := a.CheckRowStochastic(1e-9); err != nil {
		t.Error(err)
	}
}

func TestLemma3Holds(t *testing.T) {
	result := run(t, 2, []dist.ProcID{3}, []dist.CrashPlan{{Proc: 3, AfterSends: 11}})
	a, err := Build(result)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckLemma3(1e-9); err != nil {
		t.Error(err)
	}
	// Delta must be monotonically bounded and shrink to below epsilon scale.
	dFirst, err := a.Delta(1)
	if err != nil {
		t.Fatal(err)
	}
	dLast, err := a.Delta(a.TEnd)
	if err != nil {
		t.Fatal(err)
	}
	if dLast > dFirst+1e-12 {
		t.Errorf("delta grew: %v -> %v", dFirst, dLast)
	}
	if dLast > a.Lemma3Bound(a.TEnd) {
		t.Errorf("final delta %v above bound %v", dLast, a.Lemma3Bound(a.TEnd))
	}
}

func TestTheorem1MatrixFormMatchesOperational(t *testing.T) {
	result := run(t, 3, []dist.ProcID{2}, []dist.CrashPlan{{Proc: 2, AfterSends: 15}})
	a, err := Build(result)
	if err != nil {
		t.Fatal(err)
	}
	rounds := []int{1, 2}
	if a.TEnd >= 3 {
		rounds = append(rounds, 3)
	}
	if err := a.VerifyTheorem1(result, rounds, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestDeltaOutOfRange(t *testing.T) {
	result := run(t, 4, nil, nil)
	a, err := Build(result)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Delta(0); err == nil {
		t.Error("Delta(0) should error")
	}
	if _, err := a.Delta(a.TEnd + 1); err == nil {
		t.Error("Delta beyond tEnd should error")
	}
	if err := a.VerifyTheorem1(result, []int{0}, 1e-6); err == nil {
		t.Error("VerifyTheorem1 with bad round should error")
	}
}

func TestBuildNoRounds(t *testing.T) {
	// Epsilon so large that t_end = 0: no averaging rounds to analyse.
	cfg := core.RunConfig{
		Params: core.Params{
			N: 5, F: 1, D: 2,
			Epsilon:    1e9,
			InputLower: 0, InputUpper: 1,
		},
		Inputs: []geom.Point{pt(0, 0), pt(1, 0), pt(0, 1), pt(1, 1), pt(0.5, 0.5)},
		Seed:   5,
	}
	result, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(result); !errors.Is(err, ErrNoRounds) {
		t.Errorf("err = %v, want ErrNoRounds", err)
	}
}

func TestMatMul(t *testing.T) {
	a := geom.NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	b := geom.NewMatrix(2, 2)
	b.Set(0, 0, 5)
	b.Set(0, 1, 6)
	b.Set(1, 0, 7)
	b.Set(1, 1, 8)
	c := matMul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

// The matrix-form state must also converge: the Hausdorff distance between
// matrix states of two fault-free processes shrinks like the delta bound.
func TestMatrixConvergenceMirrorsOperational(t *testing.T) {
	result := run(t, 6, nil, nil)
	a, err := Build(result)
	if err != nil {
		t.Fatal(err)
	}
	// Operational convergence: final states of all processes within eps.
	var outs []*polytope.Polytope
	for _, id := range result.FaultFree() {
		outs = append(outs, result.Outputs[id])
	}
	dOp, err := polytope.MaxPairwiseHausdorff(outs, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if dOp > result.Params.Epsilon {
		t.Fatalf("operational agreement %v > epsilon", dOp)
	}
	dFinal, err := a.Delta(a.TEnd)
	if err != nil {
		t.Fatal(err)
	}
	if dFinal > a.Lemma3Bound(a.TEnd) {
		t.Errorf("matrix delta %v above Lemma 3 bound %v", dFinal, a.Lemma3Bound(a.TEnd))
	}
}

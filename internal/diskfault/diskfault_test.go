package diskfault

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"chc/internal/wal"
)

// opLog replays a fixed operation sequence against a fresh FS and records
// every outcome, so two runs can be compared decision-for-decision.
func opLog(t *testing.T, dir string, plan Plan) []string {
	t.Helper()
	fs := New(wal.OSFS(), plan)
	var log []string
	for _, name := range []string{"node-000.wal", "node-001.wal"} {
		f, err := fs.Create(filepath.Join(dir, name))
		if err != nil {
			log = append(log, "create:"+err.Error())
			continue
		}
		for i := 0; i < 200; i++ {
			n, err := f.Write(make([]byte, 64))
			log = append(log, fmt.Sprintf("w:%d:%v", n, err))
			if i%4 == 3 {
				log = append(log, fmt.Sprintf("s:%v", f.Sync()))
			}
		}
		_ = f.Close()
	}
	return log
}

// TestDeterministicSchedule checks the acceptance property: identical seeds
// produce identical injection schedules, a different seed a different one.
func TestDeterministicSchedule(t *testing.T) {
	plan := Sick()
	plan.Seed = 42
	plan.SyncDelayProb = 0 // keep the test fast; delays don't change fates
	a := opLog(t, t.TempDir(), plan)
	b := opLog(t, t.TempDir(), plan)
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d: %q vs %q", i, a[i], b[i])
		}
	}
	plan.Seed = 43
	c := opLog(t, t.TempDir(), plan)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestFaultKindsInjected checks every probabilistic fault kind fires under a
// hot plan and that the per-kind counters track them.
func TestFaultKindsInjected(t *testing.T) {
	plan := Plan{Seed: 7, WriteErrProb: 0.2, NoSpaceProb: 0.2, TornProb: 0.2,
		SyncErrProb: 0.3, SyncDelayProb: 0.3, SyncDelayMax: time.Microsecond}
	fs := New(wal.OSFS(), plan)
	f, err := fs.Create(filepath.Join(t.TempDir(), "x.wal"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		_, _ = f.Write(make([]byte, 32))
		_ = f.Sync()
	}
	st := fs.Stats()
	if st.WriteErrs == 0 || st.NoSpace == 0 || st.TornWrites == 0 {
		t.Fatalf("write faults not all injected: %+v", st)
	}
	if st.SyncErrs == 0 || st.SyncDelays == 0 {
		t.Fatalf("sync faults not all injected: %+v", st)
	}
	if st.PowerCut {
		t.Fatal("power cut fired without a cut budget")
	}
}

// TestTornWritePersistsPrefix checks a torn write leaves a strict prefix on
// disk: the short count it reports matches the bytes actually persisted.
func TestTornWritePersistsPrefix(t *testing.T) {
	plan := Plan{Seed: 1, TornProb: 0.5}
	fs := New(wal.OSFS(), plan)
	path := filepath.Join(t.TempDir(), "x.wal")
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var wrote int64
	for i := 0; i < 50; i++ {
		n, err := f.Write(make([]byte, 100))
		wrote += int64(n)
		if err != nil && !errors.Is(err, ErrTornWrite) {
			t.Fatalf("unexpected error: %v", err)
		}
		if errors.Is(err, ErrTornWrite) && n >= 100 {
			t.Fatalf("torn write reported full count %d", n)
		}
	}
	_ = f.Sync()
	_ = f.Close()
	size, err := fs.Size(path)
	if err != nil {
		t.Fatal(err)
	}
	if size != wrote {
		t.Fatalf("on-disk size %d != reported bytes %d", size, wrote)
	}
	if fs.Stats().TornWrites == 0 {
		t.Fatal("no torn writes at prob 0.5 over 50 ops")
	}
}

// TestPowerCut checks the device dies at the configured byte: the crossing
// write keeps only the budgeted prefix, and everything after fails.
func TestPowerCut(t *testing.T) {
	fs := New(wal.OSFS(), Plan{Seed: 3, CutAtBytes: 250})
	path := filepath.Join(t.TempDir(), "x.wal")
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	var cut bool
	for i := 0; i < 10; i++ {
		n, err := f.Write(make([]byte, 100))
		total += int64(n)
		if errors.Is(err, ErrPowerCut) {
			cut = true
			break
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if !cut {
		t.Fatal("power cut never fired")
	}
	if total != 250 {
		t.Fatalf("persisted %d bytes, want exactly the 250-byte budget", total)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("write after cut: %v, want ErrPowerCut", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("sync after cut: %v, want ErrPowerCut", err)
	}
	if _, err := fs.Create(path + "2"); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("create after cut: %v, want ErrPowerCut", err)
	}
	if err := fs.Rename(path, path+".seg"); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("rename after cut: %v, want ErrPowerCut", err)
	}
	if size, _ := fs.Size(path); size != 250 {
		t.Fatalf("on-disk size %d after cut, want 250", size)
	}
	if !fs.Stats().PowerCut {
		t.Fatal("stats do not report the power cut")
	}
}

// TestPathSubstrConfinesFaults checks targeting: only matching paths fault.
func TestPathSubstrConfinesFaults(t *testing.T) {
	plan := Plan{Seed: 9, WriteErrProb: 0.9, PathSubstr: "node-001"}
	fs := New(wal.OSFS(), plan)
	dir := t.TempDir()
	clean, err := fs.Create(filepath.Join(dir, "node-000.wal"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := clean.Write([]byte("ok")); err != nil {
			t.Fatalf("fault on non-matching path: %v", err)
		}
	}
	dirty, err := fs.Create(filepath.Join(dir, "node-001.wal"))
	if err != nil {
		t.Fatal(err)
	}
	faults := 0
	for i := 0; i < 50; i++ {
		if _, err := dirty.Write([]byte("ok")); err != nil {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no faults on matching path at prob 0.9")
	}
}

// TestAfterOpsGrace checks the grace window: the first AfterOps operations
// on each file never fault.
func TestAfterOpsGrace(t *testing.T) {
	plan := Plan{Seed: 5, WriteErrProb: 0.9, SyncErrProb: 0.9, AfterOps: 20}
	fs := New(wal.OSFS(), plan)
	f, err := fs.Create(filepath.Join(t.TempDir(), "x.wal"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := f.Write([]byte("ok")); err != nil {
			t.Fatalf("fault inside grace window (write %d): %v", i, err)
		}
		if err := f.Sync(); err != nil {
			t.Fatalf("fault inside grace window (sync %d): %v", i, err)
		}
	}
	faults := 0
	for i := 0; i < 30; i++ {
		if _, err := f.Write([]byte("ok")); err != nil {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no faults after grace window at prob 0.9")
	}
}

// TestParsePlanRoundTrip checks spec parsing, presets, refinement, String.
func TestParsePlanRoundTrip(t *testing.T) {
	for _, spec := range []string{"", "off", "none"} {
		p, err := ParsePlan(spec)
		if err != nil || p.Enabled() {
			t.Fatalf("ParsePlan(%q) = %+v, %v", spec, p, err)
		}
	}
	p, err := ParsePlan("flaky")
	if err != nil || p != Flaky() {
		t.Fatalf("ParsePlan(flaky) = %+v, %v", p, err)
	}
	p, err = ParsePlan("sick,syncerr=0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := Sick()
	want.SyncErrProb = 0.5
	if p != want {
		t.Fatalf("refined preset = %+v, want %+v", p, want)
	}
	p, err = ParsePlan("werr=0.1,nospc=0.05,torn=0.02,syncerr=0.3,slow=0.2:1ms-5ms,cut=4096,path=node-002,after=8")
	if err != nil {
		t.Fatal(err)
	}
	if p.WriteErrProb != 0.1 || p.NoSpaceProb != 0.05 || p.TornProb != 0.02 ||
		p.SyncErrProb != 0.3 || p.SyncDelayProb != 0.2 ||
		p.SyncDelayMin != time.Millisecond || p.SyncDelayMax != 5*time.Millisecond ||
		p.CutAtBytes != 4096 || p.PathSubstr != "node-002" || p.AfterOps != 8 {
		t.Fatalf("custom plan = %+v", p)
	}
	// String must round-trip back to an equal plan.
	back, err := ParsePlan(p.String())
	if err != nil || back != p {
		t.Fatalf("round-trip %q = %+v, %v", p.String(), back, err)
	}
	for _, bad := range []string{"werr=2", "slow=x", "cut=-1", "bogus=1", "off,werr=0.1"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("ParsePlan(%q) accepted", bad)
		}
	}
}

package diskfault

import (
	"fmt"
	"hash/fnv"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Plan is a declarative storage-fault schedule. Probabilities apply per
// operation; the fate of the k-th write (or sync) on a given path is a pure
// function of (Seed, path, kind, k) — see fate — so identical seeds produce
// identical injection schedules regardless of goroutine interleaving.
type Plan struct {
	// Seed drives every dice roll. Two FS instances with equal plans inject
	// identical fault schedules for identical per-file op sequences.
	Seed int64

	// WriteErrProb is the probability a write fails with EIO (nothing
	// persisted); NoSpaceProb the probability it fails with ENOSPC;
	// TornProb the probability it persists only a prefix (a short write,
	// the classic torn-record crash shape).
	WriteErrProb float64
	NoSpaceProb  float64
	TornProb     float64

	// SyncErrProb is the probability an fsync fails; SyncDelayProb the
	// probability it stalls for a duration uniform in
	// [SyncDelayMin, SyncDelayMax] before succeeding.
	SyncErrProb   float64
	SyncDelayProb float64
	SyncDelayMin  time.Duration
	SyncDelayMax  time.Duration

	// CutAtBytes, when positive, models a power cut: the device dies after
	// this many bytes have been written across matching files. The write
	// that crosses the budget keeps only its budgeted prefix; every later
	// operation on matching files fails with ErrPowerCut.
	CutAtBytes int64

	// PathSubstr confines the plan to paths containing this substring
	// (e.g. one node's log). Empty attacks every file.
	PathSubstr string

	// AfterOps is a per-file grace window: the first AfterOps counted
	// operations (writes + syncs) on each file are fault-free, so logs can
	// be created and seeded before the faults arm. The power-cut byte
	// budget is not graced.
	AfterOps int64
}

// Enabled reports whether the plan injects any fault at all.
func (p Plan) Enabled() bool {
	return p.WriteErrProb > 0 || p.NoSpaceProb > 0 || p.TornProb > 0 ||
		p.SyncErrProb > 0 || p.SyncDelayProb > 0 || p.CutAtBytes > 0
}

// Flaky is a mild plan: occasional write and fsync failures, rare torn
// writes, small fsync stalls. A correct log survives it indefinitely under
// the degrade policy and loses at most the torn tail under fail-stop.
func Flaky() Plan {
	return Plan{
		WriteErrProb:  0.02,
		TornProb:      0.01,
		SyncErrProb:   0.02,
		SyncDelayProb: 0.05,
		SyncDelayMax:  2 * time.Millisecond,
		AfterOps:      32,
	}
}

// Sick is an aggressively failing device: ~10% failure rates on both
// writes and fsyncs plus heavy latency spikes — the acceptance plan of the
// storage-fault matrix.
func Sick() Plan {
	return Plan{
		WriteErrProb:  0.08,
		NoSpaceProb:   0.02,
		TornProb:      0.05,
		SyncErrProb:   0.10,
		SyncDelayProb: 0.10,
		SyncDelayMin:  500 * time.Microsecond,
		SyncDelayMax:  5 * time.Millisecond,
		AfterOps:      16,
	}
}

// matches reports whether the plan attacks this path.
func (p Plan) matches(path string) bool {
	return p.PathSubstr == "" || strings.Contains(path, p.PathSubstr)
}

// Operation fates.
type fateKind int

const (
	fateOK fateKind = iota
	fateWriteErr
	fateNoSpace
	fateTorn
	fateSyncErr
	fateSyncDelay
)

// Op-kind discriminators mixed into the dice so write and sync schedules
// on the same file are decorrelated.
const (
	opWrite = 0x77726974 // "writ"
	opSync  = 0x73796e63 // "sync"
)

// dice derives the deterministic roll for the k-th operation of one kind on
// one path: a splitmix64 finalizer over (seed, file-name hash, kind, k).
// The high 53 bits become a uniform float in [0,1); the raw word seeds any
// secondary draw (torn fraction, delay point). Only the base name is
// hashed, so the schedule is invariant to where the log directory lives.
func (p Plan) dice(path string, kind int, k int64) (roll float64, raw uint64) {
	h := fnv.New64a()
	_, _ = h.Write([]byte(filepath.Base(path)))
	x := uint64(p.Seed) ^ h.Sum64() ^ uint64(kind)*0x9e3779b97f4a7c15 ^ uint64(k)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53), x
}

// writeFate decides the k-th write on path. For a torn write, frac is the
// fraction of the buffer to persist, in [0,1).
func (p Plan) writeFate(path string, k int64) (fateKind, float64) {
	roll, raw := p.dice(path, opWrite, k)
	switch {
	case roll < p.WriteErrProb:
		return fateWriteErr, 0
	case roll < p.WriteErrProb+p.NoSpaceProb:
		return fateNoSpace, 0
	case roll < p.WriteErrProb+p.NoSpaceProb+p.TornProb:
		// Reuse fresh bits from the raw word for the independent cut point.
		return fateTorn, float64(raw&((1<<20)-1)) / (1 << 20)
	default:
		return fateOK, 0
	}
}

// syncFate decides the k-th fsync on path. For a delay, d is the stall.
func (p Plan) syncFate(path string, k int64) (fateKind, time.Duration) {
	roll, raw := p.dice(path, opSync, k)
	switch {
	case roll < p.SyncErrProb:
		return fateSyncErr, 0
	case roll < p.SyncErrProb+p.SyncDelayProb:
		span := p.SyncDelayMax - p.SyncDelayMin
		d := p.SyncDelayMin
		if span > 0 {
			d += time.Duration(raw % uint64(span))
		}
		return fateSyncDelay, d
	default:
		return fateOK, 0
	}
}

// ParsePlan parses a fault-plan spec. Accepted forms:
//
//	off | none        no faults
//	flaky | sick      the presets above
//	key=value,...     a custom plan:
//	    werr=P        write EIO probability
//	    nospc=P       write ENOSPC probability
//	    torn=P        torn (short) write probability
//	    syncerr=P     fsync failure probability
//	    slow=P:LO-HI  fsync stall probability and duration range
//	    cut=N         power cut after N bytes written
//	    path=SUBSTR   confine faults to paths containing SUBSTR
//	    after=K       per-file grace ops before faults arm
//
// A preset may be refined: "flaky,syncerr=0.2" starts from Flaky. The seed
// is supplied separately (it pairs with the run seed, like chaos).
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	parts := strings.Split(spec, ",")
	switch strings.ToLower(strings.TrimSpace(parts[0])) {
	case "", "off", "none":
		if len(parts) > 1 {
			return p, fmt.Errorf("diskfault: %q cannot be refined", parts[0])
		}
		return Plan{}, nil
	case "flaky":
		p = Flaky()
		parts = parts[1:]
	case "sick":
		p = Sick()
		parts = parts[1:]
	}
	for _, part := range parts {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return p, fmt.Errorf("diskfault: bad plan element %q (want key=value)", part)
		}
		key, val := strings.ToLower(kv[0]), kv[1]
		switch key {
		case "werr", "nospc", "torn", "syncerr":
			x, err := strconv.ParseFloat(val, 64)
			if err != nil || x < 0 || x >= 1 {
				return p, fmt.Errorf("diskfault: bad %s probability %q", key, val)
			}
			switch key {
			case "werr":
				p.WriteErrProb = x
			case "nospc":
				p.NoSpaceProb = x
			case "torn":
				p.TornProb = x
			case "syncerr":
				p.SyncErrProb = x
			}
		case "slow":
			bits := strings.SplitN(val, ":", 2)
			x, err := strconv.ParseFloat(bits[0], 64)
			if err != nil || x < 0 || x >= 1 {
				return p, fmt.Errorf("diskfault: bad slow probability %q", val)
			}
			p.SyncDelayProb = x
			if len(bits) == 2 {
				lo, hi, err := parseDurationRange(bits[1])
				if err != nil {
					return p, fmt.Errorf("diskfault: bad slow range %q: %w", bits[1], err)
				}
				p.SyncDelayMin, p.SyncDelayMax = lo, hi
			} else if p.SyncDelayMax == 0 {
				p.SyncDelayMax = time.Millisecond
			}
		case "cut":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return p, fmt.Errorf("diskfault: bad cut byte count %q", val)
			}
			p.CutAtBytes = n
		case "path":
			p.PathSubstr = val
		case "after":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return p, fmt.Errorf("diskfault: bad after op count %q", val)
			}
			p.AfterOps = n
		default:
			return p, fmt.Errorf("diskfault: unknown plan key %q", key)
		}
	}
	return p, nil
}

// parseDurationRange parses "lo-hi" or a single "hi" duration.
func parseDurationRange(s string) (lo, hi time.Duration, err error) {
	if i := strings.Index(s, "-"); i >= 0 {
		lo, err = time.ParseDuration(strings.TrimSpace(s[:i]))
		if err != nil {
			return 0, 0, err
		}
		hi, err = time.ParseDuration(strings.TrimSpace(s[i+1:]))
		if err != nil {
			return 0, 0, err
		}
	} else {
		hi, err = time.ParseDuration(strings.TrimSpace(s))
		if err != nil {
			return 0, 0, err
		}
	}
	if lo < 0 || hi < lo {
		return 0, 0, fmt.Errorf("invalid range %q", s)
	}
	return lo, hi, nil
}

// String renders the plan compactly for logs and tables (inverse of
// ParsePlan for every field except Seed).
func (p Plan) String() string {
	if !p.Enabled() {
		return "off"
	}
	var parts []string
	if p.WriteErrProb > 0 {
		parts = append(parts, fmt.Sprintf("werr=%g", p.WriteErrProb))
	}
	if p.NoSpaceProb > 0 {
		parts = append(parts, fmt.Sprintf("nospc=%g", p.NoSpaceProb))
	}
	if p.TornProb > 0 {
		parts = append(parts, fmt.Sprintf("torn=%g", p.TornProb))
	}
	if p.SyncErrProb > 0 {
		parts = append(parts, fmt.Sprintf("syncerr=%g", p.SyncErrProb))
	}
	if p.SyncDelayProb > 0 {
		parts = append(parts, fmt.Sprintf("slow=%g:%v-%v", p.SyncDelayProb, p.SyncDelayMin, p.SyncDelayMax))
	}
	if p.CutAtBytes > 0 {
		parts = append(parts, fmt.Sprintf("cut=%d", p.CutAtBytes))
	}
	if p.PathSubstr != "" {
		parts = append(parts, "path="+p.PathSubstr)
	}
	if p.AfterOps > 0 {
		parts = append(parts, fmt.Sprintf("after=%d", p.AfterOps))
	}
	return strings.Join(parts, ",")
}

package diskfault

import "chc/internal/telemetry"

// Process-wide injection counters, one series per fault kind.
var (
	injected = telemetry.Default().CounterVec("chc_diskfault_injected_total",
		"Storage faults injected, by kind.", "kind")
	mWriteErrs  = injected.With("write_error")
	mNoSpace    = injected.With("no_space")
	mTornWrites = injected.With("torn_write")
	mSyncErrs   = injected.With("sync_error")
	mSyncDelays = injected.With("sync_delay")
	mPowerCuts  = injected.With("power_cut")
)

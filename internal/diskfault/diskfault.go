// Package diskfault injects seeded, deterministic storage faults underneath
// the write-ahead log. It implements wal.FS/wal.File around any base
// filesystem and attacks exactly the operations the durability contract
// depends on: write errors (EIO), out-of-space failures (ENOSPC), torn
// (short) writes that persist only a prefix of the record, fsync failures,
// fsync latency spikes, and a power-cut that truncates the file at a chosen
// byte and kills the device.
//
// Determinism mirrors package chaos: the fate of the k-th operation of a
// given kind on a given file is a pure function of (seed, path, kind, k),
// independent of goroutine scheduling. Two runs with the same seed and the
// same per-file operation sequences therefore inject identical fault
// schedules, so a failing storage-fault run can be replayed. Fault plans
// compose freely with chaos plans and crash/restart schedules: chaos
// attacks the links, restarts attack the processes, this package attacks
// the disk.
package diskfault

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chc/internal/wal"
)

// Injected fault errors. They intentionally mimic the shape of the OS
// errors they model; callers detect durability failure generically (any
// error from the WAL write path), not by unwrapping these.
var (
	// ErrInjectedWrite models EIO: the write failed, nothing was persisted.
	ErrInjectedWrite = errors.New("diskfault: injected write error (EIO)")
	// ErrNoSpace models ENOSPC: the device is full.
	ErrNoSpace = errors.New("diskfault: injected no-space error (ENOSPC)")
	// ErrTornWrite models a short write: a prefix of the buffer was
	// persisted before the failure.
	ErrTornWrite = errors.New("diskfault: injected torn write")
	// ErrInjectedSync models a failed fsync: buffered data may or may not
	// have reached the platter.
	ErrInjectedSync = errors.New("diskfault: injected fsync error")
	// ErrPowerCut models the device dying at the configured byte: the
	// current write keeps only the budgeted prefix and every later
	// operation on matching files fails.
	ErrPowerCut = errors.New("diskfault: power cut")
)

// FS wraps a base filesystem with a fault plan. It is safe for concurrent
// use; per-file operation counters are independent, so concurrency across
// files does not perturb the per-file fault schedule.
type FS struct {
	base wal.FS
	plan Plan

	mu    sync.Mutex
	files map[string]*fileState // per-path op counters, shared across opens

	cutBudget atomic.Int64 // remaining bytes before the power cut (plan.CutAtBytes > 0)
	cut       atomic.Bool  // the power cut has fired

	stats Stats
}

// fileState carries the deterministic per-path fault schedule position.
type fileState struct {
	writes int64 // write ops issued on this path
	syncs  int64 // sync ops issued on this path
	ops    int64 // all counted ops (AfterOps grace)
}

// Stats counts injected faults (atomic; read with Stats()).
type Stats struct {
	Writes      int64 // write calls on matching files
	Syncs       int64 // sync calls on matching files
	WriteErrs   int64 // injected EIO
	NoSpace     int64 // injected ENOSPC
	TornWrites  int64 // injected short writes
	SyncErrs    int64 // injected fsync failures
	SyncDelays  int64 // injected fsync latency spikes
	PowerCut    bool  // the power cut has fired
	DelayTotal  time.Duration
}

// New wraps base (nil = the host filesystem) with the plan.
func New(base wal.FS, plan Plan) *FS {
	if base == nil {
		base = wal.OSFS()
	}
	f := &FS{base: base, plan: plan, files: make(map[string]*fileState)}
	if plan.CutAtBytes > 0 {
		f.cutBudget.Store(plan.CutAtBytes)
	}
	return f
}

var _ wal.FS = (*FS)(nil)

// Plan returns the fault plan the filesystem runs.
func (f *FS) Plan() Plan { return f.plan }

// Stats returns a copy of the injection counters.
func (f *FS) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.stats
	st.PowerCut = f.cut.Load()
	return st
}

// matches reports whether the plan attacks this path.
func (f *FS) matches(path string) bool {
	return f.plan.Enabled() && f.plan.matches(path)
}

// state returns the shared per-path counters.
func (f *FS) state(path string) *fileState {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.files[path]
	if st == nil {
		st = &fileState{}
		f.files[path] = st
	}
	return st
}

// deadDevice reports whether the power cut already fired for this path.
func (f *FS) deadDevice(path string) bool {
	return f.cut.Load() && f.matches(path)
}

func (f *FS) Create(path string) (wal.File, error) {
	if f.deadDevice(path) {
		return nil, ErrPowerCut
	}
	file, err := f.base.Create(path)
	if err != nil {
		return nil, err
	}
	if !f.matches(path) {
		return file, nil
	}
	return &faultFile{fs: f, path: path, st: f.state(path), f: file}, nil
}

func (f *FS) OpenRW(path string) (wal.File, error) {
	if f.deadDevice(path) {
		return nil, ErrPowerCut
	}
	file, err := f.base.OpenRW(path)
	if err != nil {
		return nil, err
	}
	if !f.matches(path) {
		return file, nil
	}
	return &faultFile{fs: f, path: path, st: f.state(path), f: file}, nil
}

func (f *FS) Open(path string) (wal.File, error) {
	// Reads are never faulted: the replay path is exercised against the
	// bytes the faulty writes actually persisted.
	return f.base.Open(path)
}

func (f *FS) Rename(oldpath, newpath string) error {
	if f.deadDevice(oldpath) || f.deadDevice(newpath) {
		return ErrPowerCut
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FS) Remove(path string) error {
	if f.deadDevice(path) {
		return ErrPowerCut
	}
	return f.base.Remove(path)
}

func (f *FS) List(dir string) ([]string, error) { return f.base.List(dir) }

func (f *FS) Size(path string) (int64, error) { return f.base.Size(path) }

// faultFile interposes the plan on one file handle.
type faultFile struct {
	fs   *FS
	path string
	st   *fileState
	f    wal.File
}

var _ wal.File = (*faultFile)(nil)

func (ff *faultFile) Read(p []byte) (int, error)                 { return ff.f.Read(p) }
func (ff *faultFile) Seek(off int64, whence int) (int64, error)  { return ff.f.Seek(off, whence) }

func (ff *faultFile) Write(p []byte) (int, error) {
	fs := ff.fs
	if fs.cut.Load() {
		return 0, ErrPowerCut
	}
	fs.mu.Lock()
	ff.st.writes++
	ff.st.ops++
	k := ff.st.writes
	graced := ff.st.ops <= fs.plan.AfterOps
	fs.stats.Writes++
	fs.mu.Unlock()

	// The power cut consumes its byte budget regardless of the grace
	// window: it models the device dying at an absolute offset.
	if fs.plan.CutAtBytes > 0 {
		rem := fs.cutBudget.Add(-int64(len(p)))
		if rem < 0 {
			keep := len(p) + int(rem)
			if keep < 0 {
				keep = 0
			}
			if keep > 0 {
				_, _ = ff.f.Write(p[:keep])
				_ = ff.f.Sync()
			}
			fs.cut.Store(true)
			mPowerCuts.Inc()
			return keep, ErrPowerCut
		}
	}
	if graced {
		return ff.f.Write(p)
	}

	switch fate, frac := fs.plan.writeFate(ff.path, k); fate {
	case fateWriteErr:
		fs.count(&fs.stats.WriteErrs)
		mWriteErrs.Inc()
		return 0, ErrInjectedWrite
	case fateNoSpace:
		fs.count(&fs.stats.NoSpace)
		mNoSpace.Inc()
		return 0, ErrNoSpace
	case fateTorn:
		keep := int(frac * float64(len(p)))
		if keep >= len(p) {
			keep = len(p) - 1
		}
		if keep < 0 {
			keep = 0
		}
		if keep > 0 {
			_, _ = ff.f.Write(p[:keep])
		}
		fs.count(&fs.stats.TornWrites)
		mTornWrites.Inc()
		return keep, ErrTornWrite
	default:
		return ff.f.Write(p)
	}
}

func (ff *faultFile) Sync() error {
	fs := ff.fs
	if fs.cut.Load() {
		return ErrPowerCut
	}
	fs.mu.Lock()
	ff.st.syncs++
	ff.st.ops++
	k := ff.st.syncs
	graced := ff.st.ops <= fs.plan.AfterOps
	fs.stats.Syncs++
	fs.mu.Unlock()
	if graced {
		return ff.f.Sync()
	}
	switch fate, d := fs.plan.syncFate(ff.path, k); fate {
	case fateSyncErr:
		fs.count(&fs.stats.SyncErrs)
		mSyncErrs.Inc()
		return ErrInjectedSync
	case fateSyncDelay:
		fs.count(&fs.stats.SyncDelays)
		fs.mu.Lock()
		fs.stats.DelayTotal += d
		fs.mu.Unlock()
		mSyncDelays.Inc()
		time.Sleep(d)
		return ff.f.Sync()
	default:
		return ff.f.Sync()
	}
}

func (ff *faultFile) Truncate(size int64) error {
	if ff.fs.cut.Load() {
		return ErrPowerCut
	}
	return ff.f.Truncate(size)
}

func (ff *faultFile) Close() error { return ff.f.Close() }

// count bumps one stats field under the mutex.
func (f *FS) count(field *int64) {
	f.mu.Lock()
	*field++
	f.mu.Unlock()
}

// String describes the filesystem for diagnostics.
func (f *FS) String() string {
	return fmt.Sprintf("diskfault.FS(%s)", f.plan.String())
}

package rlink

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"chc/internal/dist"
	"chc/internal/wire"
)

// lossyNet connects endpoints in-process and deterministically drops every
// dropNth frame (data and acks alike), counting across all links.
type lossyNet struct {
	mu      sync.Mutex
	eps     map[dist.ProcID]*Endpoint
	dropNth int
	offered int
	dropped int
}

type lossySender struct{ net *lossyNet }

func (s *lossySender) SendFrame(to dist.ProcID, f wire.Frame) error {
	s.net.mu.Lock()
	s.net.offered++
	drop := s.net.dropNth > 0 && s.net.offered%s.net.dropNth == 0
	if drop {
		s.net.dropped++
	}
	ep := s.net.eps[to]
	s.net.mu.Unlock()
	if drop || ep == nil {
		return nil
	}
	ep.OnFrame(f)
	return nil
}

// collector records delivered messages.
type collector struct {
	mu   sync.Mutex
	msgs []dist.Message
}

func (c *collector) deliver(m dist.Message) error {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
	return nil
}

func (c *collector) snapshot() []dist.Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]dist.Message(nil), c.msgs...)
}

func fastConfig() Config {
	return Config{
		RetransmitInitial: time.Millisecond,
		RetransmitMax:     20 * time.Millisecond,
		Tick:              500 * time.Microsecond,
		Seed:              7,
	}
}

// TestLossyLinkExactlyOnceFIFO pushes a message stream through a link that
// drops every third frame and requires exactly-once, in-order delivery.
func TestLossyLinkExactlyOnceFIFO(t *testing.T) {
	net := &lossyNet{eps: map[dist.ProcID]*Endpoint{}, dropNth: 3}
	var got collector
	a := New(0, 2, &lossySender{net}, func(dist.Message) error { return nil }, fastConfig())
	b := New(1, 2, &lossySender{net}, got.deliver, fastConfig())
	net.mu.Lock()
	net.eps[0], net.eps[1] = a, b
	net.mu.Unlock()
	defer func() { _ = a.Close(); _ = b.Close() }()

	const total = 200
	for i := 0; i < total; i++ {
		if err := a.Send(dist.Message{From: 0, To: 1, Kind: "seq", Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(got.snapshot()) == total && a.Pending() == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	msgs := got.snapshot()
	if len(msgs) != total {
		t.Fatalf("delivered %d messages, want %d", len(msgs), total)
	}
	for i, m := range msgs {
		if m.Round != i {
			t.Fatalf("message %d has round %d: FIFO order violated", i, m.Round)
		}
	}
	if a.Pending() != 0 {
		t.Errorf("sender still has %d unacked frames", a.Pending())
	}
	st := a.Stats()
	if st.Retransmits == 0 {
		t.Error("no retransmits despite a lossy link")
	}
	net.mu.Lock()
	dropped := net.dropped
	net.mu.Unlock()
	if dropped == 0 {
		t.Error("the lossy net dropped nothing; test is vacuous")
	}
	if bs := b.Stats(); bs.DupSuppressed == 0 {
		// Dropped acks force retransmissions of already-delivered frames,
		// which the receiver must suppress.
		t.Errorf("expected duplicate suppression, stats = %+v", bs)
	}
}

// TestReorderBuffer feeds frames out of order straight into an endpoint and
// checks in-order delivery plus the out-of-order counter.
func TestReorderBuffer(t *testing.T) {
	var got collector
	var acks collector
	ackRec := senderFunc(func(to dist.ProcID, f wire.Frame) error {
		if f.Type == wire.FrameAck {
			acks.deliver(dist.Message{To: to, Round: int(f.Seq)})
		}
		return nil
	})
	b := New(1, 2, ackRec, got.deliver, fastConfig())
	defer func() { _ = b.Close() }()

	mk := func(seq uint64) wire.Frame {
		return wire.Frame{Type: wire.FrameData, From: 0, Seq: seq,
			Msg: dist.Message{From: 0, To: 1, Kind: "x", Round: int(seq)}}
	}
	b.OnFrame(mk(2))
	b.OnFrame(mk(1))
	if len(got.snapshot()) != 0 {
		t.Fatalf("delivered %d messages before the gap closed", len(got.snapshot()))
	}
	b.OnFrame(mk(0))
	msgs := got.snapshot()
	if len(msgs) != 3 {
		t.Fatalf("delivered %d, want 3", len(msgs))
	}
	for i, m := range msgs {
		if m.Round != i {
			t.Errorf("position %d got seq %d", i, m.Round)
		}
	}
	st := b.Stats()
	if st.OutOfOrder != 2 {
		t.Errorf("OutOfOrder = %d, want 2", st.OutOfOrder)
	}
	// Duplicate of an already-delivered frame: suppressed but re-acked.
	b.OnFrame(mk(1))
	if st := b.Stats(); st.DupSuppressed != 1 {
		t.Errorf("DupSuppressed = %d, want 1", st.DupSuppressed)
	}
	if len(got.snapshot()) != 3 {
		t.Error("duplicate was delivered")
	}
	if len(acks.snapshot()) == 0 {
		t.Error("no acks emitted")
	}
}

type senderFunc func(to dist.ProcID, f wire.Frame) error

func (fn senderFunc) SendFrame(to dist.ProcID, f wire.Frame) error { return fn(to, f) }

// TestDeliverFailureWithholdsAck pins the durability contract of the deliver
// callback: a rejected delivery (the recovery runtime failing to journal)
// stays buffered, the receive cursor and cumulative ack do not advance past
// it, and a later retransmission retries it and drains in order.
func TestDeliverFailureWithholdsAck(t *testing.T) {
	var acks collector
	ackRec := senderFunc(func(to dist.ProcID, f wire.Frame) error {
		if f.Type == wire.FrameAck {
			_ = acks.deliver(dist.Message{To: to, Round: int(f.Seq)})
		}
		return nil
	})
	var got collector
	reject := true
	deliver := func(m dist.Message) error {
		if reject && m.Round == 1 {
			return fmt.Errorf("journal unavailable")
		}
		return got.deliver(m)
	}
	b := New(1, 2, ackRec, deliver, fastConfig())
	defer func() { _ = b.Close() }()

	mk := func(seq uint64) wire.Frame {
		return wire.Frame{Type: wire.FrameData, From: 0, Seq: seq,
			Msg: dist.Message{From: 0, To: 1, Kind: "x", Round: int(seq)}}
	}
	lastAck := func() int {
		a := acks.snapshot()
		if len(a) == 0 {
			return -1
		}
		return a[len(a)-1].Round
	}
	b.OnFrame(mk(0))
	if n := len(got.snapshot()); n != 1 {
		t.Fatalf("delivered %d, want 1", n)
	}
	if lastAck() != 0 {
		t.Fatalf("ack after seq 0 = %d, want 0", lastAck())
	}
	b.OnFrame(mk(1)) // delivery rejected: must stay unacked and undelivered
	b.OnFrame(mk(2)) // blocked behind the rejected message
	if n := len(got.snapshot()); n != 1 {
		t.Fatalf("delivered %d past a rejected delivery, want 1", n)
	}
	if lastAck() != 0 {
		t.Fatalf("ack advanced to %d past a rejected delivery, want 0", lastAck())
	}
	reject = false
	b.OnFrame(mk(1)) // retransmission retries the delivery and drains the gap
	msgs := got.snapshot()
	if len(msgs) != 3 {
		t.Fatalf("delivered %d after retry, want 3", len(msgs))
	}
	for i, m := range msgs {
		if m.Round != i {
			t.Fatalf("position %d got seq %d: FIFO order violated across retry", i, m.Round)
		}
	}
	if lastAck() != 2 {
		t.Errorf("ack after retry = %d, want 2", lastAck())
	}
	if st := b.Stats(); st.DupSuppressed == 0 {
		t.Errorf("retransmission of the buffered message should count as suppressed duplicate, stats = %+v", st)
	}
}

// TestSendAfterClose verifies the endpoint refuses new work once closed.
func TestSendAfterClose(t *testing.T) {
	e := New(0, 2, senderFunc(func(dist.ProcID, wire.Frame) error { return nil }),
		func(dist.Message) error { return nil }, Config{})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Send(dist.Message{From: 0, To: 1}); err == nil {
		t.Error("Send after Close should fail")
	}
	// OnFrame after close must be a safe no-op (late frames from readers).
	e.OnFrame(wire.Frame{Type: wire.FrameData, From: 1, Seq: 0})
	if err := e.Close(); err != nil {
		t.Error("double Close should be idempotent")
	}
}

// TestSendUnknownPeer verifies target validation.
func TestSendUnknownPeer(t *testing.T) {
	e := New(0, 2, senderFunc(func(dist.ProcID, wire.Frame) error { return nil }),
		func(dist.Message) error { return nil }, Config{})
	defer func() { _ = e.Close() }()
	if err := e.Send(dist.Message{From: 0, To: 7}); err == nil {
		t.Error("send to unknown peer should fail")
	}
}

// TestManyLinksConcurrent exercises one endpoint fanning out to several
// peers concurrently under loss (run with -race).
func TestManyLinksConcurrent(t *testing.T) {
	const n = 4
	net := &lossyNet{eps: map[dist.ProcID]*Endpoint{}, dropNth: 4}
	cols := make([]collector, n)
	eps := make([]*Endpoint, n)
	for i := 0; i < n; i++ {
		i := i
		eps[i] = New(dist.ProcID(i), n, &lossySender{net}, cols[i].deliver, fastConfig())
	}
	net.mu.Lock()
	for i := 0; i < n; i++ {
		net.eps[dist.ProcID(i)] = eps[i]
	}
	net.mu.Unlock()
	defer func() {
		for _, e := range eps {
			_ = e.Close()
		}
	}()

	const per = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				for j := 0; j < n; j++ {
					if j == i {
						continue
					}
					_ = eps[i].Send(dist.Message{From: dist.ProcID(i), To: dist.ProcID(j),
						Kind: fmt.Sprintf("from%d", i), Round: k})
				}
			}
		}()
	}
	wg.Wait()
	want := per * (n - 1)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for i := range cols {
			if len(cols[i].snapshot()) != want {
				all = false
				break
			}
		}
		if all {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i := range cols {
		msgs := cols[i].snapshot()
		if len(msgs) != want {
			t.Fatalf("node %d delivered %d, want %d", i, len(msgs), want)
		}
		// Per-sender FIFO: rounds from each sender must be non-decreasing.
		last := map[dist.ProcID]int{}
		for _, m := range msgs {
			if prev, ok := last[m.From]; ok && m.Round < prev {
				t.Fatalf("node %d: sender %d went backwards (%d after %d)", i, m.From, m.Round, prev)
			}
			last[m.From] = m.Round
		}
	}
}

// Package rlink implements the reliable-channel abstraction Algorithm CC is
// proven against — exactly-once, per-sender-FIFO delivery — on top of an
// unreliable frame transport that may drop, duplicate, reorder or delay
// frames (a chaos-injected link, or a TCP link that breaks and reconnects).
//
// Each node runs one Endpoint. The sending side stamps every protocol
// message with a per-link sequence number, keeps it buffered until the
// receiver's cumulative ack covers it, and retransmits with exponential
// backoff plus jitter. The receiving side acknowledges every data frame,
// suppresses duplicates, and holds out-of-order frames in a reorder buffer
// so messages are handed to the process in exactly the order they were
// sent. The paper's channel model therefore holds end-to-end as long as
// each link eventually delivers a retransmission (fair-lossy links).
package rlink

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"chc/internal/dist"
	"chc/internal/telemetry"
	"chc/internal/wire"
)

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("rlink: endpoint closed")

// Sender pushes a frame toward a peer over the unreliable transport below
// the endpoint. Implementations may fail or silently drop; the endpoint
// relies only on retransmission for delivery.
type Sender interface {
	SendFrame(to dist.ProcID, f wire.Frame) error
}

// Config tunes the retransmission machinery. Zero values select defaults
// suited to loopback/in-process links.
type Config struct {
	// RetransmitInitial is the delay before the first retransmission of an
	// unacked frame (default 4ms).
	RetransmitInitial time.Duration
	// RetransmitMax caps the exponential backoff (default 250ms).
	RetransmitMax time.Duration
	// Tick is the scan period of the retransmission loop (default 1ms).
	Tick time.Duration
	// Seed drives retransmission jitter (default 1).
	Seed int64
	// MaxInflight caps the transmission window of each directed link: at
	// most this many unacked frames are on the wire at once (default 512).
	// Frames sent beyond the window stay queued but are withheld from the
	// transport until acks open the window, so Send never blocks and no
	// frame is ever lost — the bound trades wire pressure, not correctness.
	MaxInflight int
	// MaxReorder caps the receive-side reorder buffer of each directed
	// link: a data frame more than this many sequence numbers ahead of the
	// delivery cursor is dropped instead of buffered (default 1024). The
	// sender's retransmission re-offers it once the gap closes, preserving
	// exactly-once FIFO delivery under a hostile or wildly reordering wire
	// without unbounded memory.
	MaxReorder int
}

func (c Config) withDefaults() Config {
	if c.RetransmitInitial <= 0 {
		c.RetransmitInitial = 4 * time.Millisecond
	}
	if c.RetransmitMax <= 0 {
		c.RetransmitMax = 250 * time.Millisecond
	}
	if c.Tick <= 0 {
		c.Tick = time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 512
	}
	if c.MaxReorder <= 0 {
		c.MaxReorder = 1024
	}
	return c
}

// Stats counts the reliability work an endpoint performed.
type Stats struct {
	FramesSent     int64 // first transmissions of data frames
	Retransmits    int64 // additional transmissions of data frames
	DupSuppressed  int64 // received data frames discarded as duplicates
	OutOfOrder     int64 // received data frames buffered ahead of a gap
	AcksSent       int64 // ack frames emitted
	Resumes        int64 // epoch-increase handshakes processed (peer restarts seen)
	WindowWithheld int64 // sends queued past the transmission window (deferred, not lost)
	ReorderDrops   int64 // received frames dropped beyond the reorder bound (re-offered later)
}

// Endpoint provides reliable exactly-once FIFO links from one node to all
// its peers, over any Sender.
type Endpoint struct {
	self    dist.ProcID
	cfg     Config
	sender  Sender
	deliver func(dist.Message) error
	epoch   uint64 // incarnation number, fixed at construction

	out []*outLink
	in  []*inLink

	rngMu sync.Mutex
	rng   *rand.Rand

	framesSent     atomic.Int64
	retransmits    atomic.Int64
	dupSuppressed  atomic.Int64
	outOfOrder     atomic.Int64
	acksSent       atomic.Int64
	resumes        atomic.Int64
	windowWithheld atomic.Int64
	reorderDrops   atomic.Int64

	closed atomic.Bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// pending is an unacknowledged data frame awaiting (re)transmission.
type pending struct {
	frame     wire.Frame
	attempts  int
	nextRetry time.Time
}

// outLink is the sender-side state of one directed link.
type outLink struct {
	mu        sync.Mutex
	nextSeq   uint64
	queue     []pending // ascending seq; prefix-trimmed by cumulative acks
	peerEpoch uint64    // highest incarnation announced by the peer
}

// inLink is the receiver-side state of one directed link.
type inLink struct {
	mu       sync.Mutex
	next     uint64 // next expected (lowest undelivered) sequence number
	buffered map[uint64]dist.Message
}

// New builds an endpoint for node self in a cluster of n nodes. Incoming
// messages are handed to deliver in per-sender FIFO order, exactly once.
// deliver is invoked with an internal per-link lock held (that is what
// serializes concurrent receives into FIFO order), so it must not call back
// into the endpoint and should do only bounded work. A non-nil error from
// deliver rejects the message: it stays buffered, the receive cursor — and
// therefore the cumulative ack — does not advance past it, and the peer's
// retransmission re-offers it later (the recovery runtime uses this to
// refuse deliveries it could not journal durably).
func New(self dist.ProcID, n int, sender Sender, deliver func(dist.Message) error, cfg Config) *Endpoint {
	e := newEndpoint(self, n, sender, deliver, cfg)
	e.start()
	return e
}

// newEndpoint builds the endpoint without starting the retransmission loop,
// so NewResumed can seed link state before any concurrent access exists.
func newEndpoint(self dist.ProcID, n int, sender Sender, deliver func(dist.Message) error, cfg Config) *Endpoint {
	cfg = cfg.withDefaults()
	e := &Endpoint{
		self:    self,
		cfg:     cfg,
		sender:  sender,
		deliver: deliver,
		out:     make([]*outLink, n),
		in:      make([]*inLink, n),
		rng:     rand.New(rand.NewSource(cfg.Seed ^ int64(self)*0x9e3779b9)),
		stop:    make(chan struct{}),
	}
	for i := range e.out {
		e.out[i] = &outLink{}
		e.in[i] = &inLink{buffered: make(map[uint64]dist.Message)}
	}
	return e
}

// start launches the retransmission loop.
func (e *Endpoint) start() {
	e.wg.Add(1)
	go e.retransmitLoop()
}

// Send stamps msg with the next sequence number of the link to msg.To,
// buffers it until acked, and attempts a first transmission. A transport
// error is not fatal: the frame stays queued and the retransmission loop
// keeps trying until an ack arrives or the endpoint closes.
func (e *Endpoint) Send(msg dist.Message) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if msg.To < 0 || int(msg.To) >= len(e.out) {
		return errors.New("rlink: send to unknown peer")
	}
	l := e.out[msg.To]
	l.mu.Lock()
	f := wire.Frame{Type: wire.FrameData, From: e.self, Seq: l.nextSeq, Msg: msg}
	l.nextSeq++
	inWindow := len(l.queue) < e.cfg.MaxInflight
	if inWindow {
		l.queue = append(l.queue, pending{
			frame:     f,
			attempts:  1,
			nextRetry: time.Now().Add(e.backoff(1)),
		})
	} else {
		// Transmission window full: keep the frame queued but off the wire.
		// attempts=0 with a zero deadline makes the retransmission loop send
		// it the moment acks trim the queue and the frame enters the window
		// (the same path that drains WAL-reseeded frames after a restart).
		l.queue = append(l.queue, pending{frame: f})
		e.windowWithheld.Add(1)
		mWindowWithheld.Inc()
	}
	l.mu.Unlock()
	if inWindow {
		e.framesSent.Add(1)
		mFramesSent.Inc()
		_ = e.sender.SendFrame(msg.To, f)
	}
	return nil
}

// OnFrame is the receive path: the transport calls it for every frame
// addressed to this node. Data frames are deduplicated, reordered and
// delivered; ack frames retire pending retransmissions; epoch handshakes
// resynchronize link state across a peer's restart.
func (e *Endpoint) OnFrame(f wire.Frame) {
	if e.closed.Load() {
		return
	}
	if f.From < 0 || int(f.From) >= len(e.in) {
		return
	}
	switch f.Type {
	case wire.FrameHandshake:
		e.onHandshake(f)
	case wire.FrameAck:
		l := e.out[f.From]
		l.mu.Lock()
		i := 0
		for i < len(l.queue) && l.queue[i].frame.Seq <= f.Seq {
			i++
		}
		if i > 0 {
			l.queue = append(l.queue[:0], l.queue[i:]...)
		}
		l.mu.Unlock()
	case wire.FrameData:
		il := e.in[f.From]
		il.mu.Lock()
		switch {
		case f.Seq < il.next:
			e.dupSuppressed.Add(1)
			mDupSuppressed.Inc()
		case f.Seq >= il.next+uint64(e.cfg.MaxReorder):
			// Beyond the reorder bound: drop instead of buffering. The frame
			// is not covered by our cumulative ack, so the sender's
			// retransmission re-offers it once the gap closes — bounded
			// memory without giving up exactly-once FIFO delivery.
			e.reorderDrops.Add(1)
			mReorderDrops.Inc()
		default:
			if _, dup := il.buffered[f.Seq]; dup {
				e.dupSuppressed.Add(1)
				mDupSuppressed.Inc()
			} else {
				if f.Seq != il.next {
					e.outOfOrder.Add(1)
					mOutOfOrder.Inc()
				}
				il.buffered[f.Seq] = f.Msg
			}
			// Deliver while still holding il.mu: concurrent OnFrame calls for
			// the same sender are possible (chaos-delayed copies fire from
			// separate timer goroutines, retransmits race direct sends, and
			// old and new connection readers overlap across a TCP reconnect),
			// and two drained batches handed off outside the lock could
			// interleave out of sequence order. deliver does bounded work (a
			// mailbox push, plus a journal write in recovery mode), so holding
			// the link lock is safe. A rejected delivery (journaling failure)
			// stays buffered and ends the drain: the cursor — and with it the
			// cumulative ack below — never covers a message that was not made
			// durable, and the next retransmission retries the delivery (the
			// drain runs even for a frame suppressed as an in-buffer
			// duplicate, which is exactly what that retransmission is).
			for {
				m, ok := il.buffered[il.next]
				if !ok {
					break
				}
				if e.deliver(m) != nil {
					mAcksWithheld.Inc()
					break
				}
				delete(il.buffered, il.next)
				il.next++
			}
		}
		ackable := il.next > 0
		ackSeq := il.next - 1
		il.mu.Unlock()
		// Ack cumulatively, even for duplicates: the retransmission that
		// produced the duplicate means a previous ack was lost.
		if ackable {
			e.acksSent.Add(1)
			mAcksSent.Inc()
			_ = e.sender.SendFrame(f.From, wire.Frame{Type: wire.FrameAck, From: e.self, Seq: ackSeq})
		}
	}
}

// retransmitLoop periodically rescans all links for overdue frames.
func (e *Endpoint) retransmitLoop() {
	defer e.wg.Done()
	t := time.NewTicker(e.cfg.Tick)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case now := <-t.C:
			for to, l := range e.out {
				var resend []wire.Frame
				l.mu.Lock()
				var firsts int64
				// Only the transmission window touches the wire; withheld
				// frames past it wait for acks to advance the queue.
				window := l.queue
				if len(window) > e.cfg.MaxInflight {
					window = window[:e.cfg.MaxInflight]
				}
				for i := range window {
					p := &window[i]
					if now.After(p.nextRetry) {
						resend = append(resend, p.frame)
						if p.attempts == 0 {
							firsts++ // reseeded after a restart, never yet sent
						}
						p.attempts++
						p.nextRetry = now.Add(e.backoff(p.attempts))
					}
				}
				l.mu.Unlock()
				e.framesSent.Add(firsts)
				e.retransmits.Add(int64(len(resend)) - firsts)
				mFramesSent.Add(firsts)
				if redone := int64(len(resend)) - firsts; redone > 0 {
					mRetransmits.Add(redone)
					mRetransmitsByLink.With(fmt.Sprintf("%d->%d", e.self, to)).Add(redone)
					if telemetry.TraceOn() {
						telemetry.Emit("rlink.retransmit", map[string]any{
							"from": int(e.self), "to": to, "frames": redone,
						})
					}
				}
				for _, f := range resend {
					_ = e.sender.SendFrame(dist.ProcID(to), f)
				}
			}
		}
	}
}

// backoff computes the delay before attempt+1: exponential in the attempt
// count, capped, with up to 50% random jitter to avoid retransmission
// storms marching in lockstep across links.
func (e *Endpoint) backoff(attempts int) time.Duration {
	d := e.cfg.RetransmitInitial
	for i := 1; i < attempts && d < e.cfg.RetransmitMax; i++ {
		d *= 2
	}
	if d > e.cfg.RetransmitMax {
		d = e.cfg.RetransmitMax
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	e.rngMu.Lock()
	j := e.rng.Int63n(half + 1)
	e.rngMu.Unlock()
	return d/2 + time.Duration(j) // uniform in [d/2, d]
}

// Pending returns the number of data frames sent but not yet acknowledged,
// summed over all links.
func (e *Endpoint) Pending() int {
	total := 0
	for _, l := range e.out {
		l.mu.Lock()
		total += len(l.queue)
		l.mu.Unlock()
	}
	return total
}

// Stats returns a snapshot of the endpoint's reliability counters.
func (e *Endpoint) Stats() Stats {
	return Stats{
		FramesSent:     e.framesSent.Load(),
		Retransmits:    e.retransmits.Load(),
		DupSuppressed:  e.dupSuppressed.Load(),
		OutOfOrder:     e.outOfOrder.Load(),
		AcksSent:       e.acksSent.Load(),
		Resumes:        e.resumes.Load(),
		WindowWithheld: e.windowWithheld.Load(),
		ReorderDrops:   e.reorderDrops.Load(),
	}
}

// Close stops the retransmission loop; pending frames are abandoned (the
// run is over — undelivered frames are indistinguishable from a crash cut).
func (e *Endpoint) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	close(e.stop)
	e.wg.Wait()
	return nil
}

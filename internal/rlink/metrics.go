package rlink

import "chc/internal/telemetry"

// Process-wide telemetry mirrors of the per-endpoint reliability counters.
// Each endpoint keeps its own atomics (surfaced through Stats, the
// compatibility accessor); the same increment sites also bump these
// registry counters, which aggregate across every endpoint in the process
// and feed /metrics. Per-link retransmit detail is labeled — retransmits
// are rare enough that the family lookup off the hot path is free.
var (
	mFramesSent = telemetry.Default().Counter("chc_rlink_frames_sent_total",
		"Data frames handed to the transport, including retransmissions reseeded from a WAL.")
	mRetransmits = telemetry.Default().Counter("chc_rlink_retransmits_total",
		"Data frames re-sent because no cumulative ack covered them in time.")
	mRetransmitsByLink = telemetry.Default().CounterVec("chc_rlink_link_retransmits_total",
		"Retransmissions per directed link.", "link")
	mDupSuppressed = telemetry.Default().Counter("chc_rlink_dup_suppressed_total",
		"Received data frames discarded as duplicates.")
	mOutOfOrder = telemetry.Default().Counter("chc_rlink_out_of_order_total",
		"Received data frames buffered ahead of the delivery cursor.")
	mAcksSent = telemetry.Default().Counter("chc_rlink_acks_sent_total",
		"Cumulative acks sent.")
	mAcksWithheld = telemetry.Default().Counter("chc_rlink_acks_withheld_total",
		"Deliveries rejected (journaling failure) that stalled the ack cursor.")
	mResumes = telemetry.Default().Counter("chc_rlink_resumes_total",
		"Epoch handshakes that resynchronized a link across a peer restart.")
	mWindowWithheld = telemetry.Default().Counter("chc_rlink_window_withheld_total",
		"Sends queued past the per-link transmission window (deferred to the retransmission loop, never lost).")
	mReorderDrops = telemetry.Default().Counter("chc_rlink_reorder_drops_total",
		"Received data frames dropped beyond the reorder bound (re-offered by retransmission).")
)

package rlink

import (
	"testing"
	"time"

	"chc/internal/dist"
	"chc/internal/wire"
)

func mkMsgs(from, to dist.ProcID, n int) []dist.Message {
	msgs := make([]dist.Message, n)
	for i := range msgs {
		msgs[i] = dist.Message{From: from, To: to, Kind: "seq", Round: i}
	}
	return msgs
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached before deadline")
}

// TestResumeAfterCleanDelivery restarts a sender whose pre-crash stream was
// fully delivered. The regenerated queue is a superset of the old stream;
// the handshake's re-ack must trim the delivered prefix so the receiver
// sees only the new suffix — exactly once, in order.
func TestResumeAfterCleanDelivery(t *testing.T) {
	net := &lossyNet{eps: map[dist.ProcID]*Endpoint{}, dropNth: 3}
	var got collector
	a := New(0, 2, &lossySender{net}, func(dist.Message) error { return nil }, fastConfig())
	b := New(1, 2, &lossySender{net}, got.deliver, fastConfig())
	net.mu.Lock()
	net.eps[0], net.eps[1] = a, b
	net.mu.Unlock()
	defer func() { _ = b.Close() }()

	old := mkMsgs(0, 1, 10)
	for _, m := range old {
		if err := a.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(got.snapshot()) == len(old) && a.Pending() == 0 })

	// Crash the sender; the receiver's link state survives.
	net.mu.Lock()
	delete(net.eps, 0)
	net.mu.Unlock()
	_ = a.Close()

	// Replay regenerates the old stream exactly, plus messages the process
	// produces while catching up past the crash point.
	regen := mkMsgs(0, 1, 15)
	a2, err := NewResumed(0, 2, &lossySender{net}, func(dist.Message) error { return nil }, fastConfig(), ResumeState{
		Epoch:    1,
		RecvNext: []uint64{0, 0},
		Out:      [][]dist.Message{nil, regen},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a2.Close() }()
	if a2.Epoch() != 1 {
		t.Errorf("Epoch() = %d, want 1", a2.Epoch())
	}
	if hf := a2.HelloFrame(1); hf.Type != wire.FrameHandshake || hf.Epoch != 1 || hf.Seq != 15 || hf.Ack != 0 {
		t.Errorf("HelloFrame = %+v, want handshake epoch=1 seq=15 ack=0", hf)
	}
	net.mu.Lock()
	net.eps[0] = a2
	// Go lossless for the resume phase: the handshake is fire-and-forget, so
	// asserting on Resumes below requires it to actually arrive.
	net.dropNth = 0
	net.mu.Unlock()
	a2.Announce()

	waitFor(t, func() bool { return len(got.snapshot()) == len(regen) && a2.Pending() == 0 })
	msgs := got.snapshot()
	for i, m := range msgs {
		if m.Round != i {
			t.Fatalf("position %d got round %d: duplicate or loss across restart", i, m.Round)
		}
	}
	if st := b.Stats(); st.Resumes != 1 {
		t.Errorf("receiver Resumes = %d, want 1", st.Resumes)
	}
}

// TestResumeMidStream crashes the sender while frames are still in flight
// over a lossy link, then restarts it. Retransmission from the regenerated
// queue must close the gap with no duplicate and no lost delivery.
func TestResumeMidStream(t *testing.T) {
	// dropNth must not be 2: each data frame provokes exactly one ack, so an
	// every-second-frame drop phase-locks onto the acks and never converges.
	net := &lossyNet{eps: map[dist.ProcID]*Endpoint{}, dropNth: 3}
	var got collector
	a := New(0, 2, &lossySender{net}, func(dist.Message) error { return nil }, fastConfig())
	b := New(1, 2, &lossySender{net}, got.deliver, fastConfig())
	net.mu.Lock()
	net.eps[0], net.eps[1] = a, b
	net.mu.Unlock()
	defer func() { _ = b.Close() }()

	stream := mkMsgs(0, 1, 20)
	for _, m := range stream {
		if err := a.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	// Crash immediately: half the frames were dropped by the net and most
	// acks have not come back.
	net.mu.Lock()
	delete(net.eps, 0)
	net.mu.Unlock()
	_ = a.Close()

	a2, err := NewResumed(0, 2, &lossySender{net}, func(dist.Message) error { return nil }, fastConfig(), ResumeState{
		Epoch:    1,
		RecvNext: []uint64{0, 0},
		Out:      [][]dist.Message{nil, stream},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a2.Close() }()
	net.mu.Lock()
	net.eps[0] = a2
	net.mu.Unlock()
	a2.Announce()

	waitFor(t, func() bool { return len(got.snapshot()) == len(stream) && a2.Pending() == 0 })
	for i, m := range got.snapshot() {
		if m.Round != i {
			t.Fatalf("position %d got round %d", i, m.Round)
		}
	}
}

// TestResumeWithoutHandshake drops the restart announcement entirely: plain
// retransmission, duplicate suppression and cumulative re-acks must still
// converge (the handshake is an accelerator, not a correctness requirement).
func TestResumeWithoutHandshake(t *testing.T) {
	net := &lossyNet{eps: map[dist.ProcID]*Endpoint{}}
	var got collector
	a := New(0, 2, &lossySender{net}, func(dist.Message) error { return nil }, fastConfig())
	b := New(1, 2, &lossySender{net}, got.deliver, fastConfig())
	net.mu.Lock()
	net.eps[0], net.eps[1] = a, b
	net.mu.Unlock()
	defer func() { _ = b.Close() }()

	old := mkMsgs(0, 1, 8)
	for _, m := range old {
		if err := a.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(got.snapshot()) == len(old) })
	net.mu.Lock()
	delete(net.eps, 0)
	net.mu.Unlock()
	_ = a.Close()

	regen := mkMsgs(0, 1, 12)
	a2, err := NewResumed(0, 2, &lossySender{net}, func(dist.Message) error { return nil }, fastConfig(), ResumeState{
		Epoch:    1,
		RecvNext: []uint64{0, 0},
		Out:      [][]dist.Message{nil, regen},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a2.Close() }()
	net.mu.Lock()
	net.eps[0] = a2
	net.mu.Unlock()
	// No Announce: the reseeded queue retransmits from seq 0; the receiver
	// suppresses the delivered prefix and its re-acks trim the queue.
	waitFor(t, func() bool { return len(got.snapshot()) == len(regen) && a2.Pending() == 0 })
	for i, m := range got.snapshot() {
		if m.Round != i {
			t.Fatalf("position %d got round %d", i, m.Round)
		}
	}
	if st := b.Stats(); st.DupSuppressed == 0 {
		t.Error("expected the delivered prefix to be retransmitted and suppressed")
	}
}

// TestResumeReceiveCursor restarts a *receiver*: its journaled delivery
// count must become the receive cursor, so peer retransmissions of already-
// journaled messages are suppressed, not re-delivered.
func TestResumeReceiveCursor(t *testing.T) {
	var got collector
	a2, err := NewResumed(1, 2, senderFunc(func(dist.ProcID, wire.Frame) error { return nil }),
		got.deliver, fastConfig(), ResumeState{
			Epoch:    1,
			RecvNext: []uint64{5, 0},
			Out:      [][]dist.Message{nil, nil},
		})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a2.Close() }()

	for seq := uint64(0); seq < 7; seq++ {
		a2.OnFrame(wire.Frame{Type: wire.FrameData, From: 0, Seq: seq,
			Msg: dist.Message{From: 0, To: 1, Kind: "seq", Round: int(seq)}})
	}
	msgs := got.snapshot()
	if len(msgs) != 2 || msgs[0].Round != 5 || msgs[1].Round != 6 {
		t.Fatalf("delivered %+v, want exactly rounds 5 and 6", msgs)
	}
	if st := a2.Stats(); st.DupSuppressed != 5 {
		t.Errorf("DupSuppressed = %d, want 5", st.DupSuppressed)
	}
}

// TestResumeStateValidation rejects mis-sized resume state.
func TestResumeStateValidation(t *testing.T) {
	_, err := NewResumed(0, 3, senderFunc(func(dist.ProcID, wire.Frame) error { return nil }),
		func(dist.Message) error { return nil }, Config{}, ResumeState{RecvNext: []uint64{0}, Out: [][]dist.Message{nil}})
	if err == nil {
		t.Error("mis-sized resume state accepted")
	}
}

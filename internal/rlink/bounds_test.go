package rlink

import (
	"sync"
	"testing"
	"time"

	"chc/internal/dist"
	"chc/internal/wire"
)

// frameTap records every frame offered to the transport, never delivering.
type frameTap struct {
	mu     sync.Mutex
	frames []wire.Frame
}

func (s *frameTap) SendFrame(to dist.ProcID, f wire.Frame) error {
	s.mu.Lock()
	s.frames = append(s.frames, f)
	s.mu.Unlock()
	return nil
}

func (s *frameTap) maxDataSeq() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max uint64
	seen := false
	for _, f := range s.frames {
		if f.Type == wire.FrameData && (!seen || f.Seq > max) {
			max, seen = f.Seq, true
		}
	}
	return max, seen
}

// TestInflightWindowWithholds: with MaxInflight=4 and no acks coming back,
// only the first four sequence numbers ever reach the wire; everything else
// is withheld (not lost). Acks opening the window release the rest.
func TestInflightWindowWithholds(t *testing.T) {
	cfg := fastConfig()
	cfg.MaxInflight = 4
	tap := &frameTap{}
	a := New(0, 2, tap, func(dist.Message) error { return nil }, cfg)
	defer func() { _ = a.Close() }()

	const total = 20
	for i := 0; i < total; i++ {
		if err := a.Send(dist.Message{From: 0, To: 1, Kind: "m"}); err != nil {
			t.Fatal(err)
		}
	}
	// Let the retransmission loop run: it must keep re-sending the window,
	// never a frame beyond it.
	time.Sleep(20 * cfg.Tick)
	if max, ok := tap.maxDataSeq(); !ok || max >= 4 {
		t.Fatalf("max wire seq = %d (sent %v), want < 4", max, ok)
	}
	st := a.Stats()
	if st.WindowWithheld != total-4 {
		t.Errorf("WindowWithheld = %d, want %d", st.WindowWithheld, total-4)
	}
	if a.Pending() != total {
		t.Errorf("Pending = %d, want %d (withheld frames must stay queued)", a.Pending(), total)
	}

	// Ack the window prefix: the loop must promote withheld frames.
	a.OnFrame(wire.Frame{Type: wire.FrameAck, From: 1, Seq: 9})
	deadline := time.Now().Add(2 * time.Second)
	for {
		if max, ok := tap.maxDataSeq(); ok && max >= 13 {
			break
		}
		if time.Now().After(deadline) {
			max, _ := tap.maxDataSeq()
			t.Fatalf("window never advanced past ack: max wire seq %d, want >= 13", max)
		}
		time.Sleep(cfg.Tick)
	}
	if max, _ := tap.maxDataSeq(); max >= 14 {
		t.Errorf("max wire seq %d exceeds the re-opened window [10,14)", max)
	}
}

// TestReorderBoundDrops: frames too far ahead of the delivery cursor are
// dropped, counted, and recovered via retransmission once the gap closes.
func TestReorderBoundDrops(t *testing.T) {
	cfg := fastConfig()
	cfg.MaxReorder = 8
	tap := &frameTap{}
	var got collector
	b := New(1, 2, tap, got.deliver, cfg)
	defer func() { _ = b.Close() }()

	msg := func(seq uint64) wire.Frame {
		return wire.Frame{Type: wire.FrameData, From: 0, Seq: seq,
			Msg: dist.Message{From: 0, To: 1, Kind: "m", Round: int(seq)}}
	}
	b.OnFrame(msg(100)) // far beyond cursor+8: dropped
	b.OnFrame(msg(7))   // within bound: buffered out of order
	if st := b.Stats(); st.ReorderDrops != 1 || st.OutOfOrder != 1 {
		t.Fatalf("stats = %+v, want 1 reorder drop and 1 out-of-order buffer", st)
	}
	for seq := uint64(0); seq < 7; seq++ {
		b.OnFrame(msg(seq))
	}
	if msgs := got.snapshot(); len(msgs) != 8 {
		t.Fatalf("delivered %d messages, want 8 (0..7 in order)", len(msgs))
	}
	// The dropped frame is re-offered (a retransmission in real life) now
	// that the cursor caught up... still out of range for cursor=8, so walk
	// the stream forward and re-offer on arrival like a retransmitting peer.
	for seq := uint64(8); seq <= 100; seq++ {
		b.OnFrame(msg(seq))
	}
	msgs := got.snapshot()
	if len(msgs) != 101 {
		t.Fatalf("delivered %d messages, want 101", len(msgs))
	}
	for i, m := range msgs {
		if m.Round != i {
			t.Fatalf("delivery %d has round %d: FIFO order broken", i, m.Round)
		}
	}
}

// TestBoundedLinkStillExactlyOnceFIFO runs the lossy-link suite with tiny
// bounds: the caps must not cost a single message or reorder anything.
func TestBoundedLinkStillExactlyOnceFIFO(t *testing.T) {
	net := &lossyNet{eps: map[dist.ProcID]*Endpoint{}, dropNth: 3}
	cfg := fastConfig()
	cfg.MaxInflight = 2
	cfg.MaxReorder = 4
	var got collector
	a := New(0, 2, &lossySender{net}, func(dist.Message) error { return nil }, cfg)
	b := New(1, 2, &lossySender{net}, got.deliver, cfg)
	net.mu.Lock()
	net.eps[0], net.eps[1] = a, b
	net.mu.Unlock()
	defer func() { _ = a.Close(); _ = b.Close() }()

	const total = 100
	for i := 0; i < total; i++ {
		if err := a.Send(dist.Message{From: 0, To: 1, Kind: "m", Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(got.snapshot()) < total {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d under tiny bounds", len(got.snapshot()), total)
		}
		time.Sleep(time.Millisecond)
	}
	for i, m := range got.snapshot() {
		if m.Round != i {
			t.Fatalf("delivery %d has round %d: FIFO broken under bounds", i, m.Round)
		}
	}
	if st := a.Stats(); st.WindowWithheld == 0 {
		t.Error("MaxInflight=2 with 100 sends never withheld a frame")
	}
}

package runtime

import (
	"chc/internal/dist"
	"chc/internal/wal"
)

// Test hooks for the external runtime_test package, which exercises the
// cluster against full consensus processes (package core) and therefore
// cannot live in-package: core runs on the unified engine, which drives this
// runtime.

// ReplayNodeForTest exposes replayNode: rebuild node i from its WAL.
func (c *Cluster) ReplayNodeForTest(i int) (dist.Process, *wal.Replayed, error) {
	proc, _, rep, err := c.replayNode(i)
	return proc, rep, err
}

// RecoveryDirForTest exposes the configured WAL directory.
func (c *Cluster) RecoveryDirForTest() string { return c.recovery.Dir }

package runtime

import (
	"errors"
	"sync"
	"testing"

	"chc/internal/dist"
)

// TestMailboxPushAfterCloseConcurrent hammers Push from several goroutines
// racing a Close: no panic, and nothing pushed after close is observable
// beyond what was queued before (run with -race).
func TestMailboxPushAfterCloseConcurrent(t *testing.T) {
	m := newMailbox()
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				m.Push(dist.Message{From: dist.ProcID(w), Round: i})
			}
		}()
	}
	close(start)
	m.Close() // races the writers: some pushes land, some are dropped
	wg.Wait()

	popped := 0
	for {
		if _, err := m.Pop(); err != nil {
			break
		}
		popped++
	}
	if popped > writers*perWriter {
		t.Errorf("popped %d messages, more than were ever pushed", popped)
	}
	// The mailbox is now closed and drained: further pushes must be no-ops.
	m.Push(dist.Message{Kind: "late"})
	if _, err := m.Pop(); !errors.Is(err, ErrClosed) {
		t.Error("push after close+drain must not resurrect the mailbox")
	}
}

// TestMailboxDrainSemantics: everything pushed before Close must be
// poppable after Close, in order, by concurrent consumers, with no loss or
// duplication.
func TestMailboxDrainSemantics(t *testing.T) {
	m := newMailbox()
	const total = 500
	for i := 0; i < total; i++ {
		m.Push(dist.Message{Round: i})
	}
	m.Close()

	var mu sync.Mutex
	seen := make(map[int]bool)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				msg, err := m.Pop()
				if err != nil {
					return
				}
				mu.Lock()
				if seen[msg.Round] {
					t.Errorf("message %d delivered twice", msg.Round)
				}
				seen[msg.Round] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != total {
		t.Errorf("drained %d messages, want %d", len(seen), total)
	}
}

// TestMailboxConcurrentPopClose: consumers blocked in Pop must all wake on
// Close and report ErrClosed once the queue is empty.
func TestMailboxConcurrentPopClose(t *testing.T) {
	m := newMailbox()
	const consumers = 8
	errs := make(chan error, consumers)
	for c := 0; c < consumers; c++ {
		go func() {
			_, err := m.Pop()
			errs <- err
		}()
	}
	m.Close()
	for c := 0; c < consumers; c++ {
		if err := <-errs; !errors.Is(err, ErrClosed) {
			t.Errorf("blocked Pop woke with %v, want ErrClosed", err)
		}
	}
}

package runtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chc/internal/dist"
)

// ErrTimeout is returned by Run when the protocol does not complete within
// the deadline.
var ErrTimeout = errors.New("runtime: protocol did not complete before the deadline")

// transport moves messages between nodes. Implementations must preserve
// per-sender FIFO order and deliver each message at most once.
type transport interface {
	// Send hands a message to the network; it must not block indefinitely.
	Send(msg dist.Message) error
	// Close releases network resources.
	Close() error
}

// Cluster runs n protocol state machines concurrently, one goroutine per
// process, over an in-process or TCP transport.
type Cluster struct {
	procs  []dist.Process
	inbox  []*mailbox
	trans  []transport
	budget []int64 // remaining sends before simulated crash; -1 = unlimited

	sends atomic.Int64
	bytes atomic.Int64
	sizer func(dist.Message) int
}

// Option configures a Cluster.
type Option interface {
	apply(*Cluster)
}

type crashOption struct{ plans []dist.CrashPlan }

func (o crashOption) apply(c *Cluster) {
	for _, p := range o.plans {
		if p.Proc >= 0 && int(p.Proc) < len(c.budget) {
			c.budget[p.Proc] = int64(p.AfterSends)
		}
	}
}

// WithCrashes injects crash faults: each process stops after its AfterSends
// budget, mid-broadcast if the budget lands there.
func WithCrashes(plans ...dist.CrashPlan) Option {
	return crashOption{plans: plans}
}

type sizerOption struct{ fn func(dist.Message) int }

func (o sizerOption) apply(c *Cluster) { c.sizer = o.fn }

// WithSizer installs a payload size estimator for byte accounting.
func WithSizer(fn func(dist.Message) int) Option {
	return sizerOption{fn: fn}
}

// NewChannelCluster builds a cluster connected by in-process mailboxes.
func NewChannelCluster(procs []dist.Process, opts ...Option) (*Cluster, error) {
	c, err := newCluster(procs, opts...)
	if err != nil {
		return nil, err
	}
	for i := range procs {
		c.trans[i] = &channelTransport{cluster: c, from: dist.ProcID(i)}
	}
	return c, nil
}

func newCluster(procs []dist.Process, opts ...Option) (*Cluster, error) {
	if len(procs) == 0 {
		return nil, errors.New("runtime: no processes")
	}
	c := &Cluster{
		procs:  procs,
		inbox:  make([]*mailbox, len(procs)),
		trans:  make([]transport, len(procs)),
		budget: make([]int64, len(procs)),
	}
	for i := range procs {
		c.inbox[i] = newMailbox()
		c.budget[i] = -1
	}
	for _, o := range opts {
		o.apply(c)
	}
	return c, nil
}

// Stats reports aggregate message counts after (or during) a run.
func (c *Cluster) Stats() (sends, bytes int64) {
	return c.sends.Load(), c.bytes.Load()
}

// Run initialises every process and pumps messages until all live processes
// report Done, then shuts the transports down. It returns ErrTimeout if the
// protocol fails to converge in time.
func (c *Cluster) Run(timeout time.Duration) error {
	n := len(c.procs)
	done := make([]atomic.Bool, n)
	crashed := make([]atomic.Bool, n)

	var wg sync.WaitGroup
	for i := range c.procs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := dist.ProcID(i)
			ctx := &nodeContext{cluster: c, id: id, n: n, crashed: &crashed[i]}
			if c.budget[i] == 0 {
				crashed[i].Store(true)
				return
			}
			c.procs[i].Init(ctx)
			if c.procs[i].Done() {
				done[i].Store(true)
			}
			for {
				msg, err := c.inbox[i].Pop()
				if err != nil {
					return
				}
				if crashed[i].Load() {
					continue
				}
				c.procs[i].Deliver(ctx, msg)
				if c.procs[i].Done() {
					done[i].Store(true)
				}
			}
		}()
	}

	// Monitor: finish when every live process is done, or time out.
	deadline := time.Now().Add(timeout)
	finished := false
	for time.Now().Before(deadline) {
		all := true
		for i := 0; i < n; i++ {
			if !crashed[i].Load() && !done[i].Load() {
				all = false
				break
			}
		}
		if all {
			finished = true
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	for i := range c.inbox {
		c.inbox[i].Close()
	}
	for _, tr := range c.trans {
		if tr != nil {
			_ = tr.Close()
		}
	}
	wg.Wait()
	if !finished {
		return ErrTimeout
	}
	return nil
}

// deliverLocal routes a message into the target's mailbox (channel transport
// and TCP receive path both end up here).
func (c *Cluster) deliverLocal(msg dist.Message) {
	if msg.To < 0 || int(msg.To) >= len(c.inbox) {
		return
	}
	c.inbox[msg.To].Push(msg)
}

// consumeSendBudget enforces crash plans; it returns false when the sender
// has crashed and the message must be dropped.
func (c *Cluster) consumeSendBudget(from dist.ProcID, crashed *atomic.Bool) bool {
	if crashed.Load() {
		return false
	}
	for {
		cur := atomic.LoadInt64(&c.budget[from])
		if cur < 0 {
			return true // unlimited
		}
		if cur == 0 {
			crashed.Store(true)
			return false
		}
		if atomic.CompareAndSwapInt64(&c.budget[from], cur, cur-1) {
			return true
		}
	}
}

// nodeContext implements dist.Context for one node.
type nodeContext struct {
	cluster *Cluster
	id      dist.ProcID
	n       int
	crashed *atomic.Bool
}

var _ dist.Context = (*nodeContext)(nil)

func (nc *nodeContext) ID() dist.ProcID { return nc.id }
func (nc *nodeContext) N() int          { return nc.n }

func (nc *nodeContext) Send(to dist.ProcID, kind string, round int, payload any) {
	if !nc.cluster.consumeSendBudget(nc.id, nc.crashed) {
		return
	}
	msg := dist.Message{From: nc.id, To: to, Kind: kind, Round: round, Payload: payload}
	nc.cluster.sends.Add(1)
	if nc.cluster.sizer != nil {
		nc.cluster.bytes.Add(int64(nc.cluster.sizer(msg)))
	}
	if err := nc.cluster.trans[nc.id].Send(msg); err != nil {
		// Transport failure after shutdown; the message is lost, which the
		// crash-fault model already accounts for.
		return
	}
}

func (nc *nodeContext) Broadcast(kind string, round int, payload any) {
	for to := dist.ProcID(0); int(to) < nc.n; to++ {
		if to == nc.id {
			continue
		}
		nc.Send(to, kind, round, payload)
	}
}

// channelTransport delivers directly into the peer mailboxes.
type channelTransport struct {
	cluster *Cluster
	from    dist.ProcID
}

var _ transport = (*channelTransport)(nil)

func (t *channelTransport) Send(msg dist.Message) error {
	t.cluster.deliverLocal(msg)
	return nil
}

func (t *channelTransport) Close() error { return nil }

// String implements fmt.Stringer for diagnostics.
func (c *Cluster) String() string {
	s, b := c.Stats()
	return fmt.Sprintf("Cluster(n=%d, sends=%d, bytes=%d)", len(c.procs), s, b)
}

package runtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chc/internal/chaos"
	"chc/internal/dist"
	"chc/internal/netfault"
	"chc/internal/rlink"
	"chc/internal/wal"
	"chc/internal/wan"
	"chc/internal/wire"
)

// ErrTimeout is returned by Run when the protocol does not complete within
// the deadline.
var ErrTimeout = errors.New("runtime: protocol did not complete before the deadline")

// ErrStopped is returned by EnqueueControl once cluster shutdown has begun.
var ErrStopped = errors.New("runtime: cluster is shutting down")

// ErrNodeDown is returned by EnqueueControl while the target node is dead
// (killed by a restart plan and not yet relaunched). The control is not
// lost information: the caller's relaunch hook (RecoveryConfig.OnRelaunch)
// re-derives and re-enqueues whatever the node missed.
var ErrNodeDown = errors.New("runtime: node is down")

// transport moves protocol messages between nodes. In the plain channel
// cluster it must itself preserve per-sender FIFO order and exactly-once
// delivery; in reliable-link mode those guarantees come from the rlink
// endpoint above an unreliable frame transport.
type transport interface {
	// Send hands a message to the network; it must not block indefinitely.
	Send(msg dist.Message) error
	// Close releases network resources.
	Close() error
}

// Cluster runs n protocol state machines concurrently, one goroutine per
// process, over an in-process or TCP transport. With WithChaos or
// WithReliableLinks the message path is layered as
//
//	process -> rlink endpoint -> [chaos injector] -> frame transport
//
// and the receive path feeds frames back through the peer's endpoint, which
// restores the exactly-once FIFO contract the protocol is proven against.
//
// Processes step concurrently, so their geometry work (subset hulls,
// intersections, averaging) overlaps; the engine's internal fan-outs all
// draw from one GOMAXPROCS-sized worker pool (internal/geom/par), which
// caps total geometry parallelism across all processes instead of letting
// n state machines oversubscribe the host, and keeps results
// bitwise-deterministic so WAL replay on a recovering host reproduces the
// exact payloads of the original run.
type Cluster struct {
	// stateMu guards the per-node slices that the restart supervisor swaps
	// when it relaunches an incarnation (procs, inbox, trans, rel, wal,
	// deliver) plus the stopping flag. Steady-state paths take the read lock;
	// only kill/relaunch/shutdown take the write lock.
	stateMu  sync.RWMutex
	stopping bool

	procs  []dist.Process
	inbox  []*mailbox
	trans  []transport
	budget []int64 // remaining sends before simulated crash; -1 = unlimited

	rel     []*rlink.Endpoint          // reliable-link endpoints (nil entries when disabled)
	inj     []*chaos.Injector          // chaos injectors (nil entries when disabled)
	tcp     []*tcpTransport            // TCP transports (nil entries for channel clusters)
	wal     []*wal.WAL                 // write-ahead logs (recovery mode only)
	box     []*durableBox              // durability state machines (recovery mode only)
	diedDeg []bool                     // node died degraded: journal incomplete, relaunch forbidden
	crash   []*atomic.Bool             // per-incarnation crash flags (fresh on relaunch)
	deliver []func(dist.Message) error // per-incarnation mailbox delivery (recovery mode only)
	sender  []rlink.Sender             // frame sender under each endpoint (incl. chaos), for rebuilds

	chaosProfile *chaos.Profile
	chaosSeed    int64
	reliable     bool
	rlinkCfg     rlink.Config

	wanPlan  *wan.Plan     // WAN link model (nil when disabled)
	wanSeed  int64         // seed of the WAN delay/jitter stream
	wanModel *wan.Model    // plan resolved against n (nil when disabled)
	wanShape []*wan.Shaper // per-node frame shapers (channel clusters)
	wanInj   *wan.Injector // shared conn shaper (TCP clusters)

	netPlan *netfault.Plan     // wire-fault plan (TCP clusters only)
	nfault  *netfault.Injector // shared byte-stream fault injector
	wireCfg WireConfig         // TCP write-path tuning (coalescing, compression)

	recovery *RecoveryConfig
	restarts []RestartPlan

	// residentMu guards the resident-mode lifecycle (Start/Shutdown).
	residentMu   sync.Mutex
	resident     *runState
	residentDone bool
	residentErr  error

	retiredMu sync.Mutex
	retired   dist.NetStats // counters from endpoints/logs of killed incarnations

	durability durabilityCounters
	bg         sync.WaitGroup // background re-arm loops

	sends atomic.Int64
	bytes atomic.Int64
	sizer func(dist.Message) int
}

// ClusterStats aggregates protocol-level message counts with the link-layer
// counters of the reliability and chaos machinery.
type ClusterStats struct {
	Sends int64 // protocol messages handed to the network
	Bytes int64 // estimated payload bytes (needs WithSizer)
	Net   dist.NetStats
}

// Option configures a Cluster.
type Option interface {
	apply(*Cluster)
}

type crashOption struct{ plans []dist.CrashPlan }

func (o crashOption) apply(c *Cluster) {
	for _, p := range o.plans {
		if p.Proc >= 0 && int(p.Proc) < len(c.budget) {
			c.budget[p.Proc] = int64(p.AfterSends)
		}
	}
}

// WithCrashes injects crash faults: each process stops after its AfterSends
// budget, mid-broadcast if the budget lands there.
func WithCrashes(plans ...dist.CrashPlan) Option {
	return crashOption{plans: plans}
}

type sizerOption struct{ fn func(dist.Message) int }

func (o sizerOption) apply(c *Cluster) { c.sizer = o.fn }

// WithSizer installs a payload size estimator for byte accounting.
func WithSizer(fn func(dist.Message) int) Option {
	return sizerOption{fn: fn}
}

type chaosOption struct {
	profile chaos.Profile
	seed    int64
}

func (o chaosOption) apply(c *Cluster) {
	p := o.profile
	c.chaosProfile = &p
	c.chaosSeed = o.seed
	c.reliable = true // an unreliable link needs the reliability layer
}

// WithChaos injects seeded network faults (drops, duplication, delays,
// transient partitions) below the reliable-link layer, which is enabled
// automatically. Composable with WithCrashes: chaos attacks the links,
// crash plans attack the processes.
func WithChaos(profile chaos.Profile, seed int64) Option {
	return chaosOption{profile: profile, seed: seed}
}

type wanOption struct {
	plan wan.Plan
	seed int64
}

func (o wanOption) apply(c *Cluster) {
	p := o.plan
	c.wanPlan = &p
	c.wanSeed = o.seed
	c.reliable = true // shaping lives at the frame layer, under rlink
}

// WithWAN shapes every link through a wide-area model: per-edge propagation
// delay (jitter, heavy tails), bandwidth-derived queueing delay, and one-way
// partition windows, per the plan's geo-topology. The model is pure delay —
// it never drops or corrupts, so it consumes no crash budget and cannot trip
// the wire-level quarantine machinery. Channel clusters shape at the frame
// layer (the reliable-link stack is enabled automatically); TCP clusters
// shape the connections' write paths. Composable with WithChaos (chaos
// decides a frame's fate first; survivors ride the shaped link) and
// WithNetFaults.
func WithWAN(plan wan.Plan, seed int64) Option {
	return wanOption{plan: plan, seed: seed}
}

type reliableOption struct{ cfg rlink.Config }

func (o reliableOption) apply(c *Cluster) {
	c.reliable = true
	c.rlinkCfg = o.cfg
}

// WithReliableLinks forces the sequence/ack/retransmit layer even on
// transports that are already reliable (useful for exercising the layer
// itself). TCP clusters always run it; see NewTCPCluster.
func WithReliableLinks(cfg rlink.Config) Option {
	return reliableOption{cfg: cfg}
}

type netFaultOption struct{ plan netfault.Plan }

func (o netFaultOption) apply(c *Cluster) {
	p := o.plan
	c.netPlan = &p
}

// WithNetFaults injects seeded byte-stream faults (bit flips, garbage runs,
// mutated length prefixes, truncated writes, mid-frame resets, stalls) into
// the TCP mesh, below even the frame codec. Only NewTCPCluster honors it —
// channel clusters have no byte streams to corrupt and reject the option.
// Composable with WithChaos (frame-level faults) and WithCrashes.
func WithNetFaults(plan netfault.Plan) Option {
	return netFaultOption{plan: plan}
}

type wireOption struct{ cfg WireConfig }

func (o wireOption) apply(c *Cluster) { c.wireCfg = o.cfg }

// WithWire tunes the TCP transport's write path: frame coalescing (on by
// default; WireConfig.SingleFrame restores the write+flush-per-frame
// behavior), the flush-deadline batching window, and optional per-batch
// compression. Channel clusters have no wire and ignore the option.
func WithWire(cfg WireConfig) Option {
	return wireOption{cfg: cfg}
}

// NewChannelCluster builds a cluster connected by in-process mailboxes.
// Without chaos the mailboxes are already reliable FIFO channels and
// messages take the direct path; WithChaos (or WithReliableLinks) inserts
// the rlink/chaos stack between the processes and the mailboxes.
func NewChannelCluster(procs []dist.Process, opts ...Option) (*Cluster, error) {
	c, err := newCluster(procs, opts...)
	if err != nil {
		return nil, err
	}
	if c.netPlan != nil {
		return nil, errors.New("runtime: WithNetFaults requires a TCP cluster (channel clusters have no byte streams)")
	}
	if c.reliable {
		for i := range procs {
			var s rlink.Sender = &chanFrameSender{cluster: c}
			s = c.maybeInjectWAN(i, s)
			s = c.maybeInjectChaos(i, s)
			if err := c.installEndpoint(i, s); err != nil {
				for _, ep := range c.rel {
					if ep != nil {
						_ = ep.Close()
					}
				}
				c.closeWALs()
				return nil, err
			}
		}
		return c, nil
	}
	for i := range procs {
		c.trans[i] = &channelTransport{cluster: c, from: dist.ProcID(i)}
	}
	return c, nil
}

func newCluster(procs []dist.Process, opts ...Option) (*Cluster, error) {
	if len(procs) == 0 {
		return nil, errors.New("runtime: no processes")
	}
	c := &Cluster{
		procs:   procs,
		inbox:   make([]*mailbox, len(procs)),
		trans:   make([]transport, len(procs)),
		budget:  make([]int64, len(procs)),
		rel:     make([]*rlink.Endpoint, len(procs)),
		inj:     make([]*chaos.Injector, len(procs)),
		tcp:     make([]*tcpTransport, len(procs)),
		wal:     make([]*wal.WAL, len(procs)),
		box:     make([]*durableBox, len(procs)),
		diedDeg: make([]bool, len(procs)),
		crash:   make([]*atomic.Bool, len(procs)),
		deliver: make([]func(dist.Message) error, len(procs)),
		sender:  make([]rlink.Sender, len(procs)),
	}
	for i := range procs {
		c.inbox[i] = newMailbox()
		c.budget[i] = -1
		c.crash[i] = &atomic.Bool{}
	}
	for _, o := range opts {
		o.apply(c)
	}
	if c.wanPlan != nil && c.wanPlan.Enabled() {
		m, err := wan.NewModel(*c.wanPlan, len(procs), c.wanSeed)
		if err != nil {
			return nil, fmt.Errorf("runtime: %w", err)
		}
		c.wanModel = m
	}
	if err := c.validateRecovery(); err != nil {
		return nil, err
	}
	return c, nil
}

// maybeInjectWAN wraps a frame sender with the node's WAN shaper (channel
// clusters; TCP clusters shape at the conn layer instead). It sits below
// chaos in the chain, so only frames that survive fault injection are
// charged against the modeled link.
func (c *Cluster) maybeInjectWAN(i int, s rlink.Sender) rlink.Sender {
	if c.wanModel == nil {
		return s
	}
	sh := wan.NewShaper(dist.ProcID(i), c.wanModel, s)
	c.wanShape = append(c.wanShape, sh)
	return sh
}

// WANModel exposes the resolved WAN model (nil when WithWAN is absent); the
// resident engine uses it for per-region decide-latency attribution.
func (c *Cluster) WANModel() *wan.Model { return c.wanModel }

// maybeInjectChaos wraps a frame sender with the configured chaos injector.
func (c *Cluster) maybeInjectChaos(i int, s rlink.Sender) rlink.Sender {
	if c.chaosProfile == nil || !c.chaosProfile.Enabled() {
		return s
	}
	inj := chaos.New(dist.ProcID(i), len(c.procs), *c.chaosProfile, c.chaosSeed, s)
	c.inj[i] = inj
	return inj
}

// installEndpoint places a reliable-link endpoint over the frame sender and
// routes its deliveries into the local mailboxes. In recovery mode it also
// creates the node's write-ahead log and threads deliveries through it.
func (c *Cluster) installEndpoint(i int, s rlink.Sender) error {
	c.sender[i] = s
	deliver := c.deliverLocal
	if c.recovery != nil {
		w, err := wal.CreateWith(WALPath(c.recovery.Dir, dist.ProcID(i)), c.walOptions())
		if err != nil {
			return fmt.Errorf("runtime: create WAL for node %d: %w", i, err)
		}
		if c.recovery.Inputs != nil {
			if err := w.AppendInput(dist.ProcID(i), c.recovery.Inputs[i]); err == nil {
				err = w.Sync()
			}
			if err != nil {
				_ = w.Close()
				return fmt.Errorf("runtime: journal input for node %d: %w", i, err)
			}
		}
		c.wal[i] = w
		box := newDurableBox(c, i, w, c.inbox[i], c.crash[i])
		c.box[i] = box
		deliver = box.deliver
		c.deliver[i] = deliver
	}
	ep := rlink.New(dist.ProcID(i), len(c.procs), s, deliver, c.rlinkCfg)
	c.rel[i] = ep
	c.trans[i] = &endpointTransport{ep: ep}
	return nil
}

// closeWALs closes every open write-ahead log (constructor error paths).
func (c *Cluster) closeWALs() {
	for _, w := range c.wal {
		if w != nil {
			_ = w.Close()
		}
	}
}

// walOptions builds the log options from the recovery configuration: the
// (possibly fault-injecting) filesystem, the checkpoint policy, and mirror
// mode when the degrade policy may need to re-arm or the caller plans
// on-demand checkpoints (retention compaction needs the state mirror).
func (c *Cluster) walOptions() wal.Options {
	o := wal.Options{}
	if c.recovery != nil {
		o.FS = c.recovery.FS
		o.Checkpoint = c.recovery.Checkpoint
		o.Mirror = c.recovery.Durability == Degrade || c.recovery.Mirror
	}
	return o
}

// CheckpointWALs snapshots and compacts every live write-ahead log: each
// log's mirrored state becomes a fresh checkpoint segment and the replayed
// history behind it is dropped. The resident engine calls this on a WAL
// retention horizon (every N retired instances) so long-lived services do
// not accumulate unbounded journal; logs must run with RecoveryConfig.Mirror
// (or the Degrade policy, which mirrors anyway). Nodes that are down between
// kill and relaunch are skipped; the first real error is returned.
func (c *Cluster) CheckpointWALs() error {
	c.stateMu.RLock()
	wals := append([]*wal.WAL(nil), c.wal...)
	c.stateMu.RUnlock()
	var first error
	for _, w := range wals {
		if w == nil {
			continue
		}
		if err := w.Checkpoint(); err != nil && !errors.Is(err, wal.ErrClosed) && first == nil {
			first = err
		}
	}
	return first
}

// routeFrame delivers a frame to the target node's reliable-link endpoint
// (the in-process analogue of the TCP receive path). A node that is down
// between kill and relaunch has no endpoint, and its frames are dropped —
// exactly what a dead TCP listener would do.
func (c *Cluster) routeFrame(to dist.ProcID, f wire.Frame) error {
	if to < 0 || int(to) >= len(c.rel) {
		return fmt.Errorf("runtime: frame to unknown node %d", to)
	}
	// Snapshot under the read lock but call outside it: OnFrame's ack reply
	// re-enters routeFrame, and a recursive RLock can deadlock against a
	// waiting writer (the restart supervisor). A just-killed endpoint is
	// safe to call — Close makes OnFrame a no-op.
	c.stateMu.RLock()
	ep := c.rel[to]
	c.stateMu.RUnlock()
	if ep == nil {
		return errors.New("runtime: target has no reliable-link endpoint")
	}
	ep.OnFrame(f)
	return nil
}

// Stats reports aggregate protocol and link-layer counters after (or
// during) a run.
func (c *Cluster) Stats() ClusterStats {
	st := ClusterStats{Sends: c.sends.Load(), Bytes: c.bytes.Load()}
	c.stateMu.RLock()
	rel := append([]*rlink.Endpoint(nil), c.rel...)
	wals := append([]*wal.WAL(nil), c.wal...)
	c.stateMu.RUnlock()
	for _, ep := range rel {
		if ep == nil {
			continue
		}
		s := ep.Stats()
		st.Net.FramesSent += s.FramesSent
		st.Net.Retransmits += s.Retransmits
		st.Net.DupSuppressed += s.DupSuppressed
		st.Net.OutOfOrder += s.OutOfOrder
		st.Net.AcksSent += s.AcksSent
		st.Net.Resumes += s.Resumes
		st.Net.WindowWithheld += s.WindowWithheld
		st.Net.ReorderDrops += s.ReorderDrops
	}
	for _, w := range wals {
		if w == nil {
			continue
		}
		s := w.Stats()
		st.Net.WALAppends += s.Appends
		st.Net.WALSyncs += s.Syncs
		st.Net.WALCheckpoints += s.Checkpoints
	}
	for _, inj := range c.inj {
		if inj == nil {
			continue
		}
		s := inj.Stats()
		st.Net.InjectedDrops += s.Drops
		st.Net.InjectedDups += s.Dups
		st.Net.InjectedDelays += s.Delays
		st.Net.PartitionDrops += s.PartitionDrops
	}
	for _, t := range c.tcp {
		if t == nil {
			continue
		}
		st.Net.Reconnects += t.reconnects.Load()
		st.Net.LinkFaults += t.linkFaults.Load()
		st.Net.CorruptFrames += t.corruptFrames.Load()
		st.Net.PeerQuarantines += t.quarantines.Load()
		st.Net.PeerReadmits += t.readmits.Load()
	}
	if c.nfault != nil {
		st.Net.InjectedWire = int64(c.nfault.Stats().Total())
	}
	for _, sh := range c.wanShape {
		st.Net.WANDelayedFrames += sh.Delayed()
		st.Net.WANCutHeld += sh.Held()
	}
	if c.wanInj != nil {
		st.Net.WANShapedWrites += c.wanInj.Delayed()
		st.Net.WANCutHeld += c.wanInj.Held()
	}
	c.retiredMu.Lock()
	r := c.retired
	c.retiredMu.Unlock()
	st.Net.FramesSent += r.FramesSent
	st.Net.Retransmits += r.Retransmits
	st.Net.DupSuppressed += r.DupSuppressed
	st.Net.OutOfOrder += r.OutOfOrder
	st.Net.AcksSent += r.AcksSent
	st.Net.Resumes += r.Resumes
	st.Net.WindowWithheld += r.WindowWithheld
	st.Net.ReorderDrops += r.ReorderDrops
	st.Net.WALAppends += r.WALAppends
	st.Net.WALSyncs += r.WALSyncs
	st.Net.WALCheckpoints += r.WALCheckpoints
	d := c.durability.stats()
	st.Net.DurabilityFaults = d.Faults
	st.Net.FailStops = d.FailStops
	st.Net.Degradations = d.Degraded
	st.Net.Rearms = d.Rearms
	return st
}

// Degraded lists the nodes currently running in non-durable (degraded)
// mode: quarantined by the Degrade policy and not yet re-armed.
func (c *Cluster) Degraded() []dist.ProcID {
	c.stateMu.RLock()
	boxes := append([]*durableBox(nil), c.box...)
	c.stateMu.RUnlock()
	var out []dist.ProcID
	for i, b := range boxes {
		if b != nil && b.isDegraded() {
			out = append(out, dist.ProcID(i))
		}
	}
	return out
}

// Processes returns the cluster's current state machines — after a run with
// restarts these are the relaunched incarnations, so decision inspection
// sees the recovered state.
func (c *Cluster) Processes() []dist.Process {
	c.stateMu.RLock()
	defer c.stateMu.RUnlock()
	return append([]dist.Process(nil), c.procs...)
}

// Run initialises every process and pumps messages until all live processes
// report Done, then shuts the transports down. Completion is signalled by
// the process goroutines themselves (no polling): each incarnation settles
// exactly once — on deciding or on crashing — and the last one to settle
// wakes the monitor. With WithRestarts, a crashed node's settle hands the
// slot to the restart supervisor, which relaunches the node from its WAL;
// the relaunched incarnation settles a slot of its own. It returns
// ErrTimeout if the protocol fails to converge in time; Stats() still
// reports the partial counters accumulated up to the timeout. A failed
// relaunch surfaces as an error wrapping ErrRecovery.
func (c *Cluster) Run(timeout time.Duration) error {
	c.residentMu.Lock()
	started := c.resident != nil
	c.residentMu.Unlock()
	if started {
		return errors.New("runtime: cluster is resident (started with Start); use Shutdown")
	}
	// One settle slot per initial incarnation plus one per planned restart.
	rs := c.newRunState(int64(len(c.procs) + len(c.restarts)))

	var runErr error
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-rs.allSettled:
	case <-timer.C:
		runErr = ErrTimeout
	}
	if recErr := c.teardown(rs); recErr != nil {
		return recErr
	}
	return runErr
}

// residentSlots keeps a resident run's settle accounting from ever reaching
// zero: a resident cluster ends by Shutdown, never by "everyone decided".
const residentSlots = int64(1) << 62

// Start launches the cluster resident: every process goroutine starts
// delivering, restart plans stay armed (killed nodes are relaunched from
// their WALs), and the cluster keeps running until Shutdown. Unlike Run,
// completion of the hosted state machines settles nothing — resident
// processes (the engine's lifecycle nodes) are never Done; work arrives and
// retires dynamically via EnqueueControl.
func (c *Cluster) Start() error {
	c.residentMu.Lock()
	defer c.residentMu.Unlock()
	if c.resident != nil {
		return errors.New("runtime: cluster already started")
	}
	c.stateMu.RLock()
	stopping := c.stopping
	c.stateMu.RUnlock()
	if stopping {
		return ErrStopped
	}
	c.resident = c.newRunState(residentSlots)
	return nil
}

// Shutdown tears a resident cluster down: further control enqueues fail,
// process goroutines drain, links stop retransmitting, transports and WALs
// close. It is idempotent and returns any recovery failure accumulated over
// the cluster's lifetime.
func (c *Cluster) Shutdown() error {
	c.residentMu.Lock()
	defer c.residentMu.Unlock()
	if c.resident == nil {
		return errors.New("runtime: cluster not started")
	}
	if c.residentDone {
		return c.residentErr
	}
	c.residentDone = true
	c.residentErr = c.teardown(c.resident)
	return c.residentErr
}

// EnqueueControl places an in-band control message (dist.KindOpenInstance /
// dist.KindCloseInstance) on node id's delivery path. On a WAL-enabled
// cluster the control goes through the node's journaling path, so it is a
// durable record ordered exactly where the node will process it — replay
// re-applies it at the same position. The message must be self-addressed
// (From == To == id): controls are local lifecycle commands, not traffic.
func (c *Cluster) EnqueueControl(id dist.ProcID, msg dist.Message) error {
	if id < 0 || int(id) >= len(c.inbox) {
		return fmt.Errorf("runtime: control for unknown node %d", id)
	}
	if msg.From != id || msg.To != id {
		return fmt.Errorf("runtime: control for node %d must be self-addressed (from=%d to=%d)", id, msg.From, msg.To)
	}
	c.stateMu.RLock()
	stopping := c.stopping
	d := c.deliver[id]
	mbox := c.inbox[id]
	c.stateMu.RUnlock()
	if stopping {
		return ErrStopped
	}
	if d != nil {
		return d(msg)
	}
	if c.recovery != nil {
		// Recovery mode always installs a journaling deliver func; its
		// absence means the node is dead between kill and relaunch.
		return ErrNodeDown
	}
	mbox.Push(msg)
	return nil
}

// newRunState builds the settle bookkeeping with the given number of slots
// and launches every initial incarnation.
func (c *Cluster) newRunState(slots int64) *runState {
	n := len(c.procs)
	rs := &runState{
		c:          c,
		n:          n,
		done:       make([]atomic.Bool, n),
		allSettled: make(chan struct{}),
		queues:     make([][]RestartPlan, n),
	}
	rs.unsettled.Store(slots)
	for _, rp := range c.restarts {
		rs.queues[rp.Proc] = append(rs.queues[rp.Proc], rp)
	}
	c.stateMu.RLock()
	for i := range c.procs {
		rs.launch(i, c.procs[i], c.inbox[i], c.crash[i], false)
	}
	c.stateMu.RUnlock()
	return rs
}

// teardown shuts the cluster down. Order: block further relaunches, wake
// the process goroutines, stop retransmissions, disarm chaos, then tear the
// transports down.
func (c *Cluster) teardown(rs *runState) error {
	c.stateMu.Lock()
	c.stopping = true
	inboxes := append([]*mailbox(nil), c.inbox...)
	rel := append([]*rlink.Endpoint(nil), c.rel...)
	wals := append([]*wal.WAL(nil), c.wal...)
	boxes := append([]*durableBox(nil), c.box...)
	trans := append([]transport(nil), c.trans...)
	c.stateMu.Unlock()
	for _, b := range boxes {
		if b != nil {
			b.close()
		}
	}
	for _, mbox := range inboxes {
		mbox.Close()
	}
	for _, ep := range rel {
		if ep != nil {
			_ = ep.Close()
		}
	}
	for _, inj := range c.inj {
		if inj != nil {
			_ = inj.Close()
		}
	}
	for _, sh := range c.wanShape {
		sh.Close()
	}
	// Disarm wire corruption and WAN shaping before tearing transports down,
	// so shutdown traffic (final acks, closes) is not re-broken or parked
	// behind modeled delays mid-teardown.
	c.nfault.Disarm()
	c.wanInj.Disarm()
	for _, tr := range trans {
		if tr != nil {
			_ = tr.Close()
		}
	}
	for _, t := range c.tcp {
		if t != nil {
			_ = t.Close()
		}
	}
	for _, w := range wals {
		if w != nil {
			_ = w.Close()
		}
	}
	rs.wg.Wait()
	c.bg.Wait()
	return rs.recoveryErr()
}

// deliverLocal routes a message into the target's mailbox (channel transport
// and reliable-link receive path both end up here). The error return exists
// only to satisfy the rlink deliver signature; a plain mailbox push cannot
// fail.
func (c *Cluster) deliverLocal(msg dist.Message) error {
	if msg.To < 0 || int(msg.To) >= len(c.inbox) {
		return nil
	}
	c.stateMu.RLock()
	mbox := c.inbox[msg.To]
	c.stateMu.RUnlock()
	mbox.Push(msg)
	return nil
}

// deliverToSelf hands a self-addressed message to the node's own mailbox. In
// recovery mode it goes through the incarnation's journaling path first —
// self-sends are deliveries like any other and must be replayable.
func (c *Cluster) deliverToSelf(id dist.ProcID, msg dist.Message) error {
	c.stateMu.RLock()
	d := c.deliver[id]
	c.stateMu.RUnlock()
	if d != nil {
		return d(msg)
	}
	return c.deliverLocal(msg)
}

// consumeSendBudget enforces crash plans; it returns false when the sender
// has crashed and the message must be dropped.
func (c *Cluster) consumeSendBudget(from dist.ProcID, crashed *atomic.Bool) bool {
	if crashed.Load() {
		return false
	}
	for {
		cur := atomic.LoadInt64(&c.budget[from])
		if cur < 0 {
			return true // unlimited
		}
		if cur == 0 {
			crashed.Store(true)
			return false
		}
		if atomic.CompareAndSwapInt64(&c.budget[from], cur, cur-1) {
			return true
		}
	}
}

// nodeContext implements dist.Context for one node.
type nodeContext struct {
	cluster *Cluster
	id      dist.ProcID
	n       int
	crashed *atomic.Bool
}

var (
	_ dist.Context        = (*nodeContext)(nil)
	_ dist.InstanceSender = (*nodeContext)(nil)
)

func (nc *nodeContext) ID() dist.ProcID { return nc.id }
func (nc *nodeContext) N() int          { return nc.n }

func (nc *nodeContext) Send(to dist.ProcID, kind string, round int, payload any) {
	nc.SendInstance(0, to, kind, round, payload)
}

func (nc *nodeContext) SendInstance(instance int, to dist.ProcID, kind string, round int, payload any) {
	// Invalid targets are local no-ops: they consume no crash budget and do
	// not count as sends, mirroring dist.Sim.send.
	if to < 0 || int(to) >= nc.n {
		return
	}
	if !nc.cluster.consumeSendBudget(nc.id, nc.crashed) {
		return
	}
	msg := dist.Message{From: nc.id, To: to, Kind: kind, Round: round, Instance: instance, Payload: payload}
	nc.cluster.sends.Add(1)
	mSends.Inc()
	if nc.cluster.sizer != nil {
		nc.cluster.bytes.Add(int64(nc.cluster.sizer(msg)))
	}
	if to == nc.id {
		// No node has a network link to itself on any transport; in recovery
		// mode the self-delivery is journaled like any other. A journaling
		// failure here has no retransmitting peer to lean on, and ignoring it
		// would silently desynchronize the process from its durable history —
		// so it is treated as a crash of the node: the incarnation settles as
		// crashed, and a restart plan (if any) relaunches it from the
		// journaled prefix, whose replay regenerates the failed self-send.
		if err := nc.cluster.deliverToSelf(nc.id, msg); err != nil {
			nc.crashed.Store(true)
		}
		return
	}
	nc.cluster.stateMu.RLock()
	tr := nc.cluster.trans[nc.id]
	nc.cluster.stateMu.RUnlock()
	if err := tr.Send(msg); err != nil {
		// Transport failure after shutdown; the message is lost, which the
		// crash-fault model already accounts for. The send still counted:
		// it was handed to the network.
		return
	}
}

func (nc *nodeContext) Broadcast(kind string, round int, payload any) {
	for to := dist.ProcID(0); int(to) < nc.n; to++ {
		if to == nc.id {
			continue
		}
		nc.Send(to, kind, round, payload)
	}
}

// channelTransport delivers directly into the peer mailboxes.
type channelTransport struct {
	cluster *Cluster
	from    dist.ProcID
}

var _ transport = (*channelTransport)(nil)

func (t *channelTransport) Send(msg dist.Message) error {
	return t.cluster.deliverLocal(msg)
}

func (t *channelTransport) Close() error { return nil }

// chanFrameSender carries frames between in-process nodes (the unreliable
// hop under the rlink/chaos stack of a channel cluster).
type chanFrameSender struct {
	cluster *Cluster
}

var _ rlink.Sender = (*chanFrameSender)(nil)

func (s *chanFrameSender) SendFrame(to dist.ProcID, f wire.Frame) error {
	return s.cluster.routeFrame(to, f)
}

// endpointTransport adapts a reliable-link endpoint to the transport
// interface. Closing is handled by the cluster shutdown sequence.
type endpointTransport struct {
	ep *rlink.Endpoint
}

var _ transport = (*endpointTransport)(nil)

func (t *endpointTransport) Send(msg dist.Message) error { return t.ep.Send(msg) }
func (t *endpointTransport) Close() error                { return nil }

// String implements fmt.Stringer for diagnostics.
func (c *Cluster) String() string {
	st := c.Stats()
	return fmt.Sprintf("Cluster(n=%d, sends=%d, bytes=%d)", len(c.procs), st.Sends, st.Bytes)
}

package runtime

import (
	"sync"
	"testing"
	"time"

	"chc/internal/chaos"
	"chc/internal/dist"
)

// roundProc advances through R lockstep rounds: it broadcasts round r+1
// once it has heard round r from every peer. The sustained multi-round
// traffic gives a mid-run link failure something to disrupt.
type roundProc struct {
	mu     sync.Mutex
	n      int
	rounds int
	heard  map[int]map[dist.ProcID]bool
	round  int // highest round this process has completed
	done   bool
}

func newRoundProc(n, rounds int) *roundProc {
	return &roundProc{n: n, rounds: rounds, heard: make(map[int]map[dist.ProcID]bool)}
}

func (p *roundProc) Init(ctx dist.Context) {
	ctx.Broadcast("round", 0, nil)
}

func (p *roundProc) Deliver(ctx dist.Context, msg dist.Message) {
	p.mu.Lock()
	if p.heard[msg.Round] == nil {
		p.heard[msg.Round] = make(map[dist.ProcID]bool)
	}
	p.heard[msg.Round][msg.From] = true
	var advance []int
	for !p.done && len(p.heard[p.round]) == p.n-1 {
		p.round++
		if p.round >= p.rounds {
			p.done = true
			break
		}
		advance = append(advance, p.round)
	}
	p.mu.Unlock()
	for _, r := range advance {
		ctx.Broadcast("round", r, nil)
	}
}

func (p *roundProc) Done() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done
}

func (p *roundProc) currentRound() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.round
}

// TestTCPClusterRecoversFromKilledConnections kills every connection of one
// node mid-run and requires the cluster to finish anyway: the hardened
// transport must redial (observable as Reconnects > 0) and the reliable
// links must retransmit whatever the cut lost.
func TestTCPClusterRecoversFromKilledConnections(t *testing.T) {
	const n, rounds = 3, 60
	procs := make([]dist.Process, n)
	impl := make([]*roundProc, n)
	for i := range procs {
		impl[i] = newRoundProc(n, rounds)
		procs[i] = impl[i]
	}
	c, err := NewTCPCluster(procs)
	if err != nil {
		t.Fatal(err)
	}

	runDone := make(chan error, 1)
	go func() { runDone <- c.Run(60 * time.Second) }()

	// Wait for the protocol to get going, then cut node 1 off completely.
	deadline := time.Now().Add(30 * time.Second)
	for impl[0].currentRound() < 5 && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
	if impl[0].currentRound() < 5 {
		t.Fatal("protocol made no progress before the link kill")
	}
	c.tcp[1].breakLinks()

	if err := <-runDone; err != nil {
		t.Fatalf("cluster did not recover from killed connections: %v", err)
	}
	for i, p := range impl {
		if got := p.currentRound(); got < rounds {
			t.Errorf("process %d stopped at round %d, want %d", i, got, rounds)
		}
	}
	st := c.Stats()
	if st.Net.Reconnects == 0 {
		t.Errorf("no reconnects recorded after killing node 1's links; net stats: %+v", st.Net)
	}
	if st.Net.Retransmits == 0 {
		t.Errorf("no retransmits recorded after the cut; net stats: %+v", st.Net)
	}
}

// TestTCPClusterChaos runs the gather protocol over real sockets with
// chaos injected above them — drops and duplicates on top of TCP must be
// absorbed by the reliable-link layer.
func TestTCPClusterChaos(t *testing.T) {
	const n = 4
	procs := make([]dist.Process, n)
	impl := make([]*gatherProc, n)
	for i := range procs {
		impl[i] = newGatherProc(n, nil)
		procs[i] = impl[i]
	}
	c, err := NewTCPCluster(procs, WithChaos(chaos.Profile{Drop: 0.25, Dup: 0.1}, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, p := range impl {
		if got := p.heardCount(); got < n {
			t.Errorf("process %d heard %d, want %d", i, got, n)
		}
	}
	if st := c.Stats(); st.Net.InjectedDrops == 0 {
		t.Error("chaos injected nothing over TCP")
	}
}

package runtime

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chc/internal/dist"
	"chc/internal/geom"
	"chc/internal/wal"
)

// TestJournalingDeliverOrderMatchesJournal hammers one incarnation's
// journaling path from several goroutines (per-sender link locks in rlink
// mean deliveries to one node do race) and checks that the order the
// mailbox hands messages to the process is byte-for-byte the order the
// journal replays — the invariant that makes a post-restart incarnation
// regenerate the exact pre-crash send sequence.
func TestJournalingDeliverOrderMatchesJournal(t *testing.T) {
	dir := t.TempDir()
	path := WALPath(dir, 0)
	w, err := wal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	mbox := newMailbox()
	deliver := newDurableBox(&Cluster{}, 0, w, mbox, &atomic.Bool{}).deliver

	const senders, per = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				if err := deliver(dist.Message{From: dist.ProcID(g), To: 0, Kind: "t", Round: k}); err != nil {
					t.Errorf("deliver: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := wal.Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Delivered) != senders*per {
		t.Fatalf("journal has %d deliveries, want %d", len(rep.Delivered), senders*per)
	}
	mbox.Close()
	for i, want := range rep.Delivered {
		got, err := mbox.Pop()
		if err != nil {
			t.Fatalf("mailbox drained after %d messages, journal has %d", i, len(rep.Delivered))
		}
		if got.From != want.From || got.Round != want.Round {
			t.Fatalf("position %d: mailbox has {from %d round %d}, journal has {from %d round %d}",
				i, got.From, got.Round, want.From, want.Round)
		}
	}
}

// panicOnReplayProc runs normally in its first incarnation (as gatherProc)
// but the recovery factory builds this type, which panics on the first
// replayed delivery — modelling a corrupt history or a buggy factory.
type panicOnReplayProc struct{}

func (panicOnReplayProc) Init(dist.Context) {}
func (panicOnReplayProc) Deliver(dist.Context, dist.Message) {
	panic("replay blew up")
}
func (panicOnReplayProc) Done() bool { return false }

// echoOnDeliverProc is a gatherProc that answers every delivery with one
// extra send. Sends are the only thing that spends the kill budget, so a
// node running this type with a budget larger than its Init broadcast can
// only crash *inside* a Deliver — i.e. strictly after that delivery was
// journaled. That makes "the journal holds at least one delivery at
// relaunch" deterministic instead of a race against the Init-broadcast kill.
type echoOnDeliverProc struct{ *gatherProc }

func (p echoOnDeliverProc) Deliver(ctx dist.Context, msg dist.Message) {
	p.gatherProc.Deliver(ctx, msg)
	ctx.Send(msg.From, "echo", msg.Round, nil)
}

// TestRecoveryPanicIsDistinctError asserts the satellite requirement: a
// process panicking during replay surfaces as ErrRecovery, not as a plain
// crash or a timeout.
func TestRecoveryPanicIsDistinctError(t *testing.T) {
	const n = 4
	procs := make([]dist.Process, n)
	for i := range procs {
		// Quorum n-1: the three surviving nodes can finish without node 0.
		procs[i] = newGatherProc(n-1, nil)
	}
	// Node 0 echoes deliveries; budget n: Init consumes n-1 sends, the first
	// delivery's echo consumes the last, the second delivery's echo trips the
	// crash — so at relaunch the journal provably holds deliveries, and the
	// replaying panicOnReplayProc panics inside replayNode (where the
	// recovery machinery must catch it), never in the live delivery loop.
	// Its quorum is unreachable so it cannot decide before the crash fires.
	procs[0] = echoOnDeliverProc{newGatherProc(n+1, nil)}
	c, err := NewChannelCluster(procs,
		WithRecovery(RecoveryConfig{
			Dir:     t.TempDir(),
			Factory: func(int) dist.Process { return panicOnReplayProc{} },
		}),
		WithRestarts(RestartPlan{Proc: 0, KillAfterSends: n, Downtime: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(30 * time.Second)
	if !errors.Is(err, ErrRecovery) {
		t.Fatalf("err = %v, want ErrRecovery", err)
	}
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("recovery failure misreported as timeout: %v", err)
	}
}

// TestTimeoutReportsPartialStats asserts the satellite requirement: a run
// that times out still reports the counters accumulated so far.
func TestTimeoutReportsPartialStats(t *testing.T) {
	const n = 3
	procs := make([]dist.Process, n)
	for i := range procs {
		procs[i] = newGatherProc(n+1, nil) // unreachable quorum: never done
	}
	c, err := NewChannelCluster(procs)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(100 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if st := c.Stats(); st.Sends != n*(n-1) {
		t.Errorf("partial stats: sends = %d, want %d", st.Sends, n*(n-1))
	}
}

func TestRecoveryValidation(t *testing.T) {
	procs := []dist.Process{newGatherProc(1, nil), newGatherProc(1, nil)}
	if _, err := NewChannelCluster(procs,
		WithRestarts(RestartPlan{Proc: 0, KillAfterSends: 1})); err == nil {
		t.Error("restarts without recovery should error")
	}
	cfg := RecoveryConfig{Dir: t.TempDir(), Factory: func(int) dist.Process { return nil }}
	if _, err := NewChannelCluster(procs, WithRecovery(cfg),
		WithRestarts(RestartPlan{Proc: 9, KillAfterSends: 1})); err == nil {
		t.Error("restart plan for unknown process should error")
	}
	if _, err := NewChannelCluster(procs, WithRecovery(cfg),
		WithRestarts(RestartPlan{Proc: 0, KillAfterSends: -1})); err == nil {
		t.Error("negative kill budget should error")
	}
	if _, err := NewChannelCluster(procs,
		WithRecovery(RecoveryConfig{Dir: t.TempDir()})); err == nil {
		t.Error("recovery without factory should error")
	}
	bad := RecoveryConfig{Dir: t.TempDir(), Factory: func(int) dist.Process { return nil },
		Inputs: []geom.Point{geom.NewPoint(1)}}
	if _, err := NewChannelCluster(procs, WithRecovery(bad)); err == nil {
		t.Error("input-count mismatch should error")
	}
}

// TestWALPathLayout pins the on-disk layout the chcrun -recover flag and
// operators rely on.
func TestWALPathLayout(t *testing.T) {
	if got := WALPath("/tmp/x", 7); got != "/tmp/x/node-007.wal" {
		t.Errorf("WALPath = %q", got)
	}
}

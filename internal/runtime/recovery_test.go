package runtime

import (
	"bytes"
	"encoding/gob"
	"errors"
	"sync"
	"testing"
	"time"

	"chc/internal/chaos"
	"chc/internal/core"
	"chc/internal/dist"
	"chc/internal/geom"
	"chc/internal/polytope"
	"chc/internal/wal"
)

// ccFixture builds n Algorithm CC processes with deterministic inputs and a
// factory that rebuilds any of them from scratch — the determinism the WAL
// replay path relies on.
type ccFixture struct {
	params core.Params
	inputs []geom.Point
}

func newCCFixture(t *testing.T, n, f int) *ccFixture {
	t.Helper()
	params := core.Params{
		N: n, F: f, D: 2,
		Epsilon:    0.05,
		InputLower: 0, InputUpper: 10,
	}
	inputs := make([]geom.Point, n)
	for i := range inputs {
		inputs[i] = geom.NewPoint(float64(i%4)+0.5, float64((i*3)%5)+0.5)
	}
	return &ccFixture{params: params, inputs: inputs}
}

func (fx *ccFixture) factory(t *testing.T) func(i int) dist.Process {
	return func(i int) dist.Process {
		p, err := core.NewProcess(fx.params, dist.ProcID(i), fx.inputs[i])
		if err != nil {
			t.Errorf("factory(%d): %v", i, err)
			return nil
		}
		return p
	}
}

func (fx *ccFixture) procs(t *testing.T) []dist.Process {
	t.Helper()
	procs := make([]dist.Process, fx.params.N)
	for i := range procs {
		p, err := core.NewProcess(fx.params, dist.ProcID(i), fx.inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
	}
	return procs
}

// protocolStateBytes serializes the observable protocol state of a CC
// process — the full execution trace plus the decision polytope — so two
// reconstructions can be compared byte for byte.
func protocolStateBytes(t *testing.T, p dist.Process) []byte {
	t.Helper()
	cp, ok := p.(*core.Process)
	if !ok {
		t.Fatalf("process is %T, want *core.Process", p)
	}
	out, err := cp.Output()
	if err != nil {
		t.Fatalf("process has no decision: %v", err)
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(cp.TraceData()); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(out.Vertices()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWALReplayByteIdentical is the acceptance-criteria replay test: after a
// full consensus run with journaling enabled, replaying each node's WAL
// through a fresh factory-built process must reconstruct byte-identical
// protocol state (trace and decision polytope).
func TestWALReplayByteIdentical(t *testing.T) {
	fx := newCCFixture(t, 5, 1)
	procs := fx.procs(t)
	dir := t.TempDir()
	c, err := NewChannelCluster(procs,
		WithRecovery(RecoveryConfig{Dir: dir, Factory: fx.factory(t), Inputs: fx.inputs}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	live := c.Processes()
	for i := range procs {
		replayed, _, rep, err := c.replayNode(i)
		if err != nil {
			t.Fatalf("replay node %d: %v", i, err)
		}
		if rep.Epoch != 0 {
			t.Errorf("node %d: epoch = %d, want 0 (no restarts)", i, rep.Epoch)
		}
		want := protocolStateBytes(t, live[i])
		got := protocolStateBytes(t, replayed)
		if !bytes.Equal(want, got) {
			t.Errorf("node %d: replayed state differs from live state (%d vs %d bytes)",
				i, len(got), len(want))
		}
	}
	if st := c.Stats(); st.Net.WALAppends == 0 || st.Net.WALSyncs == 0 {
		t.Errorf("WAL counters not reported: %+v", st.Net)
	}
	// The decision must be journaled too: a decided node's log says so
	// without re-executing the state machine.
	for i := range procs {
		rep, err := wal.Replay(WALPath(dir, dist.ProcID(i)))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Decided {
			t.Errorf("node %d: no decision record in the WAL", i)
		}
		if want := fx.params.TEnd(); rep.DecidedRound != want {
			t.Errorf("node %d: decided round = %d, want t_end = %d", i, rep.DecidedRound, want)
		}
	}
}

// TestJournalingDeliverOrderMatchesJournal hammers one incarnation's
// journaling path from several goroutines (per-sender link locks in rlink
// mean deliveries to one node do race) and checks that the order the
// mailbox hands messages to the process is byte-for-byte the order the
// journal replays — the invariant that makes a post-restart incarnation
// regenerate the exact pre-crash send sequence.
func TestJournalingDeliverOrderMatchesJournal(t *testing.T) {
	dir := t.TempDir()
	path := WALPath(dir, 0)
	w, err := wal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	mbox := newMailbox()
	deliver := journalingDeliver(w, mbox)

	const senders, per = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				if err := deliver(dist.Message{From: dist.ProcID(g), To: 0, Kind: "t", Round: k}); err != nil {
					t.Errorf("deliver: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := wal.Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Delivered) != senders*per {
		t.Fatalf("journal has %d deliveries, want %d", len(rep.Delivered), senders*per)
	}
	mbox.Close()
	for i, want := range rep.Delivered {
		got, err := mbox.Pop()
		if err != nil {
			t.Fatalf("mailbox drained after %d messages, journal has %d", i, len(rep.Delivered))
		}
		if got.From != want.From || got.Round != want.Round {
			t.Fatalf("position %d: mailbox has {from %d round %d}, journal has {from %d round %d}",
				i, got.From, got.Round, want.From, want.Round)
		}
	}
}

// runRecoveryConsensus runs one CC instance with the given restart schedule
// and asserts that every process — including the restarted ones — decides,
// and that all decisions agree.
func runRecoveryConsensus(t *testing.T, fx *ccFixture, mk func([]dist.Process, ...Option) (*Cluster, error), plans []RestartPlan) *Cluster {
	t.Helper()
	procs := fx.procs(t)
	c, err := mk(procs,
		WithRecovery(RecoveryConfig{Dir: t.TempDir(), Factory: fx.factory(t), Inputs: fx.inputs}),
		WithRestarts(plans...))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	live := c.Processes()
	outs := make([]*core.Process, len(live))
	for i, p := range live {
		cp, ok := p.(*core.Process)
		if !ok {
			t.Fatalf("node %d: process is %T", i, p)
		}
		if _, err := cp.Output(); err != nil {
			t.Fatalf("node %d did not decide after recovery: %v", i, err)
		}
		outs[i] = cp
	}
	// ε-agreement must hold across the restart boundary: recovered nodes are
	// correct processes, not crashed ones.
	for i := 1; i < len(outs); i++ {
		a, _ := outs[0].Output()
		b, _ := outs[i].Output()
		d, err := polytope.Hausdorff(a, b, geom.DefaultEps)
		if err != nil {
			t.Fatal(err)
		}
		if d > fx.params.Epsilon+1e-9 {
			t.Errorf("outputs 0 and %d disagree: d_H = %g > ε = %g", i, d, fx.params.Epsilon)
		}
	}
	return c
}

func TestChannelClusterRestartRecovery(t *testing.T) {
	fx := newCCFixture(t, 5, 1)
	c := runRecoveryConsensus(t, fx, NewChannelCluster, []RestartPlan{
		{Proc: 1, KillAfterSends: 6, Downtime: 10 * time.Millisecond},
	})
	st := c.Stats()
	if st.Net.Resumes == 0 {
		t.Errorf("no resumption handshakes observed: %+v", st.Net)
	}
	if st.Net.WALAppends == 0 {
		t.Errorf("no WAL appends observed: %+v", st.Net)
	}
}

func TestChannelClusterDoubleRestart(t *testing.T) {
	fx := newCCFixture(t, 5, 1)
	runRecoveryConsensus(t, fx, NewChannelCluster, []RestartPlan{
		{Proc: 2, KillAfterSends: 5, Downtime: 5 * time.Millisecond},
		{Proc: 2, KillAfterSends: 4, Downtime: 5 * time.Millisecond},
	})
}

// TestZeroBudgetRelaunchCrashesImmediately pins KillAfterSends=0 semantics
// on a relaunched incarnation: the node must crash the instant it comes back
// up (same as a first incarnation with a zero budget), be relaunched again,
// and still reach agreement — the plan must not hang waiting for a send that
// may never happen.
func TestZeroBudgetRelaunchCrashesImmediately(t *testing.T) {
	fx := newCCFixture(t, 5, 1)
	c := runRecoveryConsensus(t, fx, NewChannelCluster, []RestartPlan{
		{Proc: 2, KillAfterSends: 5, Downtime: 5 * time.Millisecond},
		{Proc: 2, KillAfterSends: 0, Downtime: 5 * time.Millisecond},
	})
	// Both plans must actually have fired: the final log carries one epoch
	// record per incarnation.
	rep, err := wal.Replay(WALPath(c.recovery.Dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 2 {
		t.Errorf("node 2 ran %d incarnations, want 3 (epoch = %d, want 2)", rep.Epoch+1, rep.Epoch)
	}
}

func TestChannelClusterTwoNodeRestart(t *testing.T) {
	fx := newCCFixture(t, 5, 1)
	runRecoveryConsensus(t, fx, NewChannelCluster, []RestartPlan{
		{Proc: 0, KillAfterSends: 4, Downtime: 5 * time.Millisecond},
		{Proc: 3, KillAfterSends: 12, Downtime: 15 * time.Millisecond},
	})
}

func TestTCPClusterRestartRecovery(t *testing.T) {
	fx := newCCFixture(t, 5, 1)
	c := runRecoveryConsensus(t, fx, NewTCPCluster, []RestartPlan{
		{Proc: 1, KillAfterSends: 5, Downtime: 20 * time.Millisecond},
	})
	if st := c.Stats(); st.Net.Resumes == 0 {
		t.Errorf("no resumption handshakes observed over TCP: %+v", st.Net)
	}
}

// TestRestartWithChaos composes kill-and-restart faults with a lossy,
// duplicating link layer: the WAL and the chaos machinery must not step on
// each other.
func TestRestartWithChaos(t *testing.T) {
	fx := newCCFixture(t, 5, 1)
	procs := fx.procs(t)
	c, err := NewChannelCluster(procs,
		WithChaos(chaos.Light(), 7),
		WithRecovery(RecoveryConfig{Dir: t.TempDir(), Factory: fx.factory(t), Inputs: fx.inputs}),
		WithRestarts(RestartPlan{Proc: 2, KillAfterSends: 8, Downtime: 10 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, p := range c.Processes() {
		if _, err := p.(*core.Process).Output(); err != nil {
			t.Fatalf("node %d did not decide: %v", i, err)
		}
	}
}

// panicOnReplayProc runs normally in its first incarnation (as gatherProc)
// but the recovery factory builds this type, which panics on the first
// replayed delivery — modelling a corrupt history or a buggy factory.
type panicOnReplayProc struct{}

func (panicOnReplayProc) Init(dist.Context) {}
func (panicOnReplayProc) Deliver(dist.Context, dist.Message) {
	panic("replay blew up")
}
func (panicOnReplayProc) Done() bool { return false }

// TestRecoveryPanicIsDistinctError asserts the satellite requirement: a
// process panicking during replay surfaces as ErrRecovery, not as a plain
// crash or a timeout.
func TestRecoveryPanicIsDistinctError(t *testing.T) {
	const n = 4
	procs := make([]dist.Process, n)
	for i := range procs {
		// Quorum n-1: the three surviving nodes can finish without node 0.
		procs[i] = newGatherProc(n-1, nil)
	}
	c, err := NewChannelCluster(procs,
		WithRecovery(RecoveryConfig{
			Dir:     t.TempDir(),
			Factory: func(int) dist.Process { return panicOnReplayProc{} },
		}),
		WithRestarts(RestartPlan{Proc: 0, KillAfterSends: 1, Downtime: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(30 * time.Second)
	if !errors.Is(err, ErrRecovery) {
		t.Fatalf("err = %v, want ErrRecovery", err)
	}
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("recovery failure misreported as timeout: %v", err)
	}
}

// TestTimeoutReportsPartialStats asserts the satellite requirement: a run
// that times out still reports the counters accumulated so far.
func TestTimeoutReportsPartialStats(t *testing.T) {
	const n = 3
	procs := make([]dist.Process, n)
	for i := range procs {
		procs[i] = newGatherProc(n+1, nil) // unreachable quorum: never done
	}
	c, err := NewChannelCluster(procs)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(100 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if st := c.Stats(); st.Sends != n*(n-1) {
		t.Errorf("partial stats: sends = %d, want %d", st.Sends, n*(n-1))
	}
}

func TestRecoveryValidation(t *testing.T) {
	procs := []dist.Process{newGatherProc(1, nil), newGatherProc(1, nil)}
	if _, err := NewChannelCluster(procs,
		WithRestarts(RestartPlan{Proc: 0, KillAfterSends: 1})); err == nil {
		t.Error("restarts without recovery should error")
	}
	cfg := RecoveryConfig{Dir: t.TempDir(), Factory: func(int) dist.Process { return nil }}
	if _, err := NewChannelCluster(procs, WithRecovery(cfg),
		WithRestarts(RestartPlan{Proc: 9, KillAfterSends: 1})); err == nil {
		t.Error("restart plan for unknown process should error")
	}
	if _, err := NewChannelCluster(procs, WithRecovery(cfg),
		WithRestarts(RestartPlan{Proc: 0, KillAfterSends: -1})); err == nil {
		t.Error("negative kill budget should error")
	}
	if _, err := NewChannelCluster(procs,
		WithRecovery(RecoveryConfig{Dir: t.TempDir()})); err == nil {
		t.Error("recovery without factory should error")
	}
	bad := RecoveryConfig{Dir: t.TempDir(), Factory: func(int) dist.Process { return nil },
		Inputs: []geom.Point{geom.NewPoint(1)}}
	if _, err := NewChannelCluster(procs, WithRecovery(bad)); err == nil {
		t.Error("input-count mismatch should error")
	}
}

// TestWALPathLayout pins the on-disk layout the chcrun -recover flag and
// operators rely on.
func TestWALPathLayout(t *testing.T) {
	if got := WALPath("/tmp/x", 7); got != "/tmp/x/node-007.wal" {
		t.Errorf("WALPath = %q", got)
	}
}

// TestReplayIsRepeatable runs the same WAL through replayNode twice and
// checks the reconstructions match — replay must not consume or reorder the
// log (the torture analogue at cluster level).
func TestReplayIsRepeatable(t *testing.T) {
	fx := newCCFixture(t, 5, 1)
	procs := fx.procs(t)
	dir := t.TempDir()
	c, err := NewChannelCluster(procs,
		WithRecovery(RecoveryConfig{Dir: dir, Factory: fx.factory(t), Inputs: fx.inputs}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	first, _, _, err := c.replayNode(2)
	if err != nil {
		t.Fatal(err)
	}
	second, _, _, err := c.replayNode(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(protocolStateBytes(t, first), protocolStateBytes(t, second)) {
		t.Error("two replays of the same WAL reconstructed different state")
	}
	// The journal itself must also survive replay byte for byte.
	rep1, err := wal.Replay(WALPath(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := wal.Replay(WALPath(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Records != rep2.Records || len(rep1.Delivered) != len(rep2.Delivered) {
		t.Errorf("replay not repeatable: %d/%d records, %d/%d deliveries",
			rep1.Records, rep2.Records, len(rep1.Delivered), len(rep2.Delivered))
	}
}

package runtime

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"chc/internal/dist"
	"chc/internal/geom"
	"chc/internal/netfault"
	"chc/internal/rlink"
	"chc/internal/wire"
)

// memConn is an in-memory net.Conn sink that records everything written to
// it — the "receiver's view" of one simplex link.
type memConn struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *memConn) Read([]byte) (int, error) { return 0, io.EOF }
func (c *memConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}
func (c *memConn) Close() error                       { return nil }
func (c *memConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *memConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *memConn) SetDeadline(time.Time) error        { return nil }
func (c *memConn) SetReadDeadline(time.Time) error    { return nil }
func (c *memConn) SetWriteDeadline(time.Time) error   { return nil }
func (c *memConn) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...)
}

// coalesceTestFrames builds a realistic multi-KiB frame sequence.
func coalesceTestFrames(t *testing.T) [][]byte {
	t.Helper()
	var frames [][]byte
	for i := 0; i < 64; i++ {
		verts := make([]geom.Point, 4+(i%8))
		for j := range verts {
			verts[j] = geom.NewPoint(float64(i), float64(j), float64(i*j))
		}
		f := wire.Frame{
			Type: wire.FrameData, From: 0, Seq: uint64(i),
			Msg: dist.Message{From: 0, To: 1, Kind: "state", Round: i, Payload: wire.PolytopePayload{Verts: verts}},
		}
		b, err := wire.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, b)
	}
	return frames
}

// TestNetFaultChunkingIndependence pins the property the coalescing writer
// depends on: the injector's mutation fates (flip, garbage, lenmut) target
// absolute byte offsets of the link stream, so the corrupted stream a
// receiver observes is identical whether the writer emits frames one write
// at a time (the old single-frame path) or as one batched vectored write
// (the coalesced path). Same seed, same link, same bytes in — same bytes
// out.
func TestNetFaultChunkingIndependence(t *testing.T) {
	plan := netfault.Plan{
		Seed:        31,
		FlipProb:    0.30,
		GarbageProb: 0.20,
		LenMutProb:  0.10,
		WindowBytes: 32,
	}
	frames := coalesceTestFrames(t)

	// Writer A: one Write call per frame.
	connA := &memConn{}
	injA := netfault.New(plan)
	wA := injA.WrapConn("0->1", connA)
	for _, f := range frames {
		if _, err := wA.Write(f); err != nil {
			t.Fatal(err)
		}
	}

	// Writer B: the whole sequence as a single vectored write, exactly as
	// flushPeer emits a coalesced batch.
	connB := &memConn{}
	injB := netfault.New(plan)
	wB := injB.WrapConn("0->1", connB)
	var batch []byte
	for _, f := range frames {
		batch = append(batch, f...)
	}
	if _, err := (&net.Buffers{batch}).WriteTo(wB); err != nil {
		t.Fatal(err)
	}

	a, b := connA.bytes(), connB.bytes()
	if !bytes.Equal(a, b) {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		t.Fatalf("corrupted streams diverge at offset %d (lens %d vs %d): fault schedule is chunking-dependent", i, len(a), len(b))
	}
	if injA.Stats().Flips == 0 && injA.Stats().Garbage == 0 && injA.Stats().LenMuts == 0 {
		t.Fatal("plan injected nothing; the equivalence was vacuous")
	}
	if sa, sb := injA.Stats(), injB.Stats(); sa.Flips != sb.Flips || sa.LenMuts != sb.LenMuts {
		t.Errorf("fault counts diverge across chunkings: %+v vs %+v", sa, sb)
	}
}

// TestCoalescedWireComposesWithNetFaults runs the full gather protocol with
// the coalescing writer on a deadline, batch compression negotiated, and a
// corrupting wire below it all — the three layers must compose: faults land
// on the batched byte stream, CRC rejection and retransmission absorb them,
// and every process still hears everyone.
func TestCoalescedWireComposesWithNetFaults(t *testing.T) {
	const n = 4
	procs, impl := newGatherProcs(n)
	plan := netfault.Flaky()
	plan.Seed = 77
	plan.AfterBytes = 0
	plan.WindowBytes = 64
	plan.FlipProb = 0.05
	c, err := NewTCPCluster(procs,
		WithNetFaults(plan),
		WithWire(WireConfig{FlushDeadline: 200 * time.Microsecond, Compress: true}),
		WithSizer(wire.MessageSize),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, p := range impl {
		if got := p.heardCount(); got < n {
			t.Errorf("process %d heard %d, want %d", i, got, n)
		}
	}
	st := c.Stats()
	if st.Net.InjectedWire == 0 {
		t.Error("plan injected nothing; compression+coalescing+netfault composition untested")
	}
	if st.Sends != n*(n-1) {
		t.Errorf("protocol sends = %d, want %d", st.Sends, n*(n-1))
	}
}

// TestCoalescedLinkExactlyOnceFIFOBounds drives one directed production link
// — rlink over the coalescing, compressing writer — with a deliberately tiny
// transmission window and reorder bound, and checks the reliability contract
// survives batching: every message arrives exactly once, in order, and the
// window bound actually engaged (sends past it were withheld, not lost).
func TestCoalescedLinkExactlyOnceFIFOBounds(t *testing.T) {
	const total = 1000
	var mu sync.Mutex
	var got []int64
	done := make(chan struct{})
	deliver := func(m dist.Message) error {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, m.Payload.(wire.IntPayload).Value)
		if len(got) == total {
			close(done)
		}
		return nil
	}
	pair, err := newLinkBenchPair(LinkBenchConfig{
		Wire:  WireConfig{FlushDeadline: 100 * time.Microsecond, Compress: true},
		Rlink: rlink.Config{MaxInflight: 8, MaxReorder: 16},
	}, deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer pair.close()

	for i := 0; i < total; i++ {
		if err := pair.src.Send(dist.Message{From: 0, To: 1, Kind: "seq", Payload: wire.IntPayload{Value: int64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("link stalled: %d/%d delivered", len(got), total)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != total {
		t.Fatalf("delivered %d, want exactly %d", len(got), total)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("delivery %d carried payload %d: FIFO order broken", i, v)
		}
	}
	if st := pair.src.Stats(); st.WindowWithheld == 0 {
		t.Errorf("MaxInflight=8 never withheld a send out of %d: the bound did not engage", total)
	}
}

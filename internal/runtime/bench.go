package runtime

import (
	"fmt"
	"net"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"chc/internal/dist"
	"chc/internal/geom"
	"chc/internal/rlink"
	"chc/internal/wire"
)

// LinkBenchConfig parameterises BenchSaturatedLink.
type LinkBenchConfig struct {
	// Wire is the transport write-path configuration under test (zero value
	// = coalescing on; SingleFrame selects the legacy write+flush path).
	Wire WireConfig
	// PayloadPoints is the vertex count of the polytope payload each message
	// carries (default 8, three-dimensional — a realistic round-state size).
	PayloadPoints int
	// Window caps sender-side in-flight messages (sent minus delivered;
	// default 1024). It keeps the sender saturating the link without piling
	// the whole of b.N into the retransmission queue and the coalescing
	// buffer at once.
	Window int
	// Rlink overrides the reliable-link configuration (zero = defaults).
	Rlink rlink.Config
}

// BenchSaturatedLink drives one directed link of a real two-node TCP pair —
// the full production stack: rlink endpoint, coalescing (or single-frame)
// writer, wire codec, loopback TCP, stream decoder — at saturation and
// reports msgs/sec, bytes/sec and p99 end-to-end delivery latency. One
// benchmark op is one message delivered exactly-once in FIFO order, so the
// suite's ns/op gate is a per-message throughput gate.
func BenchSaturatedLink(b *testing.B, cfg LinkBenchConfig) {
	b.Helper()
	if cfg.PayloadPoints <= 0 {
		cfg.PayloadPoints = 8
	}
	if cfg.Window <= 0 {
		cfg.Window = 1024
	}
	verts := make([]geom.Point, cfg.PayloadPoints)
	for i := range verts {
		verts[i] = geom.Point{float64(i), float64(i) * 0.5, float64(i) * 0.25}
	}
	msg := dist.Message{From: 0, To: 1, Kind: "bench", Payload: wire.PolytopePayload{Verts: verts}}
	frameBytes := wire.FrameSize(wire.Frame{Type: wire.FrameData, From: 0, Msg: msg})

	sendTimes := make([]int64, b.N)
	recvLat := make([]int64, b.N)
	var delivered atomic.Int64
	done := make(chan struct{})
	onDeliver := func(dist.Message) error {
		// Exactly-once FIFO: the i-th delivery is the i-th send.
		i := delivered.Load()
		if int(i) < b.N {
			recvLat[i] = time.Now().UnixNano() - atomic.LoadInt64(&sendTimes[i])
		}
		if delivered.Add(1) == int64(b.N) {
			close(done)
		}
		return nil
	}
	pair, err := newLinkBenchPair(cfg, onDeliver)
	if err != nil {
		b.Fatal(err)
	}
	defer pair.close()

	b.ReportAllocs()
	b.SetBytes(int64(frameBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Throttle on the delivery watermark, not acks: it bounds both the
		// retransmission queue and the coalescing buffer.
		for int64(i)-delivered.Load() >= int64(cfg.Window) {
			time.Sleep(20 * time.Microsecond)
		}
		atomic.StoreInt64(&sendTimes[i], time.Now().UnixNano())
		if err := pair.src.Send(msg); err != nil {
			b.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		b.Fatalf("saturated link stalled: %d/%d delivered", delivered.Load(), b.N)
	}
	b.StopTimer()

	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed, "msgs/sec")
		b.ReportMetric(float64(b.N)*float64(frameBytes)/elapsed, "bytes/sec")
	}
	sort.Slice(recvLat, func(i, j int) bool { return recvLat[i] < recvLat[j] })
	if b.N > 0 {
		idx := (99*b.N + 99) / 100
		if idx >= b.N {
			idx = b.N - 1
		}
		b.ReportMetric(float64(recvLat[idx]), "p99-latency-ns")
	}
}

// linkBenchPair is a minimal two-node production transport: listeners,
// tcpTransports with the configured write path, and rlink endpoints — the
// same stack NewTCPCluster assembles, without processes or mailboxes.
type linkBenchPair struct {
	src, dst *rlink.Endpoint
	trans    [2]*tcpTransport
}

func newLinkBenchPair(cfg LinkBenchConfig, deliver func(dist.Message) error) (*linkBenchPair, error) {
	pair := &linkBenchPair{}
	var addrs [2]string
	var lns [2]net.Listener
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:i] {
				_ = l.Close()
			}
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for i := range pair.trans {
		t := &tcpTransport{
			self:   dist.ProcID(i),
			ln:     lns[i],
			addrs:  addrs[:],
			peers:  make([]*tcpPeer, 2),
			health: make([]*peerHealth, 2),
			cfg:    cfg.Wire,
			stop:   make(chan struct{}),
		}
		for j := range t.peers {
			link := fmt.Sprintf("bench:%d->%d", i, j)
			t.peers[j] = &tcpPeer{
				to:          dist.ProcID(j),
				wake:        make(chan struct{}, 1),
				batchFrames: mWireBatchFrames.With(link),
				batchBytes:  mWireBatchBytes.With(link),
				compBytes:   mWireCompressedBytes.With(link),
			}
			t.health[j] = &peerHealth{}
		}
		pair.trans[i] = t
	}
	discard := func(dist.Message) error { return nil }
	pair.src = rlink.New(0, 2, pair.trans[0], discard, cfg.Rlink)
	pair.dst = rlink.New(1, 2, pair.trans[1], deliver, cfg.Rlink)
	pair.trans[0].ep.Store(pair.src)
	pair.trans[1].ep.Store(pair.dst)
	for _, t := range pair.trans {
		t.startAccepting()
		t.startWriters()
	}
	for i, t := range pair.trans {
		if err := t.dial(dist.ProcID(1 - i)); err != nil {
			pair.close()
			return nil, err
		}
	}
	return pair, nil
}

func (p *linkBenchPair) close() {
	if p.src != nil {
		_ = p.src.Close()
	}
	if p.dst != nil {
		_ = p.dst.Close()
	}
	for _, t := range p.trans {
		if t != nil {
			_ = t.Close()
		}
	}
}

package runtime

import (
	"testing"
	"time"

	"chc/internal/chaos"
	"chc/internal/wan"
	"chc/internal/wire"
)

func wanPlan(t *testing.T, spec string) wan.Plan {
	t.Helper()
	p, err := wan.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestChannelClusterWANShaping runs a gather under a scaled 3-region model:
// shaping must delay frames without losing any, and must not distort the
// protocol-level send accounting the crash-budget machinery keys off.
func TestChannelClusterWANShaping(t *testing.T) {
	const n = 6
	procs, impl := newGatherProcs(n)
	c, err := NewChannelCluster(procs,
		WithWAN(wanPlan(t, "3-regions,delay=0.02,tail=0.1"), 7),
		WithSizer(wire.MessageSize))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, p := range impl {
		if got := p.heardCount(); got < n {
			t.Errorf("process %d heard %d, want %d", i, got, n)
		}
	}
	st := c.Stats()
	if st.Sends != n*(n-1) {
		t.Errorf("protocol sends = %d, want %d (WAN shaping must not consume crash budget)", st.Sends, n*(n-1))
	}
	if st.Net.WANDelayedFrames == 0 {
		t.Error("no frames recorded as WAN-delayed under an enabled plan")
	}
	if st.Net.InjectedDrops != 0 || st.Net.PartitionDrops != 0 {
		t.Errorf("WAN model dropped frames: %+v", st.Net)
	}
}

// TestChannelClusterWANWithChaos composes the two injectors: chaos decides
// a frame's fate first, the WAN link delays the survivors. Both must report
// through one Stats call.
func TestChannelClusterWANWithChaos(t *testing.T) {
	const n = 5
	procs, impl := newGatherProcs(n)
	c, err := NewChannelCluster(procs,
		WithWAN(wanPlan(t, "clos,delay=0.5"), 3),
		WithChaos(chaos.Profile{Drop: 0.2, Dup: 0.1}, 11))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, p := range impl {
		if got := p.heardCount(); got < n {
			t.Errorf("process %d heard %d, want %d", i, got, n)
		}
	}
	st := c.Stats()
	if st.Net.InjectedDrops == 0 {
		t.Error("chaos inactive under composition")
	}
	if st.Net.WANDelayedFrames == 0 {
		t.Error("WAN shaper inactive under composition")
	}
}

// TestTCPClusterWANShaping shapes a real TCP mesh: writes are released late
// but whole, so the framing layer must never see corruption and the peer
// quarantine machinery must stay silent.
func TestTCPClusterWANShaping(t *testing.T) {
	const n = 4
	procs, impl := newGatherProcs(n)
	c, err := NewTCPCluster(procs, WithWAN(wanPlan(t, "us-eu-ap,delay=0.01"), 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, p := range impl {
		if got := p.heardCount(); got < n {
			t.Errorf("process %d heard %d, want %d", i, got, n)
		}
	}
	st := c.Stats()
	if st.Net.WANShapedWrites == 0 {
		t.Error("no TCP writes recorded as WAN-delayed under an enabled plan")
	}
	if st.Net.CorruptFrames != 0 || st.Net.PeerQuarantines != 0 {
		t.Errorf("WAN conn shaping corrupted the stream: %+v", st.Net)
	}
}

// TestTCPClusterWANAsymmetricCut holds one direction of an inter-region
// pair closed for a window while the reverse direction keeps flowing. The
// model only delays, so the gather still completes and nothing is dropped
// or quarantined.
func TestTCPClusterWANAsymmetricCut(t *testing.T) {
	const n = 4
	procs, impl := newGatherProcs(n)
	c, err := NewTCPCluster(procs,
		WithWAN(wanPlan(t, "3-regions,regions=2,delay=0.01,cut=r0->r1@0ms-300ms"), 5))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, p := range impl {
		if got := p.heardCount(); got < n {
			t.Errorf("process %d heard %d, want %d", i, got, n)
		}
	}
	st := c.Stats()
	if st.Net.WANCutHeld == 0 {
		t.Error("no writes held by the cut window")
	}
	if st.Net.PeerQuarantines != 0 {
		t.Errorf("cut window tripped quarantine: %+v", st.Net)
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Errorf("gather finished in %v, before the r0->r1 hold could matter", elapsed)
	}
}

// Package runtime executes the protocol state machines of package dist
// under real concurrency: one goroutine per process, connected either by
// in-process mailboxes or by TCP sockets framed with the package wire codec.
// Protocol logic is therefore written once (as dist.Process implementations)
// and exercised both deterministically (package dist) and under true
// parallel, networked execution (this package).
package runtime

import (
	"errors"
	"sync"

	"chc/internal/dist"
)

// ErrClosed is returned by Pop after Close once the mailbox has drained.
var ErrClosed = errors.New("runtime: mailbox closed")

// mailbox is an unbounded FIFO queue of messages with blocking Pop. An
// unbounded queue mirrors the paper's reliable-channel model and makes the
// send path non-blocking, which rules out the circular-wait deadlocks a
// bounded inbox could introduce between mutually flooding processes.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []dist.Message
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Push enqueues a message. Pushing to a closed mailbox is a no-op (the
// receiver has shut down; the message is dropped like a message to a
// crashed process).
func (m *mailbox) Push(msg dist.Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.queue = append(m.queue, msg)
	mMailboxDepth.Add(1)
	m.cond.Signal()
}

// Pop blocks until a message is available or the mailbox is closed and
// drained.
func (m *mailbox) Pop() (dist.Message, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return dist.Message{}, ErrClosed
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	mMailboxDepth.Add(-1)
	return msg, nil
}

// Close wakes all blocked Pops; queued messages can still be drained.
func (m *mailbox) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

package runtime

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"chc/internal/dist"
	"chc/internal/geom"
	"chc/internal/rlink"
	"chc/internal/telemetry"
	"chc/internal/wal"
)

// ErrRecovery marks a failed crash-recovery relaunch: a corrupt or
// unreadable WAL, a panic while replaying the journaled history through a
// fresh state machine, or replay nondeterminism. It is distinct from a plain
// crash so callers can tell "a node died and stayed dead by plan" from "the
// recovery machinery itself failed".
var ErrRecovery = errors.New("runtime: crash recovery failed")

// errRunStopped aborts a relaunch that lost the race with cluster shutdown;
// it is not reported as a recovery failure.
var errRunStopped = errors.New("runtime: run stopped before relaunch")

// RecoveryConfig enables the crash-recovery runtime: every process journals
// its protocol history to a write-ahead log, and restart plans relaunch
// killed nodes from those logs.
type RecoveryConfig struct {
	// Dir is the directory holding one WAL per process (see WALPath).
	Dir string
	// Factory builds a fresh, deterministic state machine for process i —
	// identical to the one the cluster was constructed with. Replay drives
	// the journaled delivery sequence through it to reconstruct pre-crash
	// state.
	Factory func(i int) dist.Process
	// Inputs, when non-nil, are journaled per process for audit; replay
	// itself relies on Factory embedding the input deterministically.
	Inputs []geom.Point
	// FS is the filesystem the logs write through (nil = host). Wrapping it
	// with a diskfault.FS injects storage faults under the journals.
	FS wal.FS
	// Checkpoint enables periodic snapshot + segment rotation of every log.
	Checkpoint wal.CheckpointPolicy
	// Mirror keeps each log's replayable state mirrored in memory even when
	// no automatic checkpoint policy runs, so on-demand compaction
	// (Cluster.CheckpointWALs — the resident engine's WAL retention horizon)
	// can snapshot at any moment. Implied by the Degrade policy.
	Mirror bool
	// Durability decides what a node does when its log stops accepting
	// writes: FailStop (default) or Degrade.
	Durability DurabilityPolicy
	// RearmMin/RearmMax bound the exponential backoff between degraded-mode
	// re-arm attempts (defaults 1ms/250ms).
	RearmMin, RearmMax time.Duration
	// OnRelaunch, when non-nil, is called after a killed node's replayed
	// incarnation has been swapped into the cluster but before its delivery
	// loop starts. The resident engine uses it to reconcile the node's
	// instance lifecycle: controls enqueued while the node was down were
	// rejected with ErrNodeDown, and this hook re-derives and re-enqueues
	// them from the node's journaled watermark. It runs with RelaunchGate
	// held (when one is configured), so the hook must not acquire that lock
	// itself.
	OnRelaunch func(id dist.ProcID)
	// RelaunchGate, when non-nil, is locked around the swap that makes a
	// relaunched incarnation reachable by EnqueueControl and the OnRelaunch
	// hook. A caller that serializes its own control enqueues on the same
	// lock therefore observes "node down, then reconciled" atomically:
	// there is no window in which a fresh control can land on the new
	// incarnation ahead of the controls OnRelaunch re-enqueues, which the
	// resident engine's id-ordered lifecycle watermark requires.
	RelaunchGate sync.Locker
}

// WithRecovery enables WAL journaling and crash-recovery. It forces the
// reliable-link layer: the durability contract (journal before ack) is
// enforced inside the link delivery path.
func WithRecovery(cfg RecoveryConfig) Option {
	return recoveryOption{cfg: cfg}
}

type recoveryOption struct{ cfg RecoveryConfig }

func (o recoveryOption) apply(c *Cluster) {
	cfg := o.cfg
	c.recovery = &cfg
	c.reliable = true
}

// RestartPlan schedules a crash-and-recover fault: the node is killed after
// KillAfterSends successful sends (mid-broadcast if the budget lands there),
// stays down for Downtime — during which peers see dropped frames and
// retransmit — and is then relaunched from its write-ahead log.
type RestartPlan struct {
	Proc           dist.ProcID
	KillAfterSends int
	Downtime       time.Duration
}

// WithRestarts schedules crash-restart faults. Requires WithRecovery.
// Composable with WithChaos: chaos attacks the links while restarts attack
// the nodes.
func WithRestarts(plans ...RestartPlan) Option {
	return restartOption{plans: plans}
}

type restartOption struct{ plans []RestartPlan }

func (o restartOption) apply(c *Cluster) {
	c.restarts = append(c.restarts, o.plans...)
}

// validateRecovery checks the recovery/restart configuration once all
// options are applied, and arms the kill budget of each node's first
// restart plan.
func (c *Cluster) validateRecovery() error {
	if c.recovery != nil {
		if c.recovery.Dir == "" || c.recovery.Factory == nil {
			return errors.New("runtime: recovery needs a WAL directory and a process factory")
		}
		if c.recovery.Inputs != nil && len(c.recovery.Inputs) != len(c.procs) {
			return fmt.Errorf("runtime: %d recovery inputs for %d processes",
				len(c.recovery.Inputs), len(c.procs))
		}
	}
	if len(c.restarts) == 0 {
		return nil
	}
	if c.recovery == nil {
		return errors.New("runtime: WithRestarts requires WithRecovery")
	}
	armed := make(map[dist.ProcID]bool)
	for _, rp := range c.restarts {
		if rp.Proc < 0 || int(rp.Proc) >= len(c.procs) {
			return fmt.Errorf("runtime: restart plan for unknown process %d", rp.Proc)
		}
		if rp.KillAfterSends < 0 {
			return fmt.Errorf("runtime: negative kill budget for process %d", rp.Proc)
		}
		if !armed[rp.Proc] {
			armed[rp.Proc] = true
			c.budget[rp.Proc] = int64(rp.KillAfterSends)
		}
	}
	return nil
}

// WALPath is the write-ahead log location of one process under a recovery
// directory.
func WALPath(dir string, id dist.ProcID) string {
	return filepath.Join(dir, fmt.Sprintf("node-%03d.wal", id))
}

// runState is the bookkeeping of one Run call: settle slots, per-node
// restart queues, and the WaitGroup covering every incarnation and
// supervisor goroutine.
type runState struct {
	c          *Cluster
	n          int
	done       []atomic.Bool
	unsettled  atomic.Int64
	allSettled chan struct{}
	wg         sync.WaitGroup

	mu     sync.Mutex
	queues [][]RestartPlan
	recErr []error
}

// settleSlot consumes one settle slot; the last slot wakes the monitor.
func (rs *runState) settleSlot() {
	if rs.unsettled.Add(-1) == 0 {
		close(rs.allSettled)
	}
}

// recordRecoveryError stores a relaunch failure for Run to report.
func (rs *runState) recordRecoveryError(err error) {
	rs.mu.Lock()
	rs.recErr = append(rs.recErr, err)
	rs.mu.Unlock()
}

// recoveryErr returns the joined relaunch failures, wrapped in ErrRecovery.
func (rs *runState) recoveryErr() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if len(rs.recErr) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrRecovery, errors.Join(rs.recErr...))
}

// onSettled reacts to an incarnation of node i settling. A crash settle with
// a queued restart plan hands the node to the supervisor; a decide settle
// consumes the slots of restart plans that will now never fire (the node
// finished before its kill budget ran out).
func (rs *runState) onSettled(i int, byCrash bool) {
	rs.mu.Lock()
	if byCrash {
		if len(rs.queues[i]) > 0 {
			plan := rs.queues[i][0]
			rs.queues[i] = rs.queues[i][1:]
			rs.mu.Unlock()
			rs.wg.Add(1)
			go rs.supervise(i, plan)
			return
		}
		rs.mu.Unlock()
		return
	}
	unfired := len(rs.queues[i])
	rs.queues[i] = nil
	rs.mu.Unlock()
	for ; unfired > 0; unfired-- {
		rs.settleSlot()
	}
}

// launch starts the goroutine driving one incarnation of node i. The crash
// flag is the incarnation's own (cluster-held, so the durability machinery
// created at install time shares it).
func (rs *runState) launch(i int, proc dist.Process, mbox *mailbox, crashed *atomic.Bool, alreadyInit bool) {
	rs.wg.Add(1)
	go rs.runProc(i, proc, mbox, crashed, alreadyInit)
}

// runProc drives one incarnation: Init (unless resumed), then the delivery
// loop, settling exactly once — on decide or on crash.
func (rs *runState) runProc(i int, proc dist.Process, mbox *mailbox, crashed *atomic.Bool, alreadyInit bool) {
	defer rs.wg.Done()
	c := rs.c
	settled := false
	settle := func(byCrash bool) {
		if settled {
			return
		}
		settled = true
		rs.settleSlot()
		rs.onSettled(i, byCrash)
	}
	id := dist.ProcID(i)
	ctx := &nodeContext{cluster: c, id: id, n: rs.n, crashed: crashed}
	// A zero kill budget means "crash before doing anything" — enforced for
	// first launches and relaunches alike, so a RestartPlan with
	// KillAfterSends=0 fires the instant the node comes back up instead of
	// waiting for a send attempt that may never happen.
	if atomic.LoadInt64(&c.budget[i]) == 0 {
		crashed.Store(true)
		settle(true)
		return
	}
	if !alreadyInit {
		proc.Init(ctx)
	}
	decided := false
	decide := func() {
		if decided {
			return
		}
		decided = true
		c.journalDecision(i, proc)
		rs.done[i].Store(true)
		settle(false)
	}
	if proc.Done() {
		decide()
	}
	if crashed.Load() {
		settle(true) // budget exhausted mid-Init-broadcast
	}
	for {
		msg, err := mbox.Pop()
		if err != nil {
			// The mailbox closed under us. If this incarnation crashed (a
			// durability fail-stop closes the mailbox from the link callback)
			// its settle slot must still be consumed; a plain shutdown close
			// settles nothing.
			if crashed.Load() {
				settle(true)
			}
			return
		}
		if crashed.Load() {
			continue
		}
		proc.Deliver(ctx, msg)
		if proc.Done() {
			decide()
		}
		if crashed.Load() {
			settle(true) // budget exhausted during this delivery's sends
		}
	}
}

// decidedRounder is optionally implemented by state machines that expose the
// round at which they terminated (core.Process reports t_end).
type decidedRounder interface{ DecidedRound() int }

// journalDecision makes a decision durable (recovery mode only): the decided
// record closes the journal's account of the node, so replay and offline
// audits can tell "decided" from "still running" without re-executing the
// state machine. A journaling failure is tolerated — the decision itself is
// already reproducible from the journaled delivery sequence.
func (c *Cluster) journalDecision(i int, proc dist.Process) {
	c.stateMu.RLock()
	b := c.box[i]
	c.stateMu.RUnlock()
	if b == nil {
		return
	}
	round := 0
	if dr, ok := proc.(decidedRounder); ok {
		round = dr.DecidedRound()
	}
	b.journalDecided(round)
}

// supervise handles one crash-restart cycle of node i: tear the dead
// incarnation down, wait out the downtime, then relaunch from the WAL.
func (rs *runState) supervise(i int, plan RestartPlan) {
	defer rs.wg.Done()
	rs.c.killNode(i)
	if plan.Downtime > 0 {
		time.Sleep(plan.Downtime)
	}
	// The recovery clock starts after the planned downtime: it measures the
	// relaunch work (replay + resumption), not the configured sleep. The
	// disabled path never reads the clock.
	var start time.Time
	if telemetry.Enabled() || telemetry.TraceOn() {
		start = time.Now()
	}
	if err := rs.c.relaunch(rs, i); err != nil {
		if !errors.Is(err, errRunStopped) {
			mRecoveryFailures.Inc()
			rs.recordRecoveryError(fmt.Errorf("node %d: %w", i, err))
		}
		// The relaunched incarnation will never settle its slot; do it here
		// so Run can return.
		rs.settleSlot()
		return
	}
	mRestarts.Inc()
	if !start.IsZero() {
		d := time.Since(start)
		mRecoverySeconds.ObserveDuration(d)
		if telemetry.TraceOn() {
			telemetry.Emit("runtime.recovery", map[string]any{
				"proc": i, "dur_ns": d.Nanoseconds(), "downtime_ns": plan.Downtime.Nanoseconds(),
			})
		}
	}
}

// killNode makes a crashed node actually dead: its endpoint is removed (so
// frames addressed to it are dropped and no acks are emitted), its mailbox
// is closed (terminating the incarnation goroutine), and its WAL is closed.
// Counters from the dead incarnation are folded into the retired
// accumulator so Stats() keeps seeing them. The chaos injector is shared by
// all incarnations and stays armed.
func (c *Cluster) killNode(i int) {
	c.stateMu.Lock()
	ep := c.rel[i]
	c.rel[i] = nil
	w := c.wal[i]
	c.wal[i] = nil
	b := c.box[i]
	c.box[i] = nil
	c.deliver[i] = nil
	mbox := c.inbox[i]
	c.stateMu.Unlock()

	if ep != nil {
		_ = ep.Close()
	}
	if b != nil && b.close() {
		// The box died degraded: the last-chance re-arm failed, so the WAL is
		// missing deliveries this incarnation already acked (peers may have
		// trimmed them). Mark the node so relaunch refuses to resume from the
		// incomplete journal.
		c.stateMu.Lock()
		c.diedDeg[i] = true
		c.stateMu.Unlock()
	}
	mbox.Close()
	var r dist.NetStats
	if ep != nil {
		s := ep.Stats()
		r.FramesSent = s.FramesSent
		r.Retransmits = s.Retransmits
		r.DupSuppressed = s.DupSuppressed
		r.OutOfOrder = s.OutOfOrder
		r.AcksSent = s.AcksSent
		r.Resumes = s.Resumes
		r.WindowWithheld = s.WindowWithheld
		r.ReorderDrops = s.ReorderDrops
	}
	if w != nil {
		s := w.Stats()
		r.WALAppends = s.Appends
		r.WALSyncs = s.Syncs
		r.WALCheckpoints = s.Checkpoints
		_ = w.Close()
	}
	c.retiredMu.Lock()
	c.retired.FramesSent += r.FramesSent
	c.retired.Retransmits += r.Retransmits
	c.retired.DupSuppressed += r.DupSuppressed
	c.retired.OutOfOrder += r.OutOfOrder
	c.retired.AcksSent += r.AcksSent
	c.retired.Resumes += r.Resumes
	c.retired.WindowWithheld += r.WindowWithheld
	c.retired.ReorderDrops += r.ReorderDrops
	c.retired.WALAppends += r.WALAppends
	c.retired.WALSyncs += r.WALSyncs
	c.retired.WALCheckpoints += r.WALCheckpoints
	c.retiredMu.Unlock()
	if t := c.tcp[i]; t != nil {
		// Sever the dead node's live connections: peers must observe the
		// outage and bridge it with redials and retransmission.
		t.breakLinks()
	}
}

// captureContext records the sends a state machine performs while its
// journaled history is replayed. Nothing reaches the network: peer-bound
// messages become the regenerated retransmission queues, and self-bound
// messages are matched against the journal to find the ones still pending.
type captureContext struct {
	id    dist.ProcID
	n     int
	sends [][]dist.Message
	self  []dist.Message
}

var (
	_ dist.Context        = (*captureContext)(nil)
	_ dist.InstanceSender = (*captureContext)(nil)
)

func (cc *captureContext) ID() dist.ProcID { return cc.id }
func (cc *captureContext) N() int          { return cc.n }

func (cc *captureContext) Send(to dist.ProcID, kind string, round int, payload any) {
	cc.SendInstance(0, to, kind, round, payload)
}

// SendInstance preserves the engine's instance index on regenerated sends:
// a multiplexing node replayed from its WAL rebuilds retransmission queues
// whose messages must route to the same instance they originally belonged
// to.
func (cc *captureContext) SendInstance(instance int, to dist.ProcID, kind string, round int, payload any) {
	if to < 0 || int(to) >= cc.n {
		return
	}
	msg := dist.Message{From: cc.id, To: to, Kind: kind, Round: round, Instance: instance, Payload: payload}
	if to == cc.id {
		cc.self = append(cc.self, msg)
		return
	}
	cc.sends[to] = append(cc.sends[to], msg)
}

func (cc *captureContext) Broadcast(kind string, round int, payload any) {
	for to := dist.ProcID(0); int(to) < cc.n; to++ {
		if to == cc.id {
			continue
		}
		cc.Send(to, kind, round, payload)
	}
}

// replayNode reconstructs node i's state machine from its WAL: a fresh
// factory-built process re-consumes the journaled delivery sequence under a
// capture context. Panics inside Init/Deliver (e.g. a history corrupted
// into an impossible state) are converted to errors.
func (c *Cluster) replayNode(i int) (proc dist.Process, cc *captureContext, rep *wal.Replayed, err error) {
	defer func() {
		if p := recover(); p != nil {
			proc, cc, rep = nil, nil, nil
			err = fmt.Errorf("panic during replay: %v", p)
		}
	}()
	rep, err = wal.ReplayWith(c.recovery.FS, WALPath(c.recovery.Dir, dist.ProcID(i)))
	if err != nil {
		return nil, nil, nil, err
	}
	proc = c.recovery.Factory(i)
	cc = &captureContext{id: dist.ProcID(i), n: len(c.procs), sends: make([][]dist.Message, len(c.procs))}
	proc.Init(cc)
	for _, m := range rep.Delivered {
		proc.Deliver(cc, m)
	}
	// Deciding is monotone in the delivered prefix, so a journaled decision
	// the replayed machine fails to re-reach means the factory diverged.
	if rep.Decided && !proc.Done() {
		return nil, nil, nil, fmt.Errorf("nondeterministic replay: journal has a decision record but the replayed process did not decide")
	}
	return proc, cc, rep, nil
}

// relaunch builds node i's next incarnation from its WAL and swaps it into
// the cluster: replayed process, new epoch in the log, resumed reliable-link
// endpoint, fresh mailbox, and the pending self-sends the crash cut off.
func (c *Cluster) relaunch(rs *runState, i int) error {
	c.stateMu.RLock()
	diedDegraded := c.diedDeg[i]
	c.stateMu.RUnlock()
	if diedDegraded {
		// The Degrade policy's contract: a node that dies while degraded is a
		// full crash fault. Its journal is missing deliveries it acked
		// non-durably (peers may already have trimmed them), so replaying it
		// would silently lose them — refuse instead of resuming.
		return errors.New("node died degraded (non-durable deliveries not re-armed); refusing relaunch from an incomplete journal")
	}
	proc, cc, rep, err := c.replayNode(i)
	if err != nil {
		return err
	}
	id := dist.ProcID(i)
	n := len(c.procs)
	// Self-sends are journaled when pushed, in generation order, so the
	// journaled ones are a prefix of the regenerated ones; anything beyond
	// the prefix was generated but never pushed durably and must be pushed
	// now. A longer journal than the regeneration means Factory is not
	// deterministic — fail loudly rather than resume divergent state.
	// Journaled lifecycle controls are also self-addressed but are injected
	// by the engine, not generated by the state machine, so replay does not
	// regenerate them — they are excluded from the comparison.
	var loggedSelf uint64
	for _, m := range rep.Delivered {
		if m.From == id && !dist.IsControl(m.Kind) {
			loggedSelf++
		}
	}
	if int(loggedSelf) > len(cc.self) {
		return fmt.Errorf("nondeterministic replay: journal has %d self-deliveries, replay regenerated %d",
			loggedSelf, len(cc.self))
	}
	pendingSelf := cc.self[loggedSelf:]

	w, err := wal.OpenWith(WALPath(c.recovery.Dir, id), c.walOptions())
	if err != nil {
		return err
	}
	if err := w.AppendEpoch(); err != nil {
		_ = w.Close()
		return err
	}
	mbox := newMailbox()
	crashed := &atomic.Bool{}
	box := newDurableBox(c, i, w, mbox, crashed)
	deliver := box.deliver
	for _, m := range pendingSelf {
		// The cut-off self-sends must be durable before the incarnation runs:
		// under fail-stop, a log that cannot be written fails the relaunch
		// (resuming would diverge from the durable history); under the
		// degrade policy the box quarantines instead and the relaunch
		// proceeds non-durably.
		if err := deliver(m); err != nil {
			box.close()
			_ = w.Close()
			return fmt.Errorf("journal pending self-send: %w", err)
		}
	}
	recvNext := make([]uint64, n)
	for j := range recvNext {
		recvNext[j] = rep.DeliveredFrom(dist.ProcID(j))
	}
	ep, err := rlink.NewResumed(id, n, c.sender[i], deliver, c.rlinkCfg, rlink.ResumeState{
		Epoch:    rep.Epoch + 1,
		RecvNext: recvNext,
		Out:      cc.sends,
	})
	if err != nil {
		_ = w.Close()
		return err
	}

	// The gate covers publishing the new deliver func through the
	// reconciliation hook: controls enqueued by other gate holders either
	// ran before the swap (rejected with ErrNodeDown, so the hook sees them
	// as missed and re-enqueues them) or run after the hook (landing behind
	// the re-enqueued ones). Without it, a control enqueued between the swap
	// and the hook would reach the new incarnation ahead of earlier missed
	// controls and the node's id-ordered watermark would drop those as
	// duplicates.
	gate := c.recovery.RelaunchGate
	if gate != nil {
		gate.Lock()
	}
	c.stateMu.Lock()
	if c.stopping {
		c.stateMu.Unlock()
		if gate != nil {
			gate.Unlock()
		}
		_ = ep.Close()
		box.close()
		_ = w.Close()
		return errRunStopped
	}
	c.procs[i] = proc
	c.inbox[i] = mbox
	c.rel[i] = ep
	c.wal[i] = w
	c.box[i] = box
	c.crash[i] = crashed
	c.deliver[i] = deliver
	c.trans[i] = &endpointTransport{ep: ep}
	c.stateMu.Unlock()
	if t := c.tcp[i]; t != nil {
		t.ep.Store(ep)
	}
	if c.recovery.OnRelaunch != nil {
		// Before the delivery loop starts: the hook's control enqueues are
		// journaled and queued on the fresh mailbox, so the incarnation
		// processes them ahead of any live traffic. Frames for instances the
		// node has not (re-)opened yet buffer inside the resident node until
		// the re-enqueued opens are applied.
		c.recovery.OnRelaunch(id)
	}
	if gate != nil {
		// Released before Announce: handshake frames can block on TCP dials
		// and must not stall the callers serialized on the gate.
		gate.Unlock()
	}

	// Arm the next restart plan's kill budget, or lift the limit.
	next := int64(-1)
	rs.mu.Lock()
	if len(rs.queues[i]) > 0 {
		next = int64(rs.queues[i][0].KillAfterSends)
	}
	rs.mu.Unlock()
	atomic.StoreInt64(&c.budget[i], next)

	// Tell every peer the new epoch and watermarks so they trim and rewind;
	// then resume the protocol.
	ep.Announce()
	rs.launch(i, proc, mbox, crashed, true)
	return nil
}

package runtime

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"chc/internal/dist"
	"chc/internal/netfault"
	"chc/internal/rlink"
	"chc/internal/telemetry"
	"chc/internal/wan"
	"chc/internal/wire"
)

// errLinkDown is returned by SendFrame while a peer link is being redialed;
// the reliable-link layer keeps the frame queued and retries.
var errLinkDown = errors.New("runtime: tcp link down, reconnecting")

// errSendQueueFull is returned by SendFrame when a peer's pending batch has
// hit maxPendBytes: the frame is dropped and the reliable-link layer's
// retransmission re-offers it once the writer drains.
var errSendQueueFull = errors.New("runtime: tcp send queue full, frame dropped")

// WireConfig tunes the TCP transport's write path. The zero value is the
// default: frame coalescing on, flush immediately on wakeup, compression off.
type WireConfig struct {
	// SingleFrame disables coalescing: every frame is encoded, written and
	// flushed individually on the sender's goroutine — the pre-coalescing
	// write path, kept both as an escape hatch and as the measurable
	// baseline for the TransportSaturatedLink benchmark twin.
	SingleFrame bool
	// FlushDeadline is how long the peer writer lingers after a wakeup for
	// more frames to accumulate before flushing the batch. Zero flushes
	// immediately: under light load a lone frame still goes out in one
	// write with no added latency, while a burst naturally group-commits
	// because frames arriving during the in-flight write join the next
	// batch. Setting a deadline trades that first-frame latency for larger
	// batches under sustained load.
	FlushDeadline time.Duration
	// Compress announces FlagCompress in the connection handshake and wraps
	// batches of at least compressMinBytes in flate FrameBatch envelopes
	// when that actually shrinks them. Off by default.
	Compress bool
}

// Coalescing bounds.
const (
	// maxPendBytes caps a peer's pending batch; past it SendFrame drops
	// (retransmission recovers) so a stalled link cannot buffer unboundedly.
	maxPendBytes = 8 << 20
	// compressMinBytes is the smallest batch worth offering to flate.
	compressMinBytes = 512
)

// Redial backoff bounds for broken links.
const (
	redialInitial = 2 * time.Millisecond
	redialMax     = 100 * time.Millisecond
)

// Peer-health policy: a peer whose streams keep producing corrupt frames is
// quarantined — its connections are torn down and fresh ones rejected at
// the handshake until a jittered backoff expires, after which the next
// clean handshake readmits it. Strikes leak away while frames decode
// cleanly, so the sporadic corruption of a merely flaky wire never
// accumulates to the threshold; only a stream that is corrupt in bulk does.
const (
	// quarantineStrikes is the strike budget: corrupt frames and mid-frame
	// resets add a strike, each strikeDecayEvery cleanly decoded frames
	// remove one.
	quarantineStrikes = 8
	strikeDecayEvery  = 4
	quarantineBase    = 5 * time.Millisecond
	quarantineMax     = 250 * time.Millisecond
	// connGarbageBudget caps the corrupt bytes one accepted connection may
	// emit before it is torn down outright (the StreamDecoder budget).
	connGarbageBudget = 256 << 10
)

// NewTCPCluster builds a cluster whose processes communicate over real TCP
// connections on the loopback interface, framed with the package wire codec.
// A full mesh of n·(n-1) simplex connections is established up front; every
// connection starts with a handshake frame naming the dialing node, so the
// accepting side can bind the byte stream to a peer and replace it after a
// reconnect. The reliable-link layer always runs on top: TCP gives FIFO
// bytes on a healthy connection, but a broken and redialed connection can
// lose frames in flight, so sequence numbers, acks and retransmission are
// what actually uphold the exactly-once FIFO contract (and they absorb any
// chaos faults injected with WithChaos).
func NewTCPCluster(procs []dist.Process, opts ...Option) (*Cluster, error) {
	c, err := newCluster(procs, opts...)
	if err != nil {
		return nil, err
	}
	n := len(procs)
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	cleanup := func() {
		for _, ln := range listeners {
			if ln != nil {
				_ = ln.Close()
			}
		}
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("runtime: listen for node %d: %w", i, err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	// One shared fault injector serves the whole mesh, so per-link byte
	// offsets survive reconnects and the corruption schedule is a pure
	// function of the plan seed.
	if c.netPlan != nil {
		c.nfault = netfault.New(*c.netPlan)
	}
	// Likewise one shared WAN conn shaper: link delay/bandwidth clocks are
	// keyed by link label, so a redialed connection resumes shaping where
	// the old one left off.
	if c.wanModel != nil {
		c.wanInj = wan.NewInjector(c.wanModel)
	}
	transports := make([]*tcpTransport, n)
	for i := 0; i < n; i++ {
		t := &tcpTransport{
			self:   dist.ProcID(i),
			ln:     listeners[i],
			addrs:  addrs,
			peers:  make([]*tcpPeer, n),
			health: make([]*peerHealth, n),
			nfault: c.nfault,
			wan:    c.wanInj,
			cfg:    c.wireCfg,
			stop:   make(chan struct{}),
		}
		for j := range t.peers {
			link := fmt.Sprintf("%d->%d", i, j)
			t.peers[j] = &tcpPeer{
				to:          dist.ProcID(j),
				wake:        make(chan struct{}, 1),
				batchFrames: mWireBatchFrames.With(link),
				batchBytes:  mWireBatchBytes.With(link),
				compBytes:   mWireCompressedBytes.With(link),
			}
			t.health[j] = &peerHealth{}
		}
		transports[i] = t
	}
	// Install the rlink/chaos stack before any reader goroutine exists. The
	// endpoint pointer is atomic because the restart supervisor swaps in a
	// resumed endpoint while reader goroutines are live.
	for i := 0; i < n; i++ {
		c.tcp[i] = transports[i]
		var s rlink.Sender = transports[i]
		s = c.maybeInjectChaos(i, s)
		if err := c.installEndpoint(i, s); err != nil {
			cleanup()
			for _, ep := range c.rel {
				if ep != nil {
					_ = ep.Close()
				}
			}
			c.closeWALs()
			return nil, err
		}
		transports[i].ep.Store(c.rel[i])
	}
	for i := 0; i < n; i++ {
		transports[i].startAccepting()
		transports[i].startWriters()
	}
	// Dial the full mesh up front; later failures are repaired by redial.
	// The n·(n-1) dials are independent network operations, so each node
	// dials its peers on its own goroutine; on failure the lowest-numbered
	// (dialer, target) pair is reported, keeping the error deterministic.
	dialErrs := make([]error, n)
	var dialWG sync.WaitGroup
	for i := 0; i < n; i++ {
		dialWG.Add(1)
		go func(i int) {
			defer dialWG.Done()
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if err := transports[i].dial(dist.ProcID(j)); err != nil {
					dialErrs[i] = fmt.Errorf("runtime: dial %d -> %d: %w", i, j, err)
					return
				}
			}
		}(i)
	}
	dialWG.Wait()
	for _, err := range dialErrs {
		if err == nil {
			continue
		}
		for _, ep := range c.rel {
			if ep != nil {
				_ = ep.Close()
			}
		}
		for _, tr := range transports {
			_ = tr.Close()
		}
		return nil, err
	}
	return c, nil
}

// tcpTransport is one node's view of the TCP mesh: a listener for incoming
// frames and an outgoing connection per peer, each repaired with capped
// backoff when it breaks.
type tcpTransport struct {
	self  dist.ProcID
	ln    net.Listener
	addrs []string
	// ep is the receive path (the node's rlink endpoint). It is written in
	// NewTCPCluster before any reader goroutine starts, and swapped by the
	// restart supervisor when the node is relaunched with a resumed
	// endpoint; reader goroutines load it per frame. A nil load (mid-kill)
	// drops the frame — the peer's retransmission queue re-offers it.
	ep atomic.Pointer[rlink.Endpoint]

	peers  []*tcpPeer
	health []*peerHealth // inbound stream health, indexed by peer

	// nfault, when non-nil, corrupts the write side of dialed connections
	// per the cluster's wire-fault plan.
	nfault *netfault.Injector

	// wan, when non-nil, shapes the write side of dialed connections through
	// the cluster's WAN model (delay only, chunking-independent).
	wan *wan.Injector

	// cfg is the write-path tuning (coalescing, flush deadline, compression).
	cfg WireConfig
	// stop, closed by Close, wakes the per-peer writer goroutines.
	stop chan struct{}

	mu       sync.Mutex // guards accepted
	accepted []net.Conn

	reconnects    atomic.Int64
	linkFaults    atomic.Int64
	corruptFrames atomic.Int64
	quarantines   atomic.Int64
	readmits      atomic.Int64

	// closeMu serializes Close's closed-flag swap against ensureRedial's
	// closed-check + wg.Add, so no goroutine is added to wg after Close has
	// entered wg.Wait with a possibly-zero counter.
	closeMu sync.Mutex
	closed  atomic.Bool
	wg      sync.WaitGroup
}

// tcpPeer is the outgoing half of one link. In the default coalescing mode
// senders append encoded frames to pend under mu and nudge the peer's writer
// goroutine, which swaps the batch out and hands it to the kernel in a single
// vectored write — so a burst of frames costs one syscall, not one per frame,
// and frames arriving during the in-flight write group-commit into the next
// batch.
type tcpPeer struct {
	to dist.ProcID

	mu      sync.Mutex
	conn    net.Conn
	w       *bufio.Writer
	dialing bool

	pend    []byte // encoded frames awaiting the writer (pooled; nil when empty)
	nframes int    // frame count in pend
	wake    chan struct{}

	// Per-link telemetry handles, resolved once (vec lookups are off the
	// hot path).
	batchFrames *telemetry.Histogram
	batchBytes  *telemetry.Histogram
	compBytes   *telemetry.Counter
}

// peerHealth is the inbound-stream health of one peer: a strike budget fed
// by corrupt frames and mid-frame resets, a quarantine window with jittered
// exponential backoff, and readmission on the first clean handshake after
// expiry. Quarantine is strictly receive-side — it rejects what the peer
// sends here and never touches this node's outbound links — so a corrupt
// wire is confined to the link layer instead of spreading as crash faults.
type peerHealth struct {
	mu      sync.Mutex
	strikes int
	good    int       // cleanly decoded frames since the last decay
	until   time.Time // non-zero while quarantined
	cycles  int       // quarantine episodes taken, drives the backoff
}

// admit gates a freshly handshaken connection: rejected while the peer's
// quarantine backoff runs, readmitted (strikes forgiven) on the first clean
// handshake after it expires.
func (h *peerHealth) admit(t *tcpTransport) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.until.IsZero() {
		return true
	}
	if time.Now().Before(h.until) {
		return false
	}
	h.until = time.Time{}
	h.strikes = 0
	h.good = 0
	t.readmits.Add(1)
	mPeerReadmits.Inc()
	return true
}

// strike charges one fault; crossing the budget quarantines the peer.
func (h *peerHealth) strike(t *tcpTransport) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.until.IsZero() {
		return // already quarantined; the stream is being torn down
	}
	h.good = 0
	if h.strikes++; h.strikes >= quarantineStrikes {
		h.quarantineLocked(t)
	}
}

// quarantineNow quarantines immediately (garbage budget exhausted).
func (h *peerHealth) quarantineNow(t *tcpTransport) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.until.IsZero() {
		h.quarantineLocked(t)
	}
}

func (h *peerHealth) quarantineLocked(t *tcpTransport) {
	d := quarantineBase << uint(h.cycles)
	if d > quarantineMax || d <= 0 {
		d = quarantineMax
	}
	// Jitter in [d/2, d] so a mesh of quarantines does not readmit in
	// lockstep and re-collapse together.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	h.until = time.Now().Add(d)
	h.cycles++
	t.quarantines.Add(1)
	mPeerQuarantines.Inc()
}

// quarantined reports whether the backoff window is currently running.
func (h *peerHealth) quarantined() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.until.IsZero() && time.Now().Before(h.until)
}

// goodFrame leaks one strike per strikeDecayEvery clean frames, so the
// background corruption of a flaky (not hostile) wire never accumulates to
// the quarantine threshold.
func (h *peerHealth) goodFrame() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.strikes > 0 {
		if h.good++; h.good >= strikeDecayEvery {
			h.good = 0
			h.strikes--
		}
	}
}

var _ rlink.Sender = (*tcpTransport)(nil)

// dial (re)establishes the outgoing connection to peer to and sends the
// identifying handshake frame. When the node's endpoint is installed, the
// handshake carries its incarnation epoch and link watermarks, so a redial
// after a crash-restart doubles as the resumption announcement.
func (t *tcpTransport) dial(to dist.ProcID) error {
	conn, err := net.DialTimeout("tcp", t.addrs[to], time.Second)
	if err != nil {
		return err
	}
	if t.nfault != nil {
		// Each mesh connection is simplex (the dialer writes, the acceptor
		// reads), so wrapping the write side here attacks every byte the
		// link carries. The injector keys offsets by link label, not conn,
		// so a redial resumes the fault schedule where the old conn died.
		conn = t.nfault.WrapConn(fmt.Sprintf("%d->%d", t.self, to), conn)
	}
	if t.wan != nil {
		// Outermost on the write path: a write is delayed whole first, then
		// (possibly) corrupted by netfault, so the fault schedule's byte
		// offsets are untouched by shaping.
		conn = t.wan.WrapConn(fmt.Sprintf("%d->%d", t.self, to), conn)
	}
	w := bufio.NewWriter(conn)
	hs := wire.Frame{Type: wire.FrameHandshake, From: t.self}
	if ep := t.ep.Load(); ep != nil {
		hs = ep.HelloFrame(to)
	}
	if t.cfg.Compress {
		hs.Flags |= wire.FlagCompress
	}
	// The handshake is written synchronously on the still-unpublished conn,
	// so it precedes every batched frame the writer goroutine will emit.
	if err := wire.WriteFrame(w, hs); err == nil {
		err = w.Flush()
	}
	if err != nil {
		_ = conn.Close()
		return err
	}
	p := t.peers[to]
	p.mu.Lock()
	if p.conn != nil {
		_ = p.conn.Close()
	}
	p.conn = conn
	p.w = w
	p.mu.Unlock()
	return nil
}

// SendFrame hands one frame to the link's writer. In the default coalescing
// mode the frame is encoded into the peer's pending batch and the writer
// goroutine is nudged; a full batch buffer drops the frame (retransmission
// re-offers it). In SingleFrame mode the frame is written and flushed inline,
// the pre-coalescing behavior. Either way a link fault marks the link down,
// kicks off an asynchronous redial with capped backoff, and reports the
// error — the caller's retransmission queue owns recovery, so no frame is
// silently dropped.
func (t *tcpTransport) SendFrame(to dist.ProcID, f wire.Frame) error {
	if t.closed.Load() {
		return net.ErrClosed
	}
	if to < 0 || int(to) >= len(t.peers) {
		return fmt.Errorf("runtime: send to unknown node %d", to)
	}
	p := t.peers[to]
	if !t.cfg.SingleFrame {
		p.mu.Lock()
		if p.conn == nil && !p.dialing {
			p.mu.Unlock()
			t.ensureRedial(to)
			return errLinkDown
		}
		if len(p.pend) >= maxPendBytes {
			p.mu.Unlock()
			return errSendQueueFull
		}
		if p.pend == nil {
			p.pend = wire.GetBuf()
		}
		var err error
		if p.pend, err = wire.AppendFrame(p.pend, f); err != nil {
			p.mu.Unlock()
			return err
		}
		p.nframes++
		p.mu.Unlock()
		select {
		case p.wake <- struct{}{}:
		default: // writer already signalled
		}
		return nil
	}
	p.mu.Lock()
	if p.conn == nil {
		p.mu.Unlock()
		t.ensureRedial(to)
		return errLinkDown
	}
	err := wire.WriteFrame(p.w, f)
	if err == nil {
		err = p.w.Flush()
	}
	if err != nil {
		_ = p.conn.Close()
		p.conn = nil
		p.w = nil
		p.mu.Unlock()
		if !t.closed.Load() {
			t.linkFaults.Add(1)
			mLinkFaults.Inc()
			t.ensureRedial(to)
		}
		return err
	}
	p.mu.Unlock()
	return nil
}

// startWriters launches one writer goroutine per outgoing link (coalescing
// mode only). Writers idle on their wake channel, so links that never carry
// traffic cost one parked goroutine each.
func (t *tcpTransport) startWriters() {
	if t.cfg.SingleFrame {
		return
	}
	for j, p := range t.peers {
		if dist.ProcID(j) == t.self {
			continue
		}
		t.wg.Add(1)
		go t.writeLoop(p)
	}
}

// writeLoop drains one peer's pending batch: it sleeps until a sender nudges
// it, optionally lingers for FlushDeadline so a burst accumulates, then
// flushes whatever is pending in one write. Wakeups cannot be lost: the wake
// channel holds one token, and a sender that finds it full knows the writer
// will observe its frame on the pass the token already guarantees (the batch
// is swapped out under the same lock the sender appended under).
func (t *tcpTransport) writeLoop(p *tcpPeer) {
	defer t.wg.Done()
	for {
		select {
		case <-t.stop:
			return
		case <-p.wake:
		}
		if d := t.cfg.FlushDeadline; d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-t.stop:
				timer.Stop()
				return
			case <-timer.C:
			}
		}
		t.flushPeer(p)
	}
}

// flushPeer swaps the peer's pending batch out and writes it to the live
// connection as one vectored write. When the link is down the batch is
// dropped — the reliable-link layer's retransmission queue re-offers every
// un-acked frame once the redial lands, so dropping here costs latency, not
// delivery. With compression negotiated, batches big enough to plausibly
// profit are wrapped in a flate FrameBatch envelope when that actually
// shrinks them.
func (t *tcpTransport) flushPeer(p *tcpPeer) {
	p.mu.Lock()
	if len(p.pend) == 0 {
		p.mu.Unlock()
		return
	}
	raw, nframes := p.pend, p.nframes
	p.pend, p.nframes = nil, 0
	conn := p.conn
	p.mu.Unlock()
	if conn == nil {
		wire.PutBuf(raw)
		if !t.closed.Load() {
			t.ensureRedial(p.to)
		}
		return
	}
	p.batchFrames.Observe(float64(nframes))
	p.batchBytes.Observe(float64(len(raw)))
	out := raw
	var comp []byte
	if t.cfg.Compress && len(raw) >= compressMinBytes {
		comp = wire.GetBuf()
		if b, err := wire.AppendBatchFrame(comp, raw); err == nil && len(b) < len(raw) {
			comp = b
			out = comp
			p.compBytes.Add(int64(len(comp)))
		}
	}
	bufs := net.Buffers{out}
	_, err := bufs.WriteTo(conn)
	wire.PutBuf(raw)
	if comp != nil {
		wire.PutBuf(comp)
	}
	if err == nil {
		return
	}
	// Tear the link down only if it is still the conn we wrote to — a
	// concurrent redial may already have published a fresh one, which this
	// stale failure must not kill.
	p.mu.Lock()
	if p.conn == conn {
		_ = conn.Close()
		p.conn = nil
		p.w = nil
	}
	p.mu.Unlock()
	if !t.closed.Load() {
		t.linkFaults.Add(1)
		mLinkFaults.Inc()
		t.ensureRedial(p.to)
	}
}

// ensureRedial starts (at most one) background redial loop for the link.
func (t *tcpTransport) ensureRedial(to dist.ProcID) {
	p := t.peers[to]
	p.mu.Lock()
	if p.dialing {
		p.mu.Unlock()
		return
	}
	p.dialing = true
	p.mu.Unlock()
	// Register with the WaitGroup under closeMu: once Close has swapped the
	// closed flag (also under closeMu) it may already be in wg.Wait, and
	// Add-ing then would race the Wait.
	t.closeMu.Lock()
	if t.closed.Load() {
		t.closeMu.Unlock()
		p.mu.Lock()
		p.dialing = false
		p.mu.Unlock()
		return
	}
	t.wg.Add(1)
	t.closeMu.Unlock()
	go func() {
		defer t.wg.Done()
		defer func() {
			p.mu.Lock()
			p.dialing = false
			p.mu.Unlock()
		}()
		backoff := redialInitial
		for !t.closed.Load() {
			if err := t.dial(to); err == nil {
				t.reconnects.Add(1)
				mReconnects.Inc()
				return
			}
			time.Sleep(backoff)
			if backoff *= 2; backoff > redialMax {
				backoff = redialMax
			}
		}
	}()
}

// startAccepting launches the accept loop; each accepted connection must
// open with a handshake frame, after which a reader goroutine decodes
// frames into the node's reliable-link endpoint.
func (t *tcpTransport) startAccepting() {
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			conn, err := t.ln.Accept()
			if err != nil {
				return // listener closed
			}
			t.mu.Lock()
			if t.closed.Load() {
				t.mu.Unlock()
				_ = conn.Close()
				return
			}
			t.accepted = append(t.accepted, conn)
			t.mu.Unlock()
			t.wg.Add(1)
			go t.readLoop(conn)
		}
	}()
}

// readLoop consumes one accepted connection: a strict handshake first, then
// data and ack frames through a resynchronizing stream decoder until the
// stream ends. A clean EOF at a frame boundary is an orderly close (peer
// shutdown or replaced connection); a mid-frame cut is a link fault and a
// strike. Corrupt frames inside the stream are classified, counted per link
// and class, charged against the connection's garbage budget, and fed to
// the peer's quarantine state machine — but do not, individually, kill the
// connection: the decoder rescans for the next frame boundary and the
// reliable-link layer retransmits whatever was damaged.
func (t *tcpTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() { _ = conn.Close() }()
	r := bufio.NewReader(conn)
	hs, err := wire.ReadFrame(r)
	if err != nil || hs.Type != wire.FrameHandshake {
		// The handshake is read strictly: a corrupted hello leaves the
		// stream unidentified (its From cannot be trusted), so no resume
		// state is touched and no peer is struck — the connection is simply
		// rejected. The dialer redials with a clean handshake carrying the
		// correct seq/ack watermarks.
		if !t.closed.Load() {
			t.linkFaults.Add(1) // garbage before identification
			mLinkFaults.Inc()
		}
		return
	}
	if hs.From < 0 || int(hs.From) >= len(t.health) {
		t.linkFaults.Add(1)
		mLinkFaults.Inc()
		return
	}
	h := t.health[hs.From]
	if !h.admit(t) {
		return // quarantine backoff running: reject the connection
	}
	// The handshake is forwarded to the endpoint too: it carries the peer's
	// incarnation epoch and ack watermark, which drive queue trimming and
	// retransmission rewind after the peer restarts.
	if ep := t.ep.Load(); ep != nil {
		ep.OnFrame(hs)
	}
	link := fmt.Sprintf("%d->%d", hs.From, t.self)
	dec := wire.NewStreamDecoder(r, connGarbageBudget)
	// Compression is receiver-gated by the peer's announcement: a FrameBatch
	// envelope on a connection that never announced FlagCompress is treated
	// as corruption.
	dec.SetCompressed(hs.Flags&wire.FlagCompress != 0)
	dec.OnFault = func(class string, _ int64) {
		t.corruptFrames.Add(1)
		mWireCorruptFrames.With(link, class).Inc()
		h.strike(t)
	}
	for {
		f, err := dec.Next()
		if err != nil {
			if errors.Is(err, io.EOF) || t.closed.Load() {
				return // orderly close (or our own shutdown races the read)
			}
			t.linkFaults.Add(1)
			mLinkFaults.Inc()
			if errors.Is(err, wire.ErrGarbageBudget) {
				// The connection exhausted its inbound corruption budget:
				// quarantine without waiting for the strike counter.
				h.quarantineNow(t)
			} else {
				// Mid-frame cut (connection reset or truncation): a strike,
				// and the peer's dialer redials.
				h.strike(t)
			}
			return
		}
		if h.quarantined() {
			return // strike budget crossed mid-stream: tear the conn down
		}
		h.goodFrame()
		if ep := t.ep.Load(); ep != nil {
			ep.OnFrame(f)
		}
	}
}

// breakLinks forcibly closes every live connection of this node — outgoing
// and accepted — without shutting the transport down. Used by tests to
// simulate a network element failure; subsequent traffic must trigger
// redials and retransmissions.
func (t *tcpTransport) breakLinks() {
	for _, p := range t.peers {
		p.mu.Lock()
		if p.conn != nil {
			_ = p.conn.Close()
			p.conn = nil
			p.w = nil
		}
		p.mu.Unlock()
	}
	t.mu.Lock()
	accepted := t.accepted
	t.accepted = nil
	t.mu.Unlock()
	for _, conn := range accepted {
		_ = conn.Close()
	}
}

// Close shuts the listener and all connections down and waits for the
// reader and redial goroutines to exit.
func (t *tcpTransport) Close() error {
	t.closeMu.Lock()
	already := t.closed.Swap(true)
	t.closeMu.Unlock()
	if already {
		return nil
	}
	close(t.stop) // parks every per-peer writer
	_ = t.ln.Close()
	for _, p := range t.peers {
		p.mu.Lock()
		if p.conn != nil {
			_ = p.conn.Close()
			p.conn = nil
			p.w = nil
		}
		p.mu.Unlock()
	}
	// Close accepted connections too: their reader goroutines would
	// otherwise block until the remote side shuts down, deadlocking the
	// wg.Wait below.
	t.mu.Lock()
	accepted := t.accepted
	t.accepted = nil
	t.mu.Unlock()
	for _, conn := range accepted {
		_ = conn.Close()
	}
	t.wg.Wait()
	return nil
}

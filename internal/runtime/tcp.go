package runtime

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"chc/internal/dist"
	"chc/internal/wire"
)

// NewTCPCluster builds a cluster whose processes communicate over real TCP
// connections on the loopback interface, framed with the package wire codec.
// A full mesh of n·(n-1) simplex connections is established up front, so
// per-sender FIFO order is inherited from TCP byte-stream ordering.
func NewTCPCluster(procs []dist.Process, opts ...Option) (*Cluster, error) {
	c, err := newCluster(procs, opts...)
	if err != nil {
		return nil, err
	}
	n := len(procs)
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	cleanup := func() {
		for _, ln := range listeners {
			if ln != nil {
				_ = ln.Close()
			}
		}
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("runtime: listen for node %d: %w", i, err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	transports := make([]*tcpTransport, n)
	for i := 0; i < n; i++ {
		transports[i] = &tcpTransport{
			cluster: c,
			from:    dist.ProcID(i),
			ln:      listeners[i],
			conns:   make([]net.Conn, n),
			writers: make([]*bufio.Writer, n),
		}
		transports[i].startAccepting()
	}
	// Dial the full mesh.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			conn, err := net.Dial("tcp", addrs[j])
			if err != nil {
				for _, tr := range transports {
					_ = tr.Close()
				}
				return nil, fmt.Errorf("runtime: dial %d -> %d: %w", i, j, err)
			}
			transports[i].conns[j] = conn
			transports[i].writers[j] = bufio.NewWriter(conn)
		}
	}
	for i := 0; i < n; i++ {
		c.trans[i] = transports[i]
	}
	return c, nil
}

// tcpTransport is one node's view of the TCP mesh: a listener for incoming
// frames and an outgoing connection per peer.
type tcpTransport struct {
	cluster *Cluster
	from    dist.ProcID
	ln      net.Listener

	mu       sync.Mutex // guards writers and accepted conns
	conns    []net.Conn
	writers  []*bufio.Writer
	accepted []net.Conn

	closed atomic.Bool
	wg     sync.WaitGroup
}

var _ transport = (*tcpTransport)(nil)

// startAccepting launches the accept loop; each accepted connection gets a
// reader goroutine that decodes frames into the local mailboxes.
func (t *tcpTransport) startAccepting() {
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			conn, err := t.ln.Accept()
			if err != nil {
				return // listener closed
			}
			t.mu.Lock()
			if t.closed.Load() {
				t.mu.Unlock()
				_ = conn.Close()
				return
			}
			t.accepted = append(t.accepted, conn)
			t.mu.Unlock()
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				defer func() { _ = conn.Close() }()
				r := bufio.NewReader(conn)
				for {
					msg, err := wire.ReadMessage(r)
					if err != nil {
						if !errors.Is(err, io.EOF) && !t.closed.Load() {
							// Peer write half closed mid-frame during
							// shutdown; nothing to recover.
							return
						}
						return
					}
					t.cluster.deliverLocal(msg)
				}
			}()
		}
	}()
}

// Send frames and writes the message on the connection to its target.
// Messages to self short-circuit into the local mailbox (a node has no TCP
// connection to itself).
func (t *tcpTransport) Send(msg dist.Message) error {
	if t.closed.Load() {
		return net.ErrClosed
	}
	if msg.To == t.from {
		t.cluster.deliverLocal(msg)
		return nil
	}
	if msg.To < 0 || int(msg.To) >= len(t.writers) {
		return fmt.Errorf("runtime: send to unknown node %d", msg.To)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.writers[msg.To]
	if w == nil {
		return net.ErrClosed
	}
	if err := wire.WriteMessage(w, msg); err != nil {
		return err
	}
	return w.Flush()
}

// Close shuts the listener and all connections down and waits for the
// reader goroutines to exit.
func (t *tcpTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	_ = t.ln.Close()
	t.mu.Lock()
	for i, conn := range t.conns {
		if conn != nil {
			_ = conn.Close()
			t.conns[i] = nil
			t.writers[i] = nil
		}
	}
	// Close accepted connections too: their reader goroutines would
	// otherwise block until the remote side shuts down, deadlocking the
	// wg.Wait below.
	for _, conn := range t.accepted {
		_ = conn.Close()
	}
	t.accepted = nil
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

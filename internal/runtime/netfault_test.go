package runtime

import (
	"net"
	"testing"
	"time"

	"chc/internal/dist"
	"chc/internal/netfault"
	"chc/internal/wire"
)

// newGatherCluster builds n gather processes for TCP wire-fault tests.
func newGatherProcs(n int) ([]dist.Process, []*gatherProc) {
	procs := make([]dist.Process, n)
	impl := make([]*gatherProc, n)
	for i := range procs {
		impl[i] = newGatherProc(n, nil)
		procs[i] = impl[i]
	}
	return procs, impl
}

// TestTCPClusterFlakyWire: a mildly corrupting wire (bit flips, lost tails,
// stalls) must be absorbed entirely by CRC rejection and retransmission —
// every process still gathers everything.
func TestTCPClusterFlakyWire(t *testing.T) {
	const n = 4
	procs, impl := newGatherProcs(n)
	plan := netfault.Flaky()
	plan.Seed = 21
	plan.AfterBytes = 0 // no mercy for the handshakes either
	c, err := NewTCPCluster(procs, WithNetFaults(plan), WithSizer(wire.MessageSize))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, p := range impl {
		if got := p.heardCount(); got < n {
			t.Errorf("process %d heard %d, want %d", i, got, n)
		}
	}
	if st := c.Stats(); st.Sends != n*(n-1) {
		t.Errorf("protocol sends = %d, want %d (wire faults must not distort protocol accounting)", st.Sends, n*(n-1))
	}
}

// TestTCPClusterHostileWireTorture is the live-link torture test: a hostile
// byte-stream adversary (flips, garbage, length mutations, truncations,
// mid-frame resets) attacks a real TCP mesh mid-protocol, then is disarmed
// — after which every process must still converge: no panic, no corrupted
// delivery, eventual delivery once corruption stops.
func TestTCPClusterHostileWireTorture(t *testing.T) {
	const n = 4
	procs, impl := newGatherProcs(n)
	plan := netfault.Hostile()
	plan.Seed = 99
	// A short gather moves only a few hundred bytes per link; shrink the
	// fate window and drop the grace prefix so the adversary actually bites.
	plan.AfterBytes = 0
	plan.WindowBytes = 32
	plan.FlipProb = 0.25
	c, err := NewTCPCluster(procs, WithNetFaults(plan), WithSizer(wire.MessageSize))
	if err != nil {
		t.Fatal(err)
	}
	// "Corruption stops": disarm the injector after the protocol has run
	// under fire for a while; everything still in flight must then drain.
	stop := time.AfterFunc(time.Second, c.nfault.Disarm)
	defer stop.Stop()
	if err := c.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, p := range impl {
		if got := p.heardCount(); got < n {
			t.Errorf("process %d heard %d, want %d", i, got, n)
		}
	}
	st := c.Stats()
	if st.Net.InjectedWire == 0 {
		t.Error("hostile plan injected nothing")
	}
	if st.Net.CorruptFrames == 0 {
		t.Error("no corrupt frames classified despite injected corruption")
	}
	if st.Sends != n*(n-1) {
		t.Errorf("protocol sends = %d, want %d", st.Sends, n*(n-1))
	}
}

// TestCorruptHandshakeDoesNotResume feeds a corrupted handshake — one whose
// seq/ack watermarks were damaged in flight — to an accepting transport.
// The connection must be rejected before any resume state is touched: a
// corrupted hello must never rewind or fast-forward a link cursor. The mesh
// then proves it is unharmed by completing a full gather (the clean redial
// carries the true watermarks).
func TestCorruptHandshakeDoesNotResume(t *testing.T) {
	const n = 2
	procs, impl := newGatherProcs(n)
	c, err := NewTCPCluster(procs)
	if err != nil {
		t.Fatal(err)
	}
	target := c.tcp[1]
	resumesBefore := c.rel[1].Stats().Resumes
	faultsBefore := target.linkFaults.Load()

	// A handshake claiming epoch 7 and wild watermarks, with one body byte
	// flipped in flight. If the transport trusted it, node 1 would count a
	// resume and trim its send queue to the bogus ack.
	hs := wire.Frame{Type: wire.FrameHandshake, From: 0, Seq: 99, Epoch: 7, Ack: 98}
	b, err := wire.EncodeFrame(hs)
	if err != nil {
		t.Fatal(err)
	}
	b[wire.FrameHeaderLen+6] ^= 0x41 // damage the body; CRC now fails
	conn, err := net.Dial("tcp", target.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(b); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for target.linkFaults.Load() == faultsBefore {
		if time.Now().After(deadline) {
			t.Fatal("corrupted handshake was never counted as a link fault")
		}
		time.Sleep(time.Millisecond)
	}
	if got := c.rel[1].Stats().Resumes; got != resumesBefore {
		t.Fatalf("corrupted handshake processed as a resume (resumes %d -> %d)", resumesBefore, got)
	}

	// The real links are untouched: the gather completes over the original
	// clean handshakes / redials.
	if err := c.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, p := range impl {
		if got := p.heardCount(); got < n {
			t.Errorf("process %d heard %d, want %d", i, got, n)
		}
	}
}

// TestPeerHealthQuarantineStateMachine drives the strike/quarantine/readmit
// machinery directly: strikes accumulate to quarantine, connections are
// rejected during the backoff, the first clean handshake after expiry
// readmits, and clean frames leak strikes away.
func TestPeerHealthQuarantineStateMachine(t *testing.T) {
	tr := &tcpTransport{}
	h := &peerHealth{}

	// Clean-frame decay: strikes leak away under a merely flaky stream.
	for i := 0; i < quarantineStrikes-1; i++ {
		h.strike(tr)
	}
	for i := 0; i < (quarantineStrikes-1)*strikeDecayEvery; i++ {
		h.goodFrame()
	}
	h.strike(tr) // would have quarantined without decay
	if h.quarantined() {
		t.Fatal("decayed strikes still quarantined the peer")
	}
	if tr.quarantines.Load() != 0 {
		t.Fatalf("quarantines = %d before the budget was ever exceeded", tr.quarantines.Load())
	}

	// Burst corruption crosses the budget.
	for i := 0; i < quarantineStrikes; i++ {
		h.strike(tr)
	}
	if !h.quarantined() {
		t.Fatal("strike budget exceeded but peer not quarantined")
	}
	if tr.quarantines.Load() != 1 {
		t.Fatalf("quarantines = %d, want 1", tr.quarantines.Load())
	}
	if h.admit(tr) {
		t.Fatal("connection admitted during quarantine backoff")
	}
	if tr.readmits.Load() != 0 {
		t.Fatal("readmit counted while still quarantined")
	}

	// Wait out the (first-cycle, jittered) backoff, then readmit.
	deadline := time.Now().Add(2 * quarantineBase)
	for !h.admit(tr) {
		if time.Now().After(deadline) {
			t.Fatal("peer never readmitted after backoff expiry")
		}
		time.Sleep(time.Millisecond)
	}
	if tr.readmits.Load() != 1 {
		t.Fatalf("readmits = %d, want 1", tr.readmits.Load())
	}
	if h.quarantined() {
		t.Fatal("still quarantined after readmission")
	}

	// Strikes were forgiven at readmission; the budget starts fresh.
	h.strike(tr)
	if h.quarantined() {
		t.Fatal("single post-readmit strike re-quarantined the peer")
	}

	// A garbage-budget blowout quarantines immediately, with a longer
	// (second-cycle) backoff.
	h.quarantineNow(tr)
	if !h.quarantined() || tr.quarantines.Load() != 2 {
		t.Fatalf("quarantineNow: quarantined=%v count=%d, want true/2", h.quarantined(), tr.quarantines.Load())
	}
}

// TestChannelClusterRejectsNetFaults: byte-stream faults need byte streams.
func TestChannelClusterRejectsNetFaults(t *testing.T) {
	procs, _ := newGatherProcs(2)
	if _, err := NewChannelCluster(procs, WithNetFaults(netfault.Flaky())); err == nil {
		t.Fatal("channel cluster accepted WithNetFaults")
	}
}

package runtime

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"chc/internal/dist"
	"chc/internal/wal"
)

var (
	errInjectedSync   = errors.New("injected fsync failure")
	errInjectedCreate = errors.New("injected create failure")
)

// flakyFS fails fsyncs on matching paths while the fail flag is set — a
// switchable sick disk for exercising the degradation policy without
// probabilistic schedules. A positive budget heals the disk automatically
// after that many injected failures (a deterministic transient outage).
// With createMatch set, Create calls on matching paths fail instead (for
// attacking the checkpoint rotation rather than the fsync).
type flakyFS struct {
	wal.FS
	fail        atomic.Bool
	budget      atomic.Int64 // >0: remaining failures before auto-heal
	match       string       // fsync path substring; empty matches all
	createMatch string       // Create path substring; empty disables
}

func (f *flakyFS) failing(path string) bool {
	if !f.fail.Load() || (f.match != "" && !strings.Contains(path, f.match)) {
		return false
	}
	return f.spendBudget()
}

func (f *flakyFS) failingCreate(path string) bool {
	if !f.fail.Load() || f.createMatch == "" || !strings.Contains(path, f.createMatch) {
		return false
	}
	return f.spendBudget()
}

func (f *flakyFS) spendBudget() bool {
	if f.budget.Load() > 0 && f.budget.Add(-1) <= 0 {
		f.fail.Store(false)
	}
	return true
}

func (f *flakyFS) Create(path string) (wal.File, error) {
	if f.failingCreate(path) {
		return nil, errInjectedCreate
	}
	file, err := f.FS.Create(path)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: file, fs: f, path: path}, nil
}

func (f *flakyFS) OpenRW(path string) (wal.File, error) {
	file, err := f.FS.OpenRW(path)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: file, fs: f, path: path}, nil
}

type flakyFile struct {
	wal.File
	fs   *flakyFS
	path string
}

func (ff *flakyFile) Sync() error {
	if ff.fs.failing(ff.path) {
		return errInjectedSync
	}
	return ff.File.Sync()
}

// TestDurableBoxDegradeAndRearm drives one box through the full quarantine
// cycle: durable deliveries, a failing-disk window acked non-durably, the
// background re-arm restoring durability, then more durable deliveries —
// and checks the final on-disk history holds every message in mailbox
// order, including the degraded window.
func TestDurableBoxDegradeAndRearm(t *testing.T) {
	dir := t.TempDir()
	path := WALPath(dir, 0)
	ffs := &flakyFS{FS: wal.OSFS()}
	w, err := wal.CreateWith(path, wal.Options{FS: ffs, Mirror: true})
	if err != nil {
		t.Fatal(err)
	}
	c := &Cluster{recovery: &RecoveryConfig{
		Dir: dir, Durability: Degrade,
		RearmMin: time.Millisecond, RearmMax: 4 * time.Millisecond,
	}}
	mbox := newMailbox()
	box := newDurableBox(c, 0, w, mbox, &atomic.Bool{})

	msg := func(round int) dist.Message {
		return dist.Message{From: 1, To: 0, Kind: "t", Round: round}
	}
	next := 0
	send := func(k int) {
		for i := 0; i < k; i++ {
			if err := box.deliver(msg(next)); err != nil {
				t.Fatalf("deliver %d: %v", next, err)
			}
			next++
		}
	}

	send(3)
	if box.isDegraded() {
		t.Fatal("degraded on a healthy disk")
	}
	ffs.fail.Store(true)
	send(4) // first one trips the quarantine; all acked non-durably
	if !box.isDegraded() {
		t.Fatal("not degraded after fsync failures")
	}
	if got := c.durability.stats(); got.Degraded != 1 || got.Faults == 0 {
		t.Fatalf("durability stats after degrade: %+v", got)
	}
	ffs.fail.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for box.isDegraded() {
		if time.Now().After(deadline) {
			t.Fatal("re-arm did not complete")
		}
		time.Sleep(time.Millisecond)
	}
	if got := c.durability.stats(); got.Rearms != 1 {
		t.Fatalf("rearms = %d, want 1", got.Rearms)
	}
	send(3)
	box.close()
	c.bg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The re-armed log must replay the complete history — the degraded
	// window included — in delivery order, from the published snapshot.
	rep, err := wal.Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Snapshot {
		t.Error("replay did not use the re-arm snapshot")
	}
	if len(rep.Delivered) != next {
		t.Fatalf("journal has %d deliveries, want %d", len(rep.Delivered), next)
	}
	for i, m := range rep.Delivered {
		if m.Round != i {
			t.Fatalf("position %d: round %d (order not preserved)", i, m.Round)
		}
	}
	// Mailbox order must equal journal order across the degrade boundary.
	mbox.Close()
	for i := 0; i < next; i++ {
		got, err := mbox.Pop()
		if err != nil {
			t.Fatalf("mailbox drained at %d, journal has %d", i, next)
		}
		if got.Round != i {
			t.Fatalf("mailbox position %d: round %d", i, got.Round)
		}
	}
}

// TestDurableBoxCheckpointFailureNoDoubleJournal regresses the
// post-fsync-failure case: the delivery's fsync succeeds (so the record is
// durable and folded into the mirror) but the checkpoint rotation that the
// same Sync triggers fails. The Degrade policy must quarantine without
// re-owning the delivery in pending — otherwise the re-arm snapshot holds it
// twice and a recovered node replays a divergent (equivocating) history.
func TestDurableBoxCheckpointFailureNoDoubleJournal(t *testing.T) {
	dir := t.TempDir()
	path := WALPath(dir, 0)
	// Fsyncs never fail (match can't occur in any path); only the Create of
	// the in-flight snapshot does, exactly once — so the failure lands after
	// the delivery is already durable, inside the rotation.
	ffs := &flakyFS{FS: wal.OSFS(), match: "\x00", createMatch: ".ckpt.tmp"}
	// EveryBytes 20: the epoch record (9 framed bytes) stays under the
	// threshold, the first delivered record crosses it and triggers rotation.
	w, err := wal.CreateWith(path, wal.Options{FS: ffs, Checkpoint: wal.CheckpointPolicy{EveryBytes: 20}})
	if err != nil {
		t.Fatal(err)
	}
	c := &Cluster{recovery: &RecoveryConfig{
		Dir: dir, Durability: Degrade,
		RearmMin: time.Millisecond, RearmMax: 4 * time.Millisecond,
	}}
	mbox := newMailbox()
	box := newDurableBox(c, 0, w, mbox, &atomic.Bool{})

	ffs.budget.Store(1)
	ffs.fail.Store(true)
	m := dist.Message{From: 1, To: 0, Kind: "t", Round: 0}
	if err := box.deliver(m); err != nil {
		t.Fatalf("deliver under Degrade: %v", err)
	}
	if !box.isDegraded() {
		t.Fatal("not degraded after checkpoint failure")
	}
	deadline := time.Now().Add(5 * time.Second)
	for box.isDegraded() {
		if time.Now().After(deadline) {
			t.Fatal("re-arm did not complete")
		}
		time.Sleep(time.Millisecond)
	}
	box.close()
	c.bg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := wal.Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Delivered) != 1 {
		t.Fatalf("journal replays %d deliveries, want exactly 1 (no double-journaling)", len(rep.Delivered))
	}
	// The process must see the delivery exactly once, too.
	mbox.Close()
	if got, err := mbox.Pop(); err != nil || got.Round != 0 {
		t.Fatalf("first Pop = %v, %v", got, err)
	}
	if _, err := mbox.Pop(); err == nil {
		t.Fatal("delivery pushed to the mailbox twice")
	}
}

// TestDegradedDeathRefusesRelaunch pins the Degrade contract's enforcement:
// a node killed while degraded (its last-chance re-arm failing on the still
// sick disk) has a journal missing acked deliveries, so the supervisor must
// refuse to relaunch it rather than resume from the incomplete history.
func TestDegradedDeathRefusesRelaunch(t *testing.T) {
	const n = 3
	dir := t.TempDir()
	ffs := &flakyFS{FS: wal.OSFS(), match: "node-001"}
	procs := make([]dist.Process, n)
	for i := range procs {
		procs[i] = newGatherProc(n, nil)
	}
	// Re-arm backoff far beyond the test: the only restoration attempt is
	// close()'s last-chance one, which the still-failing disk rejects.
	c, err := NewChannelCluster(procs, WithRecovery(RecoveryConfig{
		Dir:     dir,
		Factory: func(i int) dist.Process { return newGatherProc(n, nil) },
		FS:      ffs, Durability: Degrade,
		RearmMin: time.Minute, RearmMax: time.Minute,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ffs.fail.Store(true)
	if err := c.box[1].deliver(dist.Message{From: 0, To: 1, Kind: "t"}); err != nil {
		t.Fatalf("deliver under Degrade: %v", err)
	}
	if !c.box[1].isDegraded() {
		t.Fatal("node 1 not degraded")
	}
	c.killNode(1)
	c.stateMu.RLock()
	died := c.diedDeg[1]
	c.stateMu.RUnlock()
	if !died {
		t.Fatal("degraded death not recorded")
	}
	rs := &runState{c: c, n: n, queues: make([][]RestartPlan, n)}
	err = c.relaunch(rs, 1)
	if err == nil || !strings.Contains(err.Error(), "died degraded") {
		t.Fatalf("relaunch of a degraded-dead node = %v, want refusal", err)
	}
	c.bg.Wait()
	c.closeWALs()
}

// TestDurableBoxFailStop checks the default policy: a durability failure
// crashes the incarnation (flag set, error surfaced so the link withholds
// its ack) and counts as a fail-stop.
func TestDurableBoxFailStop(t *testing.T) {
	dir := t.TempDir()
	ffs := &flakyFS{FS: wal.OSFS()}
	w, err := wal.CreateWith(WALPath(dir, 0), wal.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.Close() }()
	c := newTestClusterShell(t, 1)
	mbox := newMailbox()
	c.inbox[0] = mbox // killNode tears down the registered mailbox
	crashed := &atomic.Bool{}
	box := newDurableBox(c, 0, w, mbox, crashed)
	if err := box.deliver(dist.Message{From: 0, To: 0, Kind: "t"}); err != nil {
		t.Fatalf("healthy deliver: %v", err)
	}
	ffs.fail.Store(true)
	if err := box.deliver(dist.Message{From: 0, To: 0, Kind: "t", Round: 1}); err == nil {
		t.Fatal("fail-stop deliver returned nil (ack would be sent)")
	}
	if !crashed.Load() {
		t.Fatal("crash flag not set")
	}
	if got := c.durability.stats(); got.FailStops != 1 || got.Faults != 1 {
		t.Fatalf("durability stats: %+v", got)
	}
	// The async teardown must close the mailbox (killNode path): the healthy
	// delivery drains, then Pop unblocks with the closed error. The test
	// timeout guards against the teardown never arriving.
	if m, err := mbox.Pop(); err != nil || m.Round != 0 {
		t.Fatalf("first Pop = %v, %v", m, err)
	}
	if _, err := mbox.Pop(); err == nil {
		t.Fatal("mailbox yielded a message the failed journal never acked")
	}
}

// newTestClusterShell builds a minimal cluster skeleton (slices sized, no
// transports) so killNode has something coherent to tear down.
func newTestClusterShell(t *testing.T, n int) *Cluster {
	t.Helper()
	procs := make([]dist.Process, n)
	for i := range procs {
		procs[i] = newGatherProc(n, nil)
	}
	c, err := newCluster(procs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestClusterFailStopBecomesCrashFault is the cluster-level fail-stop test:
// one node's disk dies mid-run; that node fail-stops and the rest finish —
// the storage failure consumed one of the f crash faults, nothing more.
func TestClusterFailStopBecomesCrashFault(t *testing.T) {
	const n = 5
	dir := t.TempDir()
	ffs := &flakyFS{FS: wal.OSFS(), match: "node-001"}
	procs := make([]dist.Process, n)
	for i := range procs {
		procs[i] = newGatherProc(n-1, nil)
	}
	c, err := NewChannelCluster(procs, WithRecovery(RecoveryConfig{
		Dir:     dir,
		Factory: func(i int) dist.Process { return newGatherProc(n-1, nil) },
		FS:      ffs,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ffs.fail.Store(true) // node 1's first journaled delivery fails
	if err := c.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Net.FailStops == 0 || st.Net.DurabilityFaults == 0 {
		t.Fatalf("no fail-stop recorded: %+v", st.Net)
	}
	decided := 0
	for i, p := range c.Processes() {
		if i == 1 {
			continue
		}
		if p.Done() {
			decided++
		}
	}
	if decided != n-1 {
		t.Fatalf("%d healthy nodes decided, want %d", decided, n-1)
	}
}

// TestClusterDegradedNodeDecides is the cluster-level quarantine test: with
// the Degrade policy a node whose disk fails keeps participating
// non-durably, decides, and (here, since the disk heals) re-arms.
func TestClusterDegradedNodeDecides(t *testing.T) {
	const n = 5
	dir := t.TempDir()
	ffs := &flakyFS{FS: wal.OSFS(), match: "node-001"}
	procs := make([]dist.Process, n)
	for i := range procs {
		procs[i] = newGatherProc(n, nil)
	}
	c, err := NewChannelCluster(procs, WithRecovery(RecoveryConfig{
		Dir:     dir,
		Factory: func(i int) dist.Process { return newGatherProc(n, nil) },
		FS:      ffs, Durability: Degrade,
		RearmMin: time.Millisecond, RearmMax: 4 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	// A transient outage: node 1's disk fails exactly once — the delivery
	// that trips the quarantine — then heals, so the first re-arm attempt
	// succeeds. Whether the background loop or the shutdown flush lands it,
	// durability is restored before Run returns.
	ffs.budget.Store(1)
	ffs.fail.Store(true)
	if err := c.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, p := range c.Processes() {
		if !p.Done() {
			t.Fatalf("node %d did not decide (quorum requires the degraded node)", i)
		}
	}
	st := c.Stats()
	if st.Net.Degradations == 0 {
		t.Fatalf("no degradation recorded: %+v", st.Net)
	}
	if st.Net.FailStops != 0 {
		t.Fatalf("unexpected fail-stops under Degrade policy: %+v", st.Net)
	}
	// The disk healed mid-run, so durability must have been restored and
	// the full history — degraded window included — must replay.
	if st.Net.Rearms == 0 {
		t.Fatalf("no re-arm recorded: %+v", st.Net)
	}
	if d := c.Degraded(); len(d) != 0 {
		t.Fatalf("nodes still degraded after re-arm: %v", d)
	}
	rep, err := wal.Replay(WALPath(dir, dist.ProcID(1)))
	if err != nil {
		t.Fatalf("replay of re-armed log: %v", err)
	}
	if want := n - 1; len(rep.Delivered) < want {
		t.Fatalf("re-armed log has %d deliveries, want >= %d", len(rep.Delivered), want)
	}
}

// TestDurabilityPolicyString pins the flag spellings.
func TestDurabilityPolicyString(t *testing.T) {
	if got := fmt.Sprintf("%v/%v", FailStop, Degrade); got != "failstop/degrade" {
		t.Fatalf("policy strings = %q", got)
	}
}

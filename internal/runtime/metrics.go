package runtime

import "chc/internal/telemetry"

// Process-wide telemetry for the concurrent runtime. ClusterStats remains
// the compatibility accessor for per-cluster counts; these registry series
// aggregate across every cluster in the process and feed /metrics.
var (
	mSends = telemetry.Default().Counter("chc_runtime_sends_total",
		"Protocol messages handed to the network by node contexts.")
	mMailboxDepth = telemetry.Default().Gauge("chc_runtime_mailbox_depth",
		"Protocol messages queued in node mailboxes, process-wide.")
	mRestarts = telemetry.Default().Counter("chc_runtime_restarts_total",
		"Nodes relaunched from their write-ahead log after a planned kill.")
	mRecoverySeconds = telemetry.Default().Histogram("chc_runtime_recovery_seconds",
		"Relaunch latency: WAL replay through reliable-link resumption (excludes planned downtime).", nil)
	mRecoveryFailures = telemetry.Default().Counter("chc_runtime_recovery_failures_total",
		"Relaunch attempts that failed (corrupt WAL, replay nondeterminism, panic).")
	mReconnects = telemetry.Default().Counter("chc_tcp_reconnects_total",
		"Successful TCP redials after a broken link.")
	mLinkFaults = telemetry.Default().Counter("chc_tcp_link_faults_total",
		"TCP link faults observed: write failures, mid-frame truncation, bad handshakes.")
	mDurabilityFaults = telemetry.Default().Counter("chc_runtime_durability_faults_total",
		"WAL write/fsync failures observed on the delivery path.")
	mFailStops = telemetry.Default().Counter("chc_runtime_failstops_total",
		"Nodes fail-stopped on durability failure (became crash faults).")
	mDegradations = telemetry.Default().Counter("chc_runtime_degradations_total",
		"Nodes quarantined into non-durable (degraded) mode.")
	mRearms = telemetry.Default().Counter("chc_runtime_rearms_total",
		"Degraded nodes whose WAL durability was successfully restored.")
	mWireCorruptFrames = telemetry.Default().CounterVec("chc_wire_corrupt_frames_total",
		"Frames rejected by the wire decoder, by directed link and fault class.", "link", "class")
	mPeerQuarantines = telemetry.Default().Counter("chc_peer_quarantines_total",
		"Peers quarantined for exceeding the corrupt-frame strike budget.")
	mPeerReadmits = telemetry.Default().Counter("chc_peer_readmits_total",
		"Quarantined peers readmitted after a clean handshake.")
	mWireBatchFrames = telemetry.Default().HistogramVec("chc_wire_batch_frames",
		"Frames per coalesced wire batch, by directed link.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}, "link")
	mWireBatchBytes = telemetry.Default().HistogramVec("chc_wire_batch_bytes",
		"Bytes per coalesced wire batch before compression, by directed link.",
		[]float64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}, "link")
	mWireCompressedBytes = telemetry.Default().CounterVec("chc_wire_compressed_bytes_total",
		"Bytes written inside flate-compressed batch envelopes, by directed link.", "link")
)

func init() {
	// Link×class is unbounded in principle (links scale with n²); cap the
	// families so a hostile wire cannot blow up the registry — the tail
	// collapses into the all-"other" series.
	telemetry.SetLabelCardinality("chc_wire_corrupt_frames_total", 128)
	telemetry.SetLabelCardinality("chc_wire_batch_frames", 128)
	telemetry.SetLabelCardinality("chc_wire_batch_bytes", 128)
	telemetry.SetLabelCardinality("chc_wire_compressed_bytes_total", 128)
}

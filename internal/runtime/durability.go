package runtime

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"chc/internal/dist"
	"chc/internal/telemetry"
	"chc/internal/wal"
)

// DurabilityPolicy decides what a node does when its write-ahead log stops
// accepting writes (disk error, full device, failed fsync).
type DurabilityPolicy int

const (
	// FailStop (the default) makes the node crash on the spot: a process
	// that cannot journal can no longer uphold the recovery contract, so it
	// becomes one of the f crash faults the protocol tolerates. With a
	// queued restart plan the supervisor may still relaunch it from the
	// durable prefix of its log.
	FailStop DurabilityPolicy = iota
	// Degrade quarantines the node into non-durable mode instead: it keeps
	// participating (deliveries are acked without journaling, buffered in
	// memory) while a background loop retries the disk with backoff. A
	// successful re-arm publishes the full history — including the
	// degraded-window deliveries — as a fresh snapshot, restoring
	// durability; a degraded node that crashes before then is a full crash
	// fault and must not be relaunched (the supervisor enforces this: its
	// journal is missing acked deliveries, so a relaunch is refused with a
	// recovery error rather than resuming divergent state).
	Degrade
)

// String names the policy for flags and run reports.
func (p DurabilityPolicy) String() string {
	if p == Degrade {
		return "degrade"
	}
	return "failstop"
}

// DurabilityStats counts storage-failure handling for one cluster.
type DurabilityStats struct {
	Faults    int64 // WAL write/fsync failures observed
	FailStops int64 // nodes fail-stopped
	Degraded  int64 // nodes that entered degraded mode
	Rearms    int64 // successful durability restorations
}

// errFailStopped refuses deliveries to an incarnation that has already
// fail-stopped; the link withholds its ack, so the peer keeps the message
// for a potential relaunch.
var errFailStopped = errors.New("runtime: node fail-stopped on durability failure")

// durableBox owns the durability path of one incarnation: the WAL, the
// mailbox, and the degradation state machine. It replaces the plain
// journaling closure so a journaling failure can be handled by policy
// instead of only being reported upstream.
//
// The append+fsync+push sequence runs under one mutex for the same reason
// journalingDeliver's did: journal order must equal mailbox (processing)
// order, or a relaunched incarnation could attach different payloads to
// already-transmitted (link, seq) pairs — equivocation across the restart
// boundary.
type durableBox struct {
	c                  *Cluster
	i                  int
	crashed            *atomic.Bool // the incarnation's crash flag (shared with runProc)
	policy             DurabilityPolicy
	rearmMin, rearmMax time.Duration

	mu       sync.Mutex
	w        *wal.WAL
	mbox     *mailbox
	degraded bool
	rearming bool
	pending  [][]byte // record bodies accrued while degraded, journal order
	closed   bool
	closedCh chan struct{}
}

func newDurableBox(c *Cluster, i int, w *wal.WAL, mbox *mailbox, crashed *atomic.Bool) *durableBox {
	b := &durableBox{
		c: c, i: i, w: w, mbox: mbox, crashed: crashed,
		policy:   FailStop,
		rearmMin: time.Millisecond, rearmMax: 250 * time.Millisecond,
		closedCh: make(chan struct{}),
	}
	if c.recovery != nil {
		b.policy = c.recovery.Durability
		if c.recovery.RearmMin > 0 {
			b.rearmMin = c.recovery.RearmMin
		}
		if c.recovery.RearmMax > 0 {
			b.rearmMax = c.recovery.RearmMax
		}
	}
	return b
}

// deliver is the rlink delivery callback: journal, fsync, then push. On a
// durability failure it applies the policy; only fail-stop reports the
// error upstream (withholding the link ack so the peer keeps the message).
func (b *durableBox) deliver(m dist.Message) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.crashed.Load() {
		// The incarnation already fail-stopped (or was killed); its teardown
		// is asynchronous, so deliveries can still race in. Refuse them
		// without re-counting faults: FailStops counts nodes, not attempts.
		return errFailStopped
	}
	if b.degraded {
		b.bufferDegraded(m)
		return nil
	}
	err := b.w.AppendDelivered(m)
	if err == nil {
		err = b.w.Sync()
	}
	if err == nil {
		b.mbox.Push(m)
		return nil
	}
	b.c.durability.faults.Add(1)
	mDurabilityFaults.Inc()
	if telemetry.TraceOn() {
		telemetry.Emit("runtime.durability", map[string]any{
			"proc": b.i, "action": "fault", "err": err.Error(),
		})
	}
	if b.policy == Degrade {
		// A checkpoint failure (wal.ErrCheckpoint) means the fsync itself
		// succeeded: the delivery is already durable and folded into the
		// mirror, and only the snapshot rotation failed. Re-owning it in
		// pending would double-journal it at the next re-arm.
		b.enterDegraded(m, !errors.Is(err, wal.ErrCheckpoint))
		return nil
	}
	b.failStop()
	return err
}

// journalDecided journals a decision through the box so a degraded node's
// decision lands in the pending buffer (and so in the re-arm snapshot).
// Failures are tolerated like journalDecision's: the decision is already
// reproducible from the journaled deliveries.
func (b *durableBox) journalDecided(round int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.degraded {
		b.pending = append(b.pending, wal.EncodeDecided(round))
		return
	}
	if err := b.w.AppendDecided(round); err != nil {
		return
	}
	_ = b.w.Sync()
}

// bufferDegraded acks a delivery non-durably: the body is buffered for the
// next re-arm attempt and the message made visible to the process.
func (b *durableBox) bufferDegraded(m dist.Message) {
	if body, err := wal.EncodeDelivered(m); err == nil {
		b.pending = append(b.pending, body)
	}
	b.mbox.Push(m)
}

// failStop crashes the incarnation (under b.mu). The teardown must be
// asynchronous: deliver runs inside the reliable link's receive path, and
// killNode closes the endpoint, which waits for that very machinery.
func (b *durableBox) failStop() {
	b.crashed.Store(true)
	b.c.durability.failStops.Add(1)
	mFailStops.Inc()
	if telemetry.TraceOn() {
		telemetry.Emit("runtime.durability", map[string]any{"proc": b.i, "action": "failstop"})
	}
	go b.c.killNode(b.i)
}

// enterDegraded quarantines the node into non-durable mode (under b.mu) and
// starts the re-arm loop. With lost=true (fsync failure) the failed delivery
// never reached stable storage: it becomes the first pending entry, and any
// bodies the WAL had buffered-but-not-fsynced are dropped from its mirror
// (they are exactly the failed delivery, which pending now owns). With
// lost=false (post-fsync checkpoint failure) the delivery is already in the
// durable history and the mirror; it is only made visible to the process —
// adding it to pending too would journal it twice on re-arm.
func (b *durableBox) enterDegraded(m dist.Message, lost bool) {
	b.degraded = true
	b.w.DropUnsynced()
	if lost {
		b.bufferDegraded(m)
	} else {
		b.mbox.Push(m)
	}
	b.c.durability.degraded.Add(1)
	mDegradations.Inc()
	if telemetry.TraceOn() {
		telemetry.Emit("runtime.durability", map[string]any{"proc": b.i, "action": "degrade"})
	}
	if !b.rearming {
		b.rearming = true
		b.c.bg.Add(1)
		go b.rearmLoop()
	}
}

// rearmLoop retries the disk with exponential backoff until durability is
// restored or the box is closed. Holding b.mu across the Rearm call is
// deliberate: deliveries arriving during the attempt wait, so a successful
// re-arm covers every message the process has consumed.
func (b *durableBox) rearmLoop() {
	defer b.c.bg.Done()
	backoff := b.rearmMin
	for {
		select {
		case <-time.After(backoff):
		case <-b.closedCh:
			return
		}
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return
		}
		ok := b.rearmOnceLocked()
		b.mu.Unlock()
		if ok {
			return
		}
		backoff *= 2
		if backoff > b.rearmMax {
			backoff = b.rearmMax
		}
	}
}

// rearmOnceLocked attempts one durability restoration (under b.mu) and
// reports success.
func (b *durableBox) rearmOnceLocked() bool {
	if b.w.Rearm(b.pending) != nil {
		return false
	}
	b.pending = nil
	b.degraded = false
	b.rearming = false
	b.c.durability.rearms.Add(1)
	mRearms.Inc()
	if telemetry.TraceOn() {
		telemetry.Emit("runtime.durability", map[string]any{"proc": b.i, "action": "rearm"})
	}
	return true
}

// isDegraded reports whether the node is currently in non-durable mode.
func (b *durableBox) isDegraded() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.degraded
}

// close stops the re-arm loop, after one last synchronous restoration
// attempt: if the disk has healed by shutdown, the degraded-window history
// is persisted rather than abandoned (so post-run replay sees it). A disk
// that is still failing fails the attempt immediately and the node's
// durability ends where the failure left it. It reports whether the box
// ended degraded — i.e. the journal is missing deliveries the node already
// acked, so the supervisor must never relaunch from it. Idempotent; called
// from killNode and Run shutdown.
func (b *durableBox) close() (endedDegraded bool) {
	b.mu.Lock()
	if !b.closed {
		if b.degraded {
			b.rearmOnceLocked()
		}
		b.closed = true
		close(b.closedCh)
	}
	endedDegraded = b.degraded
	b.mu.Unlock()
	return endedDegraded
}

// durabilityCounters aggregates storage-failure handling across a cluster's
// incarnations (atomics: bumped from link callbacks and re-arm loops).
type durabilityCounters struct {
	faults    atomic.Int64
	failStops atomic.Int64
	degraded  atomic.Int64
	rearms    atomic.Int64
}

func (d *durabilityCounters) stats() DurabilityStats {
	return DurabilityStats{
		Faults:    d.faults.Load(),
		FailStops: d.failStops.Load(),
		Degraded:  d.degraded.Load(),
		Rearms:    d.rearms.Load(),
	}
}

package runtime

import (
	"testing"
	"time"

	"chc/internal/chaos"
	"chc/internal/dist"
	"chc/internal/rlink"
	"chc/internal/wire"
)

// TestChannelClusterChaosGather checks the simplest protocol (one broadcast
// each, gather all) survives heavy loss, and that the per-link counters are
// surfaced through Cluster.Stats.
func TestChannelClusterChaosGather(t *testing.T) {
	const n = 5
	procs := make([]dist.Process, n)
	impl := make([]*gatherProc, n)
	for i := range procs {
		impl[i] = newGatherProc(n, nil)
		procs[i] = impl[i]
	}
	profile := chaos.Profile{Drop: 0.3, Dup: 0.15}
	c, err := NewChannelCluster(procs, WithChaos(profile, 11), WithSizer(wire.MessageSize))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, p := range impl {
		if got := p.heardCount(); got < n {
			t.Errorf("process %d heard %d, want %d", i, got, n)
		}
	}
	st := c.Stats()
	if st.Sends != n*(n-1) {
		t.Errorf("protocol sends = %d, want %d (chaos must not distort protocol accounting)", st.Sends, n*(n-1))
	}
	if st.Net.FramesSent < st.Sends {
		t.Errorf("frames sent %d < protocol sends %d", st.Net.FramesSent, st.Sends)
	}
	if st.Net.InjectedDrops == 0 {
		t.Error("no injected drops at drop=0.3")
	}
	if st.Net.Retransmits == 0 {
		t.Error("no retransmits despite drops")
	}
}

// TestReliableLinksWithoutChaos forces the rlink layer over perfect
// channels: it must be an invisible overlay (everything delivered, no
// retransmission storms required for correctness).
func TestReliableLinksWithoutChaos(t *testing.T) {
	const n = 4
	procs := make([]dist.Process, n)
	impl := make([]*gatherProc, n)
	for i := range procs {
		impl[i] = newGatherProc(n, nil)
		procs[i] = impl[i]
	}
	c, err := NewChannelCluster(procs, WithReliableLinks(rlink.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, p := range impl {
		if got := p.heardCount(); got < n {
			t.Errorf("process %d heard %d, want %d", i, got, n)
		}
	}
	st := c.Stats()
	if st.Net.FramesSent == 0 || st.Net.AcksSent == 0 {
		t.Errorf("reliable layer inactive: %+v", st.Net)
	}
	if st.Net.DupSuppressed != 0 {
		t.Errorf("perfect channels produced %d duplicates", st.Net.DupSuppressed)
	}
}

package runtime_test

import (
	"bytes"
	"encoding/gob"
	"testing"
	"time"

	"chc/internal/chaos"
	"chc/internal/core"
	"chc/internal/dist"
	"chc/internal/geom"
	"chc/internal/polytope"
	"chc/internal/runtime"
	"chc/internal/wal"
)

// ccFixture builds n Algorithm CC processes with deterministic inputs and a
// factory that rebuilds any of them from scratch — the determinism the WAL
// replay path relies on.
type ccFixture struct {
	params core.Params
	inputs []geom.Point
}

func newCCFixture(t *testing.T, n, f int) *ccFixture {
	t.Helper()
	params := core.Params{
		N: n, F: f, D: 2,
		Epsilon:    0.05,
		InputLower: 0, InputUpper: 10,
	}
	inputs := make([]geom.Point, n)
	for i := range inputs {
		inputs[i] = geom.NewPoint(float64(i%4)+0.5, float64((i*3)%5)+0.5)
	}
	return &ccFixture{params: params, inputs: inputs}
}

func (fx *ccFixture) factory(t *testing.T) func(i int) dist.Process {
	return func(i int) dist.Process {
		p, err := core.NewProcess(fx.params, dist.ProcID(i), fx.inputs[i])
		if err != nil {
			t.Errorf("factory(%d): %v", i, err)
			return nil
		}
		return p
	}
}

func (fx *ccFixture) procs(t *testing.T) []dist.Process {
	t.Helper()
	procs := make([]dist.Process, fx.params.N)
	for i := range procs {
		p, err := core.NewProcess(fx.params, dist.ProcID(i), fx.inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
	}
	return procs
}

// protocolStateBytes serializes the observable protocol state of a CC
// process — the full execution trace plus the decision polytope — so two
// reconstructions can be compared byte for byte.
func protocolStateBytes(t *testing.T, p dist.Process) []byte {
	t.Helper()
	cp, ok := p.(*core.Process)
	if !ok {
		t.Fatalf("process is %T, want *core.Process", p)
	}
	out, err := cp.Output()
	if err != nil {
		t.Fatalf("process has no decision: %v", err)
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(cp.TraceData()); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(out.Vertices()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWALReplayByteIdentical is the acceptance-criteria replay test: after a
// full consensus run with journaling enabled, replaying each node's WAL
// through a fresh factory-built process must reconstruct byte-identical
// protocol state (trace and decision polytope). The checkpointed variant
// runs the same assertion over a compacted snapshot+segments+tail layout:
// recovery from a snapshot must be indistinguishable from a full log scan.
func TestWALReplayByteIdentical(t *testing.T) {
	t.Run("plain", func(t *testing.T) { testWALReplayByteIdentical(t, 0) })
	t.Run("checkpointed", func(t *testing.T) { testWALReplayByteIdentical(t, 512) })
}

func testWALReplayByteIdentical(t *testing.T, ckptEveryBytes int64) {
	fx := newCCFixture(t, 5, 1)
	procs := fx.procs(t)
	dir := t.TempDir()
	c, err := runtime.NewChannelCluster(procs,
		runtime.WithRecovery(runtime.RecoveryConfig{
			Dir: dir, Factory: fx.factory(t), Inputs: fx.inputs,
			Checkpoint: wal.CheckpointPolicy{EveryBytes: ckptEveryBytes},
		}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	live := c.Processes()
	for i := range procs {
		replayed, rep, err := c.ReplayNodeForTest(i)
		if err != nil {
			t.Fatalf("replay node %d: %v", i, err)
		}
		if rep.Epoch != 0 {
			t.Errorf("node %d: epoch = %d, want 0 (no restarts)", i, rep.Epoch)
		}
		want := protocolStateBytes(t, live[i])
		got := protocolStateBytes(t, replayed)
		if !bytes.Equal(want, got) {
			t.Errorf("node %d: replayed state differs from live state (%d vs %d bytes)",
				i, len(got), len(want))
		}
	}
	st := c.Stats()
	if st.Net.WALAppends == 0 || st.Net.WALSyncs == 0 {
		t.Errorf("WAL counters not reported: %+v", st.Net)
	}
	if ckptEveryBytes > 0 && st.Net.WALCheckpoints == 0 {
		t.Errorf("no checkpoints published at EveryBytes=%d: %+v", ckptEveryBytes, st.Net)
	}
	// The decision must be journaled too: a decided node's log says so
	// without re-executing the state machine.
	for i := range procs {
		rep, err := wal.Replay(runtime.WALPath(dir, dist.ProcID(i)))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Decided {
			t.Errorf("node %d: no decision record in the WAL", i)
		}
		if want := fx.params.TEnd(); rep.DecidedRound != want {
			t.Errorf("node %d: decided round = %d, want t_end = %d", i, rep.DecidedRound, want)
		}
		if ckptEveryBytes > 0 && !rep.Snapshot {
			t.Errorf("node %d: checkpointed log replayed without a snapshot base", i)
		}
	}
}

// runRecoveryConsensus runs one CC instance with the given restart schedule
// and asserts that every process — including the restarted ones — decides,
// and that all decisions agree.
func runRecoveryConsensus(t *testing.T, fx *ccFixture, mk func([]dist.Process, ...runtime.Option) (*runtime.Cluster, error), plans []runtime.RestartPlan) *runtime.Cluster {
	t.Helper()
	procs := fx.procs(t)
	c, err := mk(procs,
		runtime.WithRecovery(runtime.RecoveryConfig{Dir: t.TempDir(), Factory: fx.factory(t), Inputs: fx.inputs}),
		runtime.WithRestarts(plans...))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	live := c.Processes()
	outs := make([]*core.Process, len(live))
	for i, p := range live {
		cp, ok := p.(*core.Process)
		if !ok {
			t.Fatalf("node %d: process is %T", i, p)
		}
		if _, err := cp.Output(); err != nil {
			t.Fatalf("node %d did not decide after recovery: %v", i, err)
		}
		outs[i] = cp
	}
	// ε-agreement must hold across the restart boundary: recovered nodes are
	// correct processes, not crashed ones.
	for i := 1; i < len(outs); i++ {
		a, _ := outs[0].Output()
		b, _ := outs[i].Output()
		d, err := polytope.Hausdorff(a, b, geom.DefaultEps)
		if err != nil {
			t.Fatal(err)
		}
		if d > fx.params.Epsilon+1e-9 {
			t.Errorf("outputs 0 and %d disagree: d_H = %g > ε = %g", i, d, fx.params.Epsilon)
		}
	}
	return c
}

func TestChannelClusterRestartRecovery(t *testing.T) {
	fx := newCCFixture(t, 5, 1)
	c := runRecoveryConsensus(t, fx, runtime.NewChannelCluster, []runtime.RestartPlan{
		{Proc: 1, KillAfterSends: 6, Downtime: 10 * time.Millisecond},
	})
	st := c.Stats()
	if st.Net.Resumes == 0 {
		t.Errorf("no resumption handshakes observed: %+v", st.Net)
	}
	if st.Net.WALAppends == 0 {
		t.Errorf("no WAL appends observed: %+v", st.Net)
	}
}

func TestChannelClusterDoubleRestart(t *testing.T) {
	fx := newCCFixture(t, 5, 1)
	runRecoveryConsensus(t, fx, runtime.NewChannelCluster, []runtime.RestartPlan{
		{Proc: 2, KillAfterSends: 5, Downtime: 5 * time.Millisecond},
		{Proc: 2, KillAfterSends: 4, Downtime: 5 * time.Millisecond},
	})
}

// TestZeroBudgetRelaunchCrashesImmediately pins KillAfterSends=0 semantics
// on a relaunched incarnation: the node must crash the instant it comes back
// up (same as a first incarnation with a zero budget), be relaunched again,
// and still reach agreement — the plan must not hang waiting for a send that
// may never happen.
func TestZeroBudgetRelaunchCrashesImmediately(t *testing.T) {
	fx := newCCFixture(t, 5, 1)
	c := runRecoveryConsensus(t, fx, runtime.NewChannelCluster, []runtime.RestartPlan{
		{Proc: 2, KillAfterSends: 5, Downtime: 5 * time.Millisecond},
		{Proc: 2, KillAfterSends: 0, Downtime: 5 * time.Millisecond},
	})
	// Both plans must actually have fired: the final log carries one epoch
	// record per incarnation.
	rep, err := wal.Replay(runtime.WALPath(c.RecoveryDirForTest(), 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 2 {
		t.Errorf("node 2 ran %d incarnations, want 3 (epoch = %d, want 2)", rep.Epoch+1, rep.Epoch)
	}
}

func TestChannelClusterTwoNodeRestart(t *testing.T) {
	fx := newCCFixture(t, 5, 1)
	runRecoveryConsensus(t, fx, runtime.NewChannelCluster, []runtime.RestartPlan{
		{Proc: 0, KillAfterSends: 4, Downtime: 5 * time.Millisecond},
		{Proc: 3, KillAfterSends: 12, Downtime: 15 * time.Millisecond},
	})
}

func TestTCPClusterRestartRecovery(t *testing.T) {
	fx := newCCFixture(t, 5, 1)
	c := runRecoveryConsensus(t, fx, runtime.NewTCPCluster, []runtime.RestartPlan{
		{Proc: 1, KillAfterSends: 5, Downtime: 20 * time.Millisecond},
	})
	if st := c.Stats(); st.Net.Resumes == 0 {
		t.Errorf("no resumption handshakes observed over TCP: %+v", st.Net)
	}
}

// TestRestartWithChaos composes kill-and-restart faults with a lossy,
// duplicating link layer: the WAL and the chaos machinery must not step on
// each other.
func TestRestartWithChaos(t *testing.T) {
	fx := newCCFixture(t, 5, 1)
	procs := fx.procs(t)
	c, err := runtime.NewChannelCluster(procs,
		runtime.WithChaos(chaos.Light(), 7),
		runtime.WithRecovery(runtime.RecoveryConfig{Dir: t.TempDir(), Factory: fx.factory(t), Inputs: fx.inputs}),
		runtime.WithRestarts(runtime.RestartPlan{Proc: 2, KillAfterSends: 8, Downtime: 10 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, p := range c.Processes() {
		if _, err := p.(*core.Process).Output(); err != nil {
			t.Fatalf("node %d did not decide: %v", i, err)
		}
	}
}

// TestReplayIsRepeatable runs the same WAL through replay twice and checks
// the reconstructions match — replay must not consume or reorder the log
// (the torture analogue at cluster level).
func TestReplayIsRepeatable(t *testing.T) {
	fx := newCCFixture(t, 5, 1)
	procs := fx.procs(t)
	dir := t.TempDir()
	c, err := runtime.NewChannelCluster(procs,
		runtime.WithRecovery(runtime.RecoveryConfig{Dir: dir, Factory: fx.factory(t), Inputs: fx.inputs}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	first, _, err := c.ReplayNodeForTest(2)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := c.ReplayNodeForTest(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(protocolStateBytes(t, first), protocolStateBytes(t, second)) {
		t.Error("two replays of the same WAL reconstructed different state")
	}
	// The journal itself must also survive replay byte for byte.
	rep1, err := wal.Replay(runtime.WALPath(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := wal.Replay(runtime.WALPath(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Records != rep2.Records || len(rep1.Delivered) != len(rep2.Delivered) {
		t.Errorf("replay not repeatable: %d/%d records, %d/%d deliveries",
			rep1.Records, rep2.Records, len(rep1.Delivered), len(rep2.Delivered))
	}
}

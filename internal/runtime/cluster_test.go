package runtime

import (
	"errors"
	"sync"
	"testing"
	"time"

	"chc/internal/dist"
	"chc/internal/geom"
	"chc/internal/stablevector"
	"chc/internal/wire"
)

// gatherProc broadcasts its input and finishes after hearing `quorum`
// distinct senders (itself included). Concurrency-safe via the single pump
// goroutine per process, but fields read by tests after Run need a lock.
type gatherProc struct {
	mu     sync.Mutex
	quorum int
	heard  map[dist.ProcID]bool
	input  geom.Point
}

func newGatherProc(quorum int, input geom.Point) *gatherProc {
	return &gatherProc{quorum: quorum, heard: make(map[dist.ProcID]bool)}
}

func (p *gatherProc) Init(ctx dist.Context) {
	p.mu.Lock()
	p.heard[ctx.ID()] = true
	p.mu.Unlock()
	ctx.Broadcast("val", 0, wire.PointPayload{Value: geom.NewPoint(float64(ctx.ID()))})
}

func (p *gatherProc) Deliver(_ dist.Context, msg dist.Message) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.heard[msg.From] = true
}

func (p *gatherProc) Done() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.heard) >= p.quorum
}

func (p *gatherProc) heardCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.heard)
}

func TestChannelClusterGather(t *testing.T) {
	const n = 5
	procs := make([]dist.Process, n)
	impl := make([]*gatherProc, n)
	for i := range procs {
		impl[i] = newGatherProc(n, nil)
		procs[i] = impl[i]
	}
	c, err := NewChannelCluster(procs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, p := range impl {
		if got := p.heardCount(); got < n {
			t.Errorf("process %d heard %d, want %d", i, got, n)
		}
	}
	if sends := c.Stats().Sends; sends != n*(n-1) {
		t.Errorf("sends = %d, want %d", sends, n*(n-1))
	}
}

func TestChannelClusterCrash(t *testing.T) {
	const n = 5
	procs := make([]dist.Process, n)
	impl := make([]*gatherProc, n)
	for i := range procs {
		impl[i] = newGatherProc(n-1, nil)
		procs[i] = impl[i]
	}
	c, err := NewChannelCluster(procs, WithCrashes(dist.CrashPlan{Proc: 0, AfterSends: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if impl[i].heardCount() < n-1 {
			t.Errorf("process %d heard %d, want >= %d", i, impl[i].heardCount(), n-1)
		}
	}
}

func TestClusterTimeout(t *testing.T) {
	// A single process that never finishes must time out quickly.
	procs := []dist.Process{newGatherProc(2, nil)} // quorum 2 with n=1: impossible
	c, err := NewChannelCluster(procs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(50 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewChannelCluster(nil); err == nil {
		t.Error("empty cluster should error")
	}
}

func TestWithSizer(t *testing.T) {
	const n = 3
	procs := make([]dist.Process, n)
	for i := range procs {
		procs[i] = newGatherProc(n, nil)
	}
	c, err := NewChannelCluster(procs, WithSizer(wire.MessageSize))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Bytes <= 0 {
		t.Errorf("bytes = %d, want > 0", st.Bytes)
	}
	if c.String() == "" {
		t.Error("String should be non-empty")
	}
}

// svHost adapts a stable vector instance to dist.Process with locking for
// the concurrent runtime.
type svHost struct {
	mu sync.Mutex
	sv *stablevector.SV
}

func (h *svHost) Init(ctx dist.Context) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sv.Start(ctx)
}

func (h *svHost) Deliver(ctx dist.Context, msg dist.Message) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if msg.Kind == stablevector.KindReport {
		h.sv.Handle(ctx, msg)
	}
}

func (h *svHost) Done() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sv.Done()
}

func (h *svHost) result() ([]wire.Entry, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sv.Result()
}

func runStableVectorCluster(t *testing.T, mk func([]dist.Process) (*Cluster, error), n, f int) {
	t.Helper()
	hosts := make([]*svHost, n)
	procs := make([]dist.Process, n)
	for i := 0; i < n; i++ {
		sv, err := stablevector.New(dist.ProcID(i), n, f, geom.NewPoint(float64(i), float64(-i)))
		if err != nil {
			t.Fatal(err)
		}
		hosts[i] = &svHost{sv: sv}
		procs[i] = hosts[i]
	}
	c, err := mk(procs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Liveness + containment over the real-concurrency run.
	sets := make([]map[dist.ProcID]bool, 0, n)
	for i, h := range hosts {
		res, ok := h.result()
		if !ok {
			t.Fatalf("process %d did not return", i)
		}
		if len(res) < n-f {
			t.Errorf("process %d: |R| = %d < n-f = %d", i, len(res), n-f)
		}
		set := make(map[dist.ProcID]bool, len(res))
		for _, e := range res {
			set[e.Proc] = true
		}
		sets = append(sets, set)
	}
	for i := range sets {
		for j := i + 1; j < len(sets); j++ {
			if !subset(sets[i], sets[j]) && !subset(sets[j], sets[i]) {
				t.Errorf("containment violated between %d and %d", i, j)
			}
		}
	}
}

func subset(a, b map[dist.ProcID]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestStableVectorOverChannels(t *testing.T) {
	runStableVectorCluster(t, func(p []dist.Process) (*Cluster, error) {
		return NewChannelCluster(p)
	}, 5, 1)
}

func TestStableVectorOverTCP(t *testing.T) {
	runStableVectorCluster(t, func(p []dist.Process) (*Cluster, error) {
		return NewTCPCluster(p, WithSizer(wire.MessageSize))
	}, 4, 1)
}

func TestTCPClusterGather(t *testing.T) {
	const n = 4
	procs := make([]dist.Process, n)
	impl := make([]*gatherProc, n)
	for i := range procs {
		impl[i] = newGatherProc(n, nil)
		procs[i] = impl[i]
	}
	c, err := NewTCPCluster(procs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, p := range impl {
		if got := p.heardCount(); got < n {
			t.Errorf("process %d heard %d, want %d", i, got, n)
		}
	}
}

func TestMailbox(t *testing.T) {
	m := newMailbox()
	m.Push(dist.Message{Kind: "a"})
	m.Push(dist.Message{Kind: "b"})
	got, err := m.Pop()
	if err != nil || got.Kind != "a" {
		t.Errorf("Pop = %v, %v", got.Kind, err)
	}
	m.Close()
	// Drain the remaining message, then observe closure.
	got, err = m.Pop()
	if err != nil || got.Kind != "b" {
		t.Errorf("Pop after close = %v, %v (should drain)", got.Kind, err)
	}
	if _, err := m.Pop(); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	m.Push(dist.Message{Kind: "c"}) // push after close is a no-op
	if _, err := m.Pop(); !errors.Is(err, ErrClosed) {
		t.Errorf("push after close should be dropped")
	}
}

func TestMailboxBlockingPop(t *testing.T) {
	m := newMailbox()
	done := make(chan dist.Message, 1)
	go func() {
		msg, err := m.Pop()
		if err == nil {
			done <- msg
		}
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	m.Push(dist.Message{Kind: "x"})
	select {
	case msg := <-done:
		if msg.Kind != "x" {
			t.Errorf("got %q", msg.Kind)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pop did not wake up")
	}
}

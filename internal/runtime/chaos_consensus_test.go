package runtime_test

import (
	"os"
	"testing"
	"time"

	"chc/internal/chaos"
	"chc/internal/core"
	"chc/internal/dist"
	"chc/internal/geom"
	"chc/internal/polytope"
	"chc/internal/runtime"
	"chc/internal/wire"
)

// matrixProfiles are the chaos profiles of the acceptance matrix: pure
// loss, loss+dup+jitter, and the full heavy profile (>= 20% drop, dup,
// delay jitter, transient partition of process 0).
func matrixProfiles() []chaos.Profile {
	return []chaos.Profile{
		{Drop: 0.25},
		{Drop: 0.20, Dup: 0.10, DelayMin: 50 * time.Microsecond, DelayMax: time.Millisecond},
		chaos.Heavy(),
	}
}

// runChaosConsensus executes one full Algorithm CC instance over the
// in-process transport with the given chaos profile and crash plans, then
// checks that every live process terminated with a decision and that every
// output lies inside the validity hull (convex hull of non-faulty inputs).
func runChaosConsensus(t *testing.T, profile chaos.Profile, crashes []dist.CrashPlan, seed int64) runtime.ClusterStats {
	t.Helper()
	const n, f = 5, 1
	params := core.Params{N: n, F: f, D: 2, Epsilon: 0.05, InputLower: 0, InputUpper: 10}.WithDefaults()
	inputs := make([]geom.Point, n)
	for i := range inputs {
		inputs[i] = geom.NewPoint(float64((i*3+int(seed))%11), float64((i*7+2*int(seed))%11))
	}
	cfg := core.RunConfig{Params: params, Inputs: inputs, Seed: seed, Crashes: crashes}
	for _, c := range crashes {
		cfg.Faulty = append(cfg.Faulty, c.Proc)
	}

	procs := make([]dist.Process, n)
	impls := make([]*core.Process, n)
	for i := 0; i < n; i++ {
		proc, err := core.NewProcess(params, dist.ProcID(i), inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		impls[i] = proc
		procs[i] = proc
	}
	opts := []runtime.Option{runtime.WithSizer(wire.MessageSize), runtime.WithChaos(profile, seed)}
	if len(crashes) > 0 {
		opts = append(opts, runtime.WithCrashes(crashes...))
	}
	c, err := runtime.NewChannelCluster(procs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(60 * time.Second); err != nil {
		t.Fatalf("profile %v seed %d: %v", profile, seed, err)
	}

	result := &core.RunResult{
		Params:  params,
		Outputs: make(map[dist.ProcID]*polytope.Polytope),
		Crashed: make(map[dist.ProcID]bool),
		Faulty:  make(map[dist.ProcID]bool),
		Traces:  make(map[dist.ProcID]core.Trace),
	}
	for _, id := range cfg.Faulty {
		result.Faulty[id] = true
	}
	for i, proc := range impls {
		id := dist.ProcID(i)
		out, oerr := proc.Output()
		if oerr != nil {
			result.Crashed[id] = true
			continue
		}
		result.Outputs[id] = out
	}
	// Termination: every fault-free process must have decided despite the
	// chaos (crashed-per-plan processes are exempt).
	for _, id := range result.FaultFree() {
		if _, ok := result.Outputs[id]; !ok {
			t.Errorf("profile %v seed %d: fault-free process %d did not decide", profile, seed, id)
		}
	}
	// Validity: every decided output inside the hull of non-faulty inputs.
	if err := core.CheckValidity(result, &cfg); err != nil {
		t.Errorf("profile %v seed %d: validity violated: %v", profile, seed, err)
	}
	return c.Stats()
}

// TestChaosMatrix is the acceptance matrix: seeds x chaos profiles x crash
// plans, asserting termination + validity on every cell and non-zero
// reliability counters in aggregate.
func TestChaosMatrix(t *testing.T) {
	seeds := []int64{1, 2}
	var agg dist.NetStats
	for _, seed := range seeds {
		for pi, profile := range matrixProfiles() {
			for ci, crashes := range [][]dist.CrashPlan{
				nil,
				{{Proc: 4, AfterSends: 15}}, // up to f = 1 crash, mid-broadcast
			} {
				st := runChaosConsensus(t, profile, crashes, seed)
				if st.Net.InjectedDrops == 0 {
					t.Errorf("seed %d profile %d crash-set %d: chaos injected no drops", seed, pi, ci)
				}
				agg.Retransmits += st.Net.Retransmits
				agg.DupSuppressed += st.Net.DupSuppressed
				agg.OutOfOrder += st.Net.OutOfOrder
				agg.InjectedDups += st.Net.InjectedDups
				agg.PartitionDrops += st.Net.PartitionDrops
			}
		}
	}
	// The reliability layer must visibly do its job somewhere in the matrix.
	if agg.Retransmits == 0 {
		t.Error("no retransmits across the whole chaos matrix")
	}
	if agg.DupSuppressed == 0 {
		t.Error("no duplicate suppressions across the whole chaos matrix")
	}
	if agg.InjectedDups == 0 {
		t.Error("no injected duplicates across the whole chaos matrix")
	}
	if agg.PartitionDrops == 0 {
		t.Error("the heavy profile's partition never dropped a frame")
	}
}

// TestChaosReproducibleCounters runs the same cell twice and requires the
// outcome (all outputs valid, counters non-zero) to be stable; exact
// counter equality is not required because retransmission timing under real
// concurrency varies, but the seeded fault plan guarantees both runs face
// >0 injected faults on the same links.
func TestChaosReproducibleCounters(t *testing.T) {
	a := runChaosConsensus(t, matrixProfiles()[0], nil, 9)
	b := runChaosConsensus(t, matrixProfiles()[0], nil, 9)
	if a.Net.InjectedDrops == 0 || b.Net.InjectedDrops == 0 {
		t.Errorf("seeded fault plan produced no drops: %d vs %d", a.Net.InjectedDrops, b.Net.InjectedDrops)
	}
	if a.Sends == 0 || b.Sends == 0 {
		t.Error("no protocol sends recorded")
	}
}

// TestChaosSoak is the long-running matrix (many seeds, full heavy
// profile). It is opt-in via CHC_CHAOS_SOAK so tier-1 stays fast; run it
// with `make soak`.
func TestChaosSoak(t *testing.T) {
	if os.Getenv("CHC_CHAOS_SOAK") == "" {
		t.Skip("set CHC_CHAOS_SOAK=1 (or run `make soak`) to enable the chaos soak")
	}
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	for seed := int64(1); seed <= 20; seed++ {
		for _, crashes := range [][]dist.CrashPlan{
			nil,
			{{Proc: 4, AfterSends: int(seed) * 3 % 40}},
		} {
			runChaosConsensus(t, chaos.Heavy(), crashes, seed)
		}
	}
}

package polytope

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chc/internal/geom"
)

func TestAverageOfTranslates(t *testing.T) {
	// Average of X and X+v is X translated by v/2 (for convex X).
	sq := unitSquare(t)
	moved := sq.Translate(pt(2, 0))
	avg, err := Average([]*Polytope{sq, moved}, eps)
	if err != nil {
		t.Fatal(err)
	}
	want := sq.Translate(pt(1, 0))
	same, err := Equal(avg, want, 1e-6)
	if err != nil || !same {
		t.Errorf("average = %v, want %v", avg, want)
	}
}

func TestAverageOfPoints(t *testing.T) {
	a := FromPoint(pt(0, 0))
	b := FromPoint(pt(2, 4))
	avg, err := Average([]*Polytope{a, b}, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !avg.IsPoint(1e-9) {
		t.Fatalf("average of points should be a point: %v", avg)
	}
	c, err := avg.Centroid()
	if err != nil || !geom.Equal(c, pt(1, 2), 1e-9) {
		t.Errorf("average point = %v", c)
	}
}

func TestLinearCombinationIdentity(t *testing.T) {
	sq := unitSquare(t)
	got, err := LinearCombination([]*Polytope{sq}, []float64{1}, eps)
	if err != nil {
		t.Fatal(err)
	}
	same, err := Equal(got, sq, 1e-9)
	if err != nil || !same {
		t.Errorf("L([h];[1]) != h")
	}
}

func TestLinearCombinationWeighted(t *testing.T) {
	// 0.25 * [0,4] + 0.75 * {8} = [6, 7] in 1-D.
	a := mustNew(t, pt(0), pt(4))
	b := FromPoint(pt(8))
	got, err := LinearCombination([]*Polytope{a, b}, []float64{0.25, 0.75}, eps)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := got.BoundingBox()
	if err != nil || math.Abs(lo[0]-6) > eps || math.Abs(hi[0]-7) > eps {
		t.Errorf("combination = [%v, %v], want [6, 7]", lo, hi)
	}
}

func TestLinearCombinationValidation(t *testing.T) {
	sq := unitSquare(t)
	if _, err := LinearCombination(nil, nil, eps); err == nil {
		t.Error("empty operands should error")
	}
	if _, err := LinearCombination([]*Polytope{sq}, []float64{0.5}, eps); err == nil {
		t.Error("weights not summing to 1 should error")
	}
	if _, err := LinearCombination([]*Polytope{sq, sq}, []float64{1.5, -0.5}, eps); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := LinearCombination([]*Polytope{sq}, []float64{0.5, 0.5}, eps); err == nil {
		t.Error("mismatched lengths should error")
	}
	one := mustNew(t, pt(0), pt(1))
	if _, err := LinearCombination([]*Polytope{sq, one}, []float64{0.5, 0.5}, eps); err == nil {
		t.Error("mixed dimensions should error")
	}
}

func TestLinearCombinationZeroWeightDropped(t *testing.T) {
	sq := unitSquare(t)
	far := mustNew(t, pt(100, 100), pt(101, 100), pt(100, 101))
	got, err := LinearCombination([]*Polytope{sq, far}, []float64{1, 0}, eps)
	if err != nil {
		t.Fatal(err)
	}
	same, err := Equal(got, sq, 1e-9)
	if err != nil || !same {
		t.Errorf("zero-weight operand leaked into the result: %v", got)
	}
}

func TestAverage3D(t *testing.T) {
	tet := mustNew(t, pt(0, 0, 0), pt(1, 0, 0), pt(0, 1, 0), pt(0, 0, 1))
	moved := tet.Translate(pt(1, 1, 1))
	avg, err := Average([]*Polytope{tet, moved}, eps)
	if err != nil {
		t.Fatal(err)
	}
	want := tet.Translate(pt(0.5, 0.5, 0.5))
	same, err := Equal(avg, want, 1e-6)
	if err != nil || !same {
		t.Errorf("3-D average mismatch")
	}
}

// Property (Definition 2 / Lemma 5): every convex combination of points
// drawn from the operands lies inside L, and L's vertices decompose as
// weighted sums of operand points.
func TestLinearCombinationDefinition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Polytope {
			n := 1 + rng.Intn(6)
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = pt(rng.Float64()*8-4, rng.Float64()*8-4)
			}
			p, err := New(pts, eps)
			if err != nil {
				return nil
			}
			return p
		}
		k := 2 + rng.Intn(3)
		polys := make([]*Polytope, k)
		w := make([]float64, k)
		var sum float64
		for i := range polys {
			if polys[i] = mk(); polys[i] == nil {
				return false
			}
			w[i] = rng.Float64() + 0.01
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
		l, err := LinearCombination(polys, w, eps)
		if err != nil {
			return false
		}
		// Sample points p_i in h_i; sum w_i p_i must be in L.
		for trial := 0; trial < 5; trial++ {
			acc := geom.Zero(2)
			for i, p := range polys {
				s, err := p.Sample(rng)
				if err != nil {
					return false
				}
				acc = acc.AddScaled(w[i], s)
			}
			in, err := l.Contains(acc, 1e-6)
			if err != nil || !in {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: averaging is a contraction toward agreement — the Hausdorff
// distance between two averages is at most the average of the pairwise
// distances (the engine of the convergence proof).
func TestAverageContraction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Polytope {
			n := 1 + rng.Intn(5)
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = pt(rng.Float64()*6-3, rng.Float64()*6-3)
			}
			p, err := New(pts, eps)
			if err != nil {
				return nil
			}
			return p
		}
		a, b, c := mk(), mk(), mk()
		if a == nil || b == nil || c == nil {
			return false
		}
		// avg1 over {a,b,c}, avg2 over {a,b} (simulating different message
		// sets): both contain weighted mixes; sanity-check dH(avg1, avg2) is
		// no larger than max pairwise distance among operands.
		avg1, err := Average([]*Polytope{a, b, c}, eps)
		if err != nil {
			return false
		}
		avg2, err := Average([]*Polytope{a, b}, eps)
		if err != nil {
			return false
		}
		dmax, err := MaxPairwiseHausdorff([]*Polytope{a, b, c}, eps)
		if err != nil {
			return false
		}
		d, err := Hausdorff(avg1, avg2, eps)
		if err != nil {
			return false
		}
		return d <= dmax+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

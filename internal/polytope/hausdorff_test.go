package polytope

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chc/internal/geom"
)

func TestHausdorffTranslatedSquares(t *testing.T) {
	sq := unitSquare(t)
	moved := sq.Translate(pt(3, 0))
	d, err := Hausdorff(sq, moved, eps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-3) > 1e-9 {
		t.Errorf("d_H = %v, want 3", d)
	}
}

func TestHausdorffIdentical(t *testing.T) {
	sq := unitSquare(t)
	d, err := Hausdorff(sq, sq, eps)
	if err != nil || d > 1e-12 {
		t.Errorf("d_H(X, X) = %v, %v", d, err)
	}
}

func TestHausdorffNestedIsDirected(t *testing.T) {
	// For A ⊆ B: directed(A→B) = 0, directed(B→A) > 0.
	big := mustNew(t, pt(0, 0), pt(4, 0), pt(4, 4), pt(0, 4))
	small := mustNew(t, pt(1, 1), pt(3, 1), pt(3, 3), pt(1, 3))
	dab, err := DirectedHausdorff(small, big, eps)
	if err != nil || dab > 1e-9 {
		t.Errorf("directed(small→big) = %v, %v", dab, err)
	}
	dba, err := DirectedHausdorff(big, small, eps)
	if err != nil {
		t.Fatal(err)
	}
	// Farthest point of big from small: a corner, at distance sqrt(2).
	if math.Abs(dba-math.Sqrt2) > 1e-9 {
		t.Errorf("directed(big→small) = %v, want sqrt(2)", dba)
	}
	full, err := Hausdorff(big, small, eps)
	if err != nil || math.Abs(full-dba) > 1e-12 {
		t.Errorf("d_H = %v, want %v", full, dba)
	}
}

func TestHausdorffPoints(t *testing.T) {
	a := FromPoint(pt(0, 0, 0))
	b := FromPoint(pt(1, 2, 2))
	d, err := Hausdorff(a, b, eps)
	if err != nil || math.Abs(d-3) > 1e-9 {
		t.Errorf("d_H = %v, want 3", d)
	}
}

func TestDistance1D(t *testing.T) {
	iv := mustNew(t, pt(2), pt(5))
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0, 2}, {3, 0}, {7, 2}, {2, 0}, {5, 0}} {
		d, err := iv.Distance(pt(tc.q), eps)
		if err != nil || math.Abs(d-tc.want) > 1e-9 {
			t.Errorf("Distance(%v) = %v, want %v", tc.q, d, tc.want)
		}
	}
}

func TestDistance3DWolfe(t *testing.T) {
	tet := mustNew(t, pt(0, 0, 0), pt(1, 0, 0), pt(0, 1, 0), pt(0, 0, 1))
	// Interior point: distance 0.
	d, err := tet.Distance(pt(0.1, 0.1, 0.1), eps)
	if err != nil || d > 1e-6 {
		t.Errorf("interior distance = %v, %v", d, err)
	}
	// Point straight above the origin vertex.
	d, err = tet.Distance(pt(-1, -1, -1), eps)
	if err != nil || math.Abs(d-math.Sqrt(3)) > 1e-6 {
		t.Errorf("vertex distance = %v, want sqrt(3)", d)
	}
	// Point beyond the x=... face: nearest point on facet x+y+z=1.
	d, err = tet.Distance(pt(1, 1, 1), eps)
	want := geom.Dist(pt(1, 1, 1), pt(1.0/3, 1.0/3, 1.0/3))
	if err != nil || math.Abs(d-want) > 1e-6 {
		t.Errorf("facet distance = %v, want %v", d, want)
	}
}

func TestNearest(t *testing.T) {
	sq := unitSquare(t)
	n, err := sq.Nearest(pt(2, 0.5), eps)
	if err != nil {
		t.Fatal(err)
	}
	if !geom.Equal(n, pt(1, 0.5), 1e-6) {
		t.Errorf("Nearest = %v, want (1, 0.5)", n)
	}
}

func TestMaxPairwiseHausdorff(t *testing.T) {
	a := FromPoint(pt(0))
	b := FromPoint(pt(1))
	c := FromPoint(pt(5))
	d, err := MaxPairwiseHausdorff([]*Polytope{a, b, c}, eps)
	if err != nil || math.Abs(d-5) > 1e-9 {
		t.Errorf("max pairwise = %v, want 5", d)
	}
	d, err = MaxPairwiseHausdorff([]*Polytope{a}, eps)
	if err != nil || d != 0 {
		t.Errorf("single polytope max pairwise = %v", d)
	}
}

// Property: Hausdorff distance is a metric on convex polytopes — symmetric,
// zero iff equal (approximately), and triangle inequality.
func TestHausdorffMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Polytope {
			n := 1 + rng.Intn(6)
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = pt(rng.Float64()*10-5, rng.Float64()*10-5)
			}
			p, err := New(pts, eps)
			if err != nil {
				return nil
			}
			return p
		}
		a, b, c := mk(), mk(), mk()
		if a == nil || b == nil || c == nil {
			return false
		}
		dab, err1 := Hausdorff(a, b, eps)
		dba, err2 := Hausdorff(b, a, eps)
		dac, err3 := Hausdorff(a, c, eps)
		dcb, err4 := Hausdorff(c, b, eps)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		if math.Abs(dab-dba) > 1e-6 {
			return false
		}
		return dab <= dac+dcb+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: the Wolfe projection agrees with the exact 2-D polygon distance.
func TestWolfeMatches2D(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = pt(rng.Float64()*6-3, rng.Float64()*6-3)
		}
		p, err := New(pts, eps)
		if err != nil {
			return false
		}
		q := pt(rng.Float64()*10-5, rng.Float64()*10-5)
		exact, err := p.Distance(q, eps) // 2-D exact path
		if err != nil {
			return false
		}
		proj, wd, err := minNormPoint(p.verts, q, eps)
		if err != nil {
			return false
		}
		if math.Abs(wd-exact) > 1e-6 {
			return false
		}
		// The projection itself must be (approximately) in the polytope.
		in, err := p.Contains(proj, 1e-6)
		return err == nil && in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package polytope

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"chc/internal/geom"
	"chc/internal/geom/par"
	"chc/internal/hull"
	"chc/internal/lp"
)

// degenerateRadiusFactor decides when a Chebyshev radius is "essentially
// zero" and the d>=3 intersection falls back to support-direction
// enumeration.
const degenerateRadiusFactor = 1e-7

// supportSampleDirs is the number of random directions (in addition to the
// 2d axis directions) used by the degenerate-intersection fallback.
const supportSampleDirs = 64

// DefaultDirSeed seeds the random support directions of the degenerate
// d >= 3 intersection fallback. Intersect has always used this seed; keep it
// so recorded traces and WAL replays stay byte-identical across versions.
const DefaultDirSeed = 42

// Intersect returns the intersection of the given polytopes. It returns
// ErrEmpty when the intersection is empty. Intersections that touch only in
// a face are returned as the (lower-dimensional) face.
//
// This is the operation on line 5 of Algorithm CC, where each operand is the
// convex hull of an (|X_i| - f)-subset of the received inputs.
func Intersect(polys []*Polytope, eps float64) (*Polytope, error) {
	return IntersectSeeded(polys, eps, DefaultDirSeed)
}

// IntersectSeeded is Intersect with a caller-supplied seed for the random
// support directions of the degenerate fallback (only reachable for d >= 3).
// Two calls with the same operands and seed produce bitwise-identical
// results; Intersect is the dirSeed = DefaultDirSeed special case.
func IntersectSeeded(polys []*Polytope, eps float64, dirSeed int64) (*Polytope, error) {
	if len(polys) == 0 {
		return nil, errors.New("polytope: intersect of zero polytopes")
	}
	d := polys[0].Dim()
	for i, p := range polys {
		if len(p.verts) == 0 {
			return nil, ErrEmpty
		}
		if p.Dim() != d {
			return nil, fmt.Errorf("polytope: operand %d has dimension %d, want %d", i, p.Dim(), d)
		}
	}
	if len(polys) == 1 {
		return fromHullVerts(polys[0].Vertices()), nil
	}
	switch d {
	case 1:
		return intersect1D(polys, eps)
	case 2:
		return intersect2D(polys, eps)
	default:
		return intersectND(polys, eps, dirSeed)
	}
}

func intersect1D(polys []*Polytope, eps float64) (*Polytope, error) {
	lo, hi := -1e308, 1e308
	for _, p := range polys {
		plo, phi, err := p.BoundingBox()
		if err != nil {
			return nil, err
		}
		if plo[0] > lo {
			lo = plo[0]
		}
		if phi[0] < hi {
			hi = phi[0]
		}
	}
	switch {
	case lo > hi+eps:
		return nil, ErrEmpty
	case lo >= hi: // touching within eps: a single point
		mid := (lo + hi) / 2
		return FromPoint(geom.NewPoint(mid)), nil
	default:
		return fromHullVerts([]geom.Point{geom.NewPoint(lo), geom.NewPoint(hi)}), nil
	}
}

func intersect2D(polys []*Polytope, eps float64) (*Polytope, error) {
	cur := polys[0].verts
	for _, p := range polys[1:] {
		cur = hull.IntersectConvexPolygons(cur, p.verts, eps)
		if len(cur) == 0 {
			return nil, ErrEmpty
		}
	}
	return fromHullVerts(cur), nil
}

// lpPool hands out per-worker LP workspaces for the parallel fan-outs below.
var lpPool = sync.Pool{New: func() any { return lp.NewWorkspace() }}

// intersectND intersects polytopes in d >= 3 via halfspace representations:
// collect all facets, find a Chebyshev centre, and enumerate the vertices of
// the intersection by polar duality (facets of the dual hull around the
// centre correspond to vertices of the intersection). Degenerate
// intersections fall back to support-direction enumeration, which returns an
// inner approximation that is exact for the point/segment cases that arise
// at the resilience boundary.
//
// Each operand's facet enumeration is independent, so they run on the shared
// worker pool; the facet list is then assembled sequentially in operand
// order, keeping the constraint system (and everything downstream) identical
// to the sequential construction.
func intersectND(polys []*Polytope, eps float64, dirSeed int64) (*Polytope, error) {
	perOp := make([][]hull.Facet, len(polys))
	if err := par.ForEach(len(polys), func(i int) error {
		f, err := polys[i].Facets(eps)
		if err != nil {
			return err
		}
		perOp[i] = f
		return nil
	}); err != nil {
		return nil, err
	}
	var a [][]float64
	var b []float64
	scale := 1.0
	for i, p := range polys {
		for _, f := range perOp[i] {
			a = append(a, f.Normal)
			b = append(b, f.Offset)
		}
		for _, v := range p.verts {
			if m := v.NormInf(); m > scale {
				scale = m
			}
		}
	}
	center, radius, err := lp.ChebyshevCenter(a, b, eps)
	switch {
	case errors.Is(err, lp.ErrInfeasible):
		return nil, ErrEmpty
	case err != nil:
		return nil, fmt.Errorf("polytope: chebyshev centre: %w", err)
	}
	if radius <= degenerateRadiusFactor*scale {
		return supportSample(a, b, center, eps, dirSeed)
	}

	// Polar duality around the centre: halfspace a·x <= b becomes the dual
	// point a / (b - a·center); vertices of the intersection correspond to
	// facets of the dual hull.
	d := len(center)
	duals := make([]geom.Point, 0, len(a))
	for i := range a {
		margin := b[i] - geom.Point(a[i]).Dot(center)
		if margin <= eps {
			// Numerically tight at the centre despite a positive radius;
			// treat as degenerate to stay safe.
			return supportSample(a, b, center, eps, dirSeed)
		}
		duals = append(duals, geom.Point(a[i]).Scale(1/margin))
	}
	dualVerts, err := hull.ExtremeFilter(duals, eps)
	if err != nil {
		return nil, fmt.Errorf("polytope: dual filtering: %w", err)
	}
	if len(dualVerts) < d+1 {
		// The dual hull is lower-dimensional, meaning the primal is
		// unbounded in some direction — impossible for intersections of
		// bounded polytopes, so this is numerical degeneracy.
		return supportSample(a, b, center, eps, dirSeed)
	}
	dualFacets, err := hull.Facets(dualVerts, eps)
	if err != nil {
		return nil, fmt.Errorf("polytope: dual facets: %w", err)
	}
	verts := make([]geom.Point, 0, len(dualFacets))
	for _, f := range dualFacets {
		if f.Offset <= eps {
			continue // facet through the dual origin: vertex at infinity
		}
		verts = append(verts, f.Normal.Scale(1/f.Offset).Add(center))
	}
	if len(verts) == 0 {
		return supportSample(a, b, center, eps, dirSeed)
	}
	return New(verts, eps)
}

// supportSample enumerates extreme points of {x : Ax <= b} by maximising
// along the +-axis directions and a deterministic, seed-derived set of
// random directions. For full-dimensional polytopes this is an inner
// approximation; for the degenerate (point / segment / low-dimensional)
// intersections it is exact up to LP tolerance. The per-direction LPs are
// independent and run on the shared worker pool; results are gathered in
// direction order.
func supportSample(a [][]float64, b []float64, center []float64, eps float64, dirSeed int64) (*Polytope, error) {
	d := len(center)
	rng := rand.New(rand.NewSource(dirSeed)) // deterministic direction set
	dirs := make([]geom.Point, 0, 2*d+supportSampleDirs)
	for i := 0; i < d; i++ {
		e := geom.Zero(d)
		e[i] = 1
		dirs = append(dirs, e, e.Scale(-1))
	}
	for i := 0; i < supportSampleDirs; i++ {
		v := geom.Zero(d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		if n := v.Norm(); n > eps {
			dirs = append(dirs, v.Scale(1/n))
		}
	}
	pts := make([]geom.Point, len(dirs))
	err := par.ForEach(len(dirs), func(i int) error {
		ws := lpPool.Get().(*lp.Workspace)
		defer lpPool.Put(ws)
		x, _, err := lp.MaximizeOverHalfspacesWith(ws, dirs[i], a, b, eps)
		if err != nil {
			return err
		}
		pts[i] = geom.Point(x)
		return nil
	})
	if errors.Is(err, lp.ErrInfeasible) {
		return nil, ErrEmpty
	}
	if err != nil {
		return nil, fmt.Errorf("polytope: support sampling: %w", err)
	}
	if len(pts) == 0 {
		return FromPoint(geom.Point(center).Clone()), nil
	}
	return New(pts, eps)
}

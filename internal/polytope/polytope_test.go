package polytope

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"chc/internal/geom"
)

const eps = 1e-9

func pt(coords ...float64) geom.Point { return geom.NewPoint(coords...) }

func mustNew(t *testing.T, pts ...geom.Point) *Polytope {
	t.Helper()
	p, err := New(pts, eps)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func unitSquare(t *testing.T) *Polytope {
	return mustNew(t, pt(0, 0), pt(1, 0), pt(1, 1), pt(0, 1))
}

func TestNewCanonicalises(t *testing.T) {
	p := mustNew(t, pt(0, 0), pt(2, 0), pt(1, 0), pt(2, 2), pt(0, 2), pt(1, 1))
	if p.NumVertices() != 4 {
		t.Errorf("vertices = %d, want 4 (%v)", p.NumVertices(), p.Vertices())
	}
	if p.Dim() != 2 {
		t.Errorf("Dim = %d", p.Dim())
	}
}

func TestFromPoint(t *testing.T) {
	p := FromPoint(pt(3, 4))
	if !p.IsPoint(eps) {
		t.Error("FromPoint should be a point")
	}
	if d, err := p.AffineDim(eps); err != nil || d != 0 {
		t.Errorf("AffineDim = %d, %v", d, err)
	}
}

func TestContains(t *testing.T) {
	sq := unitSquare(t)
	for _, tc := range []struct {
		q    geom.Point
		want bool
	}{
		{pt(0.5, 0.5), true},
		{pt(0, 0), true},
		{pt(1, 0.5), true},
		{pt(1.1, 0.5), false},
		{pt(-0.1, -0.1), false},
	} {
		got, err := sq.Contains(tc.q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestContainsPolytope(t *testing.T) {
	big := mustNew(t, pt(0, 0), pt(4, 0), pt(4, 4), pt(0, 4))
	small := mustNew(t, pt(1, 1), pt(2, 1), pt(1, 2))
	in, err := big.ContainsPolytope(small, eps)
	if err != nil || !in {
		t.Errorf("small in big: %v %v", in, err)
	}
	in, err = small.ContainsPolytope(big, eps)
	if err != nil || in {
		t.Errorf("big in small should be false: %v %v", in, err)
	}
}

func TestSupport(t *testing.T) {
	sq := unitSquare(t)
	v, val, err := sq.Support(pt(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(val-2) > eps || !geom.Equal(v, pt(1, 1), eps) {
		t.Errorf("Support = %v at %v", val, v)
	}
}

func TestVolumeCentroidDiameter(t *testing.T) {
	sq := unitSquare(t)
	vol, err := sq.Volume(eps)
	if err != nil || math.Abs(vol-1) > 1e-9 {
		t.Errorf("Volume = %v, %v", vol, err)
	}
	c, err := sq.Centroid()
	if err != nil || !geom.Equal(c, pt(0.5, 0.5), 1e-9) {
		t.Errorf("Centroid = %v, %v", c, err)
	}
	if d := sq.Diameter(); math.Abs(d-math.Sqrt2) > 1e-9 {
		t.Errorf("Diameter = %v", d)
	}
}

func TestSampleInside(t *testing.T) {
	sq := unitSquare(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		q, err := sq.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		in, err := sq.Contains(q, 1e-6)
		if err != nil || !in {
			t.Fatalf("sample %v outside the polytope", q)
		}
	}
}

func TestTranslateScale(t *testing.T) {
	sq := unitSquare(t)
	moved := sq.Translate(pt(10, 0))
	in, err := moved.Contains(pt(10.5, 0.5), eps)
	if err != nil || !in {
		t.Error("translated polytope misses translated point")
	}
	scaled := sq.Scale(2)
	vol, err := scaled.Volume(eps)
	if err != nil || math.Abs(vol-4) > 1e-9 {
		t.Errorf("scaled volume = %v", vol)
	}
	zero := sq.Scale(0)
	if !zero.IsPoint(eps) {
		t.Error("zero-scaled polytope should collapse to a point")
	}
}

func TestPolytopeString(t *testing.T) {
	if s := FromPoint(pt(1)).String(); s == "" {
		t.Error("empty String")
	}
	var big []geom.Point
	for i := 0; i < 10; i++ {
		big = append(big, pt(math.Cos(float64(i)), math.Sin(float64(i))))
	}
	p, err := New(big, eps)
	if err != nil {
		t.Fatal(err)
	}
	if s := p.String(); s == "" {
		t.Error("empty String for big polytope")
	}
}

func TestIntersectSquares(t *testing.T) {
	a := unitSquare(t)
	b := mustNew(t, pt(0.5, 0.5), pt(1.5, 0.5), pt(1.5, 1.5), pt(0.5, 1.5))
	got, err := Intersect([]*Polytope{a, b}, eps)
	if err != nil {
		t.Fatal(err)
	}
	vol, err := got.Volume(eps)
	if err != nil || math.Abs(vol-0.25) > 1e-6 {
		t.Errorf("intersection volume = %v, want 0.25", vol)
	}
}

func TestIntersectEmpty(t *testing.T) {
	a := unitSquare(t)
	b := mustNew(t, pt(5, 5), pt(6, 5), pt(5, 6))
	if _, err := Intersect([]*Polytope{a, b}, eps); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestIntersect1D(t *testing.T) {
	a := mustNew(t, pt(0), pt(3))
	b := mustNew(t, pt(2), pt(5))
	got, err := Intersect([]*Polytope{a, b}, eps)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := got.BoundingBox()
	if err != nil || math.Abs(lo[0]-2) > eps || math.Abs(hi[0]-3) > eps {
		t.Errorf("intersection = [%v, %v]", lo, hi)
	}
	// Touching intervals -> single point.
	c := mustNew(t, pt(3), pt(4))
	got, err = Intersect([]*Polytope{a, c}, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsPoint(1e-6) {
		t.Errorf("touching intervals should intersect in a point: %v", got)
	}
	// Disjoint.
	d := mustNew(t, pt(10), pt(11))
	if _, err := Intersect([]*Polytope{a, d}, eps); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestIntersect3DCubes(t *testing.T) {
	cube := func(o float64) *Polytope {
		var pts []geom.Point
		for _, x := range []float64{o, o + 1} {
			for _, y := range []float64{o, o + 1} {
				for _, z := range []float64{o, o + 1} {
					pts = append(pts, pt(x, y, z))
				}
			}
		}
		p, err := New(pts, eps)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := cube(0), cube(0.5)
	got, err := Intersect([]*Polytope{a, b}, eps)
	if err != nil {
		t.Fatal(err)
	}
	vol, err := got.Volume(eps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vol-0.125) > 1e-4 {
		t.Errorf("cube intersection volume = %v, want 0.125", vol)
	}
	// Disjoint cubes.
	if _, err := Intersect([]*Polytope{cube(0), cube(5)}, eps); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestIntersect3DTetrahedra(t *testing.T) {
	a := mustNew(t, pt(0, 0, 0), pt(2, 0, 0), pt(0, 2, 0), pt(0, 0, 2))
	b := a.Translate(pt(0.3, 0.3, 0.3))
	got, err := Intersect([]*Polytope{a, b}, eps)
	if err != nil {
		t.Fatal(err)
	}
	// The intersection must contain points interior to both.
	in, err := got.Contains(pt(0.4, 0.4, 0.4), 1e-6)
	if err != nil || !in {
		t.Errorf("intersection misses common interior point: %v %v", in, err)
	}
	// And must be inside both operands.
	for _, op := range []*Polytope{a, b} {
		ok, err := op.ContainsPolytope(got, 1e-6)
		if err != nil || !ok {
			t.Errorf("intersection not contained in operand: %v %v", ok, err)
		}
	}
}

func TestIntersectDegenerateTouching3D(t *testing.T) {
	// Two unit cubes sharing exactly one face: intersection is a 2-D square
	// embedded in 3-D (degenerate path).
	mk := func(x0 float64) *Polytope {
		var pts []geom.Point
		for _, x := range []float64{x0, x0 + 1} {
			for _, y := range []float64{0, 1} {
				for _, z := range []float64{0, 1} {
					pts = append(pts, pt(x, y, z))
				}
			}
		}
		p, err := New(pts, eps)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	got, err := Intersect([]*Polytope{mk(0), mk(1)}, eps)
	if err != nil {
		t.Fatalf("touching cubes should intersect: %v", err)
	}
	// All vertices must lie on the shared face x = 1.
	for _, v := range got.Vertices() {
		if math.Abs(v[0]-1) > 1e-5 {
			t.Errorf("vertex %v off the shared face", v)
		}
	}
}

func TestIntersectMixedDims(t *testing.T) {
	a := unitSquare(t)
	b := mustNew(t, pt(0), pt(1))
	if _, err := Intersect([]*Polytope{a, b}, eps); err == nil {
		t.Error("mixed dimensions should error")
	}
	if _, err := Intersect(nil, eps); err == nil {
		t.Error("empty operand list should error")
	}
}

package polytope

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chc/internal/geom"
)

// randomPoly3D builds the hull of k random points in a box.
func randomPoly3D(rng *rand.Rand, k int, lo, hi float64) (*Polytope, error) {
	pts := make([]geom.Point, k)
	for i := range pts {
		pts[i] = geom.NewPoint(
			lo+rng.Float64()*(hi-lo),
			lo+rng.Float64()*(hi-lo),
			lo+rng.Float64()*(hi-lo),
		)
	}
	return New(pts, eps)
}

// Property: the 3-D intersection agrees with a membership oracle — a point
// is in Intersect(a, b) iff it is in a AND in b (up to a boundary band).
func TestIntersect3DAgainstMembershipOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, err := randomPoly3D(rng, 6+rng.Intn(5), 0, 4)
		if err != nil {
			return false
		}
		b, err := randomPoly3D(rng, 6+rng.Intn(5), 1, 5)
		if err != nil {
			return false
		}
		inter, err := Intersect([]*Polytope{a, b}, eps)
		if errors.Is(err, ErrEmpty) {
			// Soundness of emptiness: no sampled point of a may be strictly
			// interior to b (by a clear margin on every facet) — such a
			// point would witness a non-empty intersection.
			for trial := 0; trial < 40; trial++ {
				q, err := a.Sample(rng)
				if err != nil {
					return false
				}
				if strictlyInside(b, q, 1e-6) {
					return false
				}
			}
			return true
		}
		if err != nil {
			return false
		}
		const band = 1e-4
		for trial := 0; trial < 25; trial++ {
			// Points sampled from the reported intersection must be in both.
			q, err := inter.Sample(rng)
			if err != nil {
				return false
			}
			da, err1 := a.Distance(q, eps)
			db, err2 := b.Distance(q, eps)
			if err1 != nil || err2 != nil || da > band || db > band {
				return false
			}
			// Random points in both operands must be in the intersection.
			p, err := a.Sample(rng)
			if err != nil {
				return false
			}
			inB, err := b.Contains(p, eps)
			if err != nil {
				return false
			}
			if inB {
				di, err := inter.Distance(p, eps)
				if err != nil || di > band {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// strictlyInside reports whether q satisfies every facet of p with margin.
func strictlyInside(p *Polytope, q geom.Point, margin float64) bool {
	facets, err := p.Facets(eps)
	if err != nil {
		return false
	}
	for _, f := range facets {
		if f.Eval(q) > -margin {
			return false
		}
	}
	return true
}

func TestMinkowski3DCubes(t *testing.T) {
	cube := func(o, s float64) *Polytope {
		var pts []geom.Point
		for _, x := range []float64{o, o + s} {
			for _, y := range []float64{o, o + s} {
				for _, z := range []float64{o, o + s} {
					pts = append(pts, geom.NewPoint(x, y, z))
				}
			}
		}
		p, err := New(pts, eps)
		if err != nil {
			panic(err)
		}
		return p
	}
	a, b := cube(0, 1), cube(0, 2)
	sum, err := Average([]*Polytope{a, b}, eps)
	if err != nil {
		t.Fatal(err)
	}
	// Average of cubes with sides 1 and 2 is a cube with side 1.5.
	vol, err := sum.Volume(eps)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Pow(1.5, 3); math.Abs(vol-want) > 1e-6 {
		t.Errorf("average volume = %v, want %v", vol, want)
	}
	if sum.NumVertices() != 8 {
		t.Errorf("average of cubes has %d vertices, want 8", sum.NumVertices())
	}
}

func TestMinkowski3DCubePlusPoint(t *testing.T) {
	var pts []geom.Point
	for _, x := range []float64{0, 1} {
		for _, y := range []float64{0, 1} {
			for _, z := range []float64{0, 1} {
				pts = append(pts, geom.NewPoint(x, y, z))
			}
		}
	}
	cube, err := New(pts, eps)
	if err != nil {
		t.Fatal(err)
	}
	shift := FromPoint(geom.NewPoint(5, 5, 5))
	got, err := LinearCombination([]*Polytope{cube, shift}, []float64{0.5, 0.5}, eps)
	if err != nil {
		t.Fatal(err)
	}
	// 0.5*cube + 0.5*{(5,5,5)} = cube of side 0.5 at (2.5, 2.5, 2.5).
	lo, hi, err := got.BoundingBox()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		if math.Abs(lo[j]-2.5) > 1e-9 || math.Abs(hi[j]-3) > 1e-9 {
			t.Errorf("axis %d: [%v, %v], want [2.5, 3]", j, lo[j], hi[j])
		}
	}
}

// Property: volume of the average of a polytope with itself is unchanged
// (L([h,h];[1/2,1/2]) = h for convex h).
func TestSelfAverageIdentity3D(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, err := randomPoly3D(rng, 5+rng.Intn(6), 0, 5)
		if err != nil {
			return false
		}
		avg, err := Average([]*Polytope{p, p}, eps)
		if err != nil {
			return false
		}
		same, err := Equal(avg, p, 1e-6)
		return err == nil && same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

package polytope

import (
	"errors"
	"fmt"
	"math"

	"chc/internal/geom"
	"chc/internal/geom/par"
	"chc/internal/hull"
)

// Hausdorff returns the Hausdorff distance d_H(a, b) of equation (1):
//
//	max{ max_{p in a} min_{q in b} d_E(p, q),  max_{q in b} min_{p in a} d_E(p, q) }.
//
// Because the distance-to-a-convex-set function is convex, each directed
// maximum is attained at a vertex, so the computation reduces to projecting
// each vertex of one polytope onto the other.
func Hausdorff(a, b *Polytope, eps float64) (float64, error) {
	if len(a.verts) == 0 || len(b.verts) == 0 {
		return 0, ErrEmpty
	}
	d1, err := DirectedHausdorff(a, b, eps)
	if err != nil {
		return 0, err
	}
	d2, err := DirectedHausdorff(b, a, eps)
	if err != nil {
		return 0, err
	}
	return maxFinite(d1, d2), nil
}

// hausdorffParMinVerts gates the parallel fan-out: below this vertex count
// a single Wolfe projection is so cheap that dispatching helpers costs more
// than it saves, on any machine.
const hausdorffParMinVerts = 16

// DirectedHausdorff returns max_{p in a} min_{q in b} d_E(p, q). For larger
// vertex sets the per-vertex projections are independent and run on the
// shared worker pool; the maximum is reduced sequentially in vertex order,
// so the result is identical to the sequential loop.
func DirectedHausdorff(a, b *Polytope, eps float64) (float64, error) {
	if len(a.verts) == 0 || len(b.verts) == 0 {
		return 0, ErrEmpty
	}
	if len(a.verts) < hausdorffParMinVerts {
		var worst float64
		for _, v := range a.verts {
			d, err := b.Distance(v, eps)
			if err != nil {
				return 0, err
			}
			if d > worst {
				worst = d
			}
		}
		return worst, nil
	}
	dists := make([]float64, len(a.verts))
	if err := par.ForEach(len(a.verts), func(i int) error {
		d, err := b.Distance(a.verts[i], eps)
		if err != nil {
			return err
		}
		dists[i] = d
		return nil
	}); err != nil {
		return 0, err
	}
	var worst float64
	for _, d := range dists {
		if d > worst {
			worst = d
		}
	}
	return worst, nil
}

// Distance returns the Euclidean distance from q to the polytope (zero when
// q is inside).
func (p *Polytope) Distance(q geom.Point, eps float64) (float64, error) {
	switch {
	case len(p.verts) == 0:
		return 0, ErrEmpty
	case len(p.verts) == 1:
		return geom.Dist(q, p.verts[0]), nil
	case p.Dim() == 1:
		lo, hi, err := p.BoundingBox()
		if err != nil {
			return 0, err
		}
		switch {
		case q[0] < lo[0]:
			return lo[0] - q[0], nil
		case q[0] > hi[0]:
			return q[0] - hi[0], nil
		default:
			return 0, nil
		}
	case p.Dim() == 2:
		return hull.DistPointPolygon(q, p.verts, eps), nil
	default:
		_, d, err := minNormPoint(p.verts, q, eps)
		return d, err
	}
}

// Nearest returns the point of the polytope closest to q.
func (p *Polytope) Nearest(q geom.Point, eps float64) (geom.Point, error) {
	if len(p.verts) == 0 {
		return nil, ErrEmpty
	}
	pt, _, err := minNormPoint(p.verts, q, eps)
	return pt, err
}

const maxWolfeIters = 10000

// minNormPoint computes the projection of q onto conv(verts) using Wolfe's
// minimum-norm-point algorithm (Wolfe 1976), shifted so that q is the
// origin. It returns the nearest point and its distance to q.
func minNormPoint(verts []geom.Point, q geom.Point, eps float64) (geom.Point, float64, error) {
	// Shift so q is at the origin.
	pts := make([]geom.Point, len(verts))
	for i, v := range verts {
		pts[i] = v.Sub(q)
	}
	// Start from the closest single vertex.
	best := 0
	for i := 1; i < len(pts); i++ {
		if pts[i].Norm() < pts[best].Norm() {
			best = i
		}
	}
	corral := []int{best}
	lambda := []float64{1}
	x := pts[best].Clone()

	scale := 1.0
	for _, p := range pts {
		if m := p.NormInf(); m > scale {
			scale = m
		}
	}
	tol := eps * scale * 10

	for iter := 0; iter < maxWolfeIters; iter++ {
		// Optimality: x is the min-norm point iff x·p >= x·x - tol for all p.
		xx := x.Dot(x)
		enter := -1
		bestGap := -tol
		for i, p := range pts {
			if gap := x.Dot(p) - xx; gap < bestGap {
				bestGap, enter = gap, i
			}
		}
		if enter < 0 {
			return x.Add(q), x.Norm(), nil
		}
		if containsIndex(corral, enter) {
			// Numerical stall: the violating point is already in the
			// corral; accept the current solution.
			return x.Add(q), x.Norm(), nil
		}
		corral = append(corral, enter)
		lambda = append(lambda, 0)

		// Minor cycle: move to the affine minimiser, shrinking the corral
		// until the minimiser is a convex combination.
		for {
			y, mu, err := affineMinimizer(pts, corral, eps)
			if err != nil {
				// Affinely dependent corral: drop the most redundant point.
				corral = corral[:len(corral)-1]
				lambda = lambda[:len(lambda)-1]
				return x.Add(q), x.Norm(), nil
			}
			if allNonNegative(mu, -1e-12) {
				x, lambda = y, mu
				break
			}
			// Line search from lambda toward mu stopping at the first
			// coordinate to hit zero.
			theta := 1.0
			for i := range mu {
				if mu[i] < 0 {
					if t := lambda[i] / (lambda[i] - mu[i]); t < theta {
						theta = t
					}
				}
			}
			for i := range lambda {
				lambda[i] = (1-theta)*lambda[i] + theta*mu[i]
			}
			// Remove points whose weight hit (numerical) zero.
			newCorral := corral[:0]
			newLambda := lambda[:0]
			for i, w := range lambda {
				if w > 1e-12 {
					newCorral = append(newCorral, corral[i])
					newLambda = append(newLambda, w)
				}
			}
			corral, lambda = newCorral, newLambda
			if len(corral) == 0 {
				return nil, 0, errors.New("polytope: wolfe corral emptied (numerical failure)")
			}
			x, _ = combinationByIndex(pts, corral, lambda)
		}
	}
	return nil, 0, fmt.Errorf("polytope: wolfe did not converge in %d iterations", maxWolfeIters)
}

// affineMinimizer returns the minimum-norm point y of the affine hull of
// pts[corral] together with its barycentric coordinates, by solving the KKT
// system  [S S^T + (regularisation), 1; 1^T, 0] [mu; nu] = [0; 1].
func affineMinimizer(pts []geom.Point, corral []int, eps float64) (geom.Point, []float64, error) {
	k := len(corral)
	m := geom.NewMatrix(k+1, k+1)
	rhs := make([]float64, k+1)
	for i := 0; i < k; i++ {
		pi := pts[corral[i]]
		for j := 0; j < k; j++ {
			m.Set(i, j, pi.Dot(pts[corral[j]]))
		}
		m.Set(i, k, 1)
		m.Set(k, i, 1)
	}
	rhs[k] = 1
	sol, err := geom.Solve(m, rhs, eps*eps)
	if err != nil {
		return nil, nil, err
	}
	mu := sol[:k]
	y, err := combinationByIndex(pts, corral, mu)
	if err != nil {
		return nil, nil, err
	}
	return y, append([]float64(nil), mu...), nil
}

func combinationByIndex(pts []geom.Point, idx []int, w []float64) (geom.Point, error) {
	sel := make([]geom.Point, len(idx))
	for i, id := range idx {
		sel[i] = pts[id]
	}
	return geom.Combination(sel, w)
}

func containsIndex(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func allNonNegative(xs []float64, tol float64) bool {
	for _, v := range xs {
		if v < tol {
			return false
		}
	}
	return true
}

// MaxPairwiseHausdorff returns the largest Hausdorff distance among all
// pairs in the slice — the quantity bounded by ε-agreement. Pairs are
// evaluated on the shared worker pool and reduced sequentially in pair
// order.
func MaxPairwiseHausdorff(polys []*Polytope, eps float64) (float64, error) {
	type pair struct{ i, j int }
	var pairs []pair
	for i := range polys {
		for j := i + 1; j < len(polys); j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	dists := make([]float64, len(pairs))
	if err := par.ForEach(len(pairs), func(k int) error {
		d, err := Hausdorff(polys[pairs[k].i], polys[pairs[k].j], eps)
		if err != nil {
			return err
		}
		if math.IsNaN(d) {
			return errors.New("polytope: NaN hausdorff distance")
		}
		dists[k] = d
		return nil
	}); err != nil {
		return 0, err
	}
	var worst float64
	for _, d := range dists {
		if d > worst {
			worst = d
		}
	}
	return worst, nil
}

package polytope

import (
	"fmt"
	"math/rand"
	"sort"

	"chc/internal/geom"
)

// LimitVertices returns an inner approximation of p with at most maxVerts
// vertices, together with the Hausdorff distance between p and the
// approximation (the approximation error). Vertices are selected greedily:
// start from the two farthest-apart vertices, then repeatedly add the
// vertex farthest from the current approximation (a farthest-point /
// Gonzalez selection), which minimises the worst-case error among subset
// selections of this size up to a factor of two.
//
// The result is an inner approximation (its vertex set is a subset of p's),
// so containment-based properties that must hold FOR the polytope — e.g.
// validity, "output inside the correct-input hull" — are preserved, while
// properties that must hold OF the polytope — e.g. "I_Z inside the output"
// — may degrade by up to the returned error. Experiment E12 quantifies the
// trade-off.
func LimitVertices(p *Polytope, maxVerts int, eps float64) (*Polytope, float64, error) {
	if maxVerts < 2 {
		return nil, 0, fmt.Errorf("polytope: vertex budget %d too small (need >= 2)", maxVerts)
	}
	if len(p.verts) == 0 {
		return nil, 0, ErrEmpty
	}
	if len(p.verts) <= maxVerts {
		return fromHullVerts(p.Vertices()), 0, nil
	}
	// Seed with the diameter pair.
	bi, bj := 0, 0
	var best float64
	for i := range p.verts {
		for j := i + 1; j < len(p.verts); j++ {
			if d := geom.Dist(p.verts[i], p.verts[j]); d > best {
				best, bi, bj = d, i, j
			}
		}
	}
	chosen := map[int]bool{bi: true, bj: true}
	sel := []geom.Point{p.verts[bi], p.verts[bj]}
	cur := fromHullVerts(append([]geom.Point(nil), sel...))
	for len(chosen) < maxVerts {
		worstIdx, worstDist := -1, 0.0
		for i, v := range p.verts {
			if chosen[i] {
				continue
			}
			d, err := cur.Distance(v, eps)
			if err != nil {
				return nil, 0, err
			}
			if d > worstDist {
				worstDist, worstIdx = d, i
			}
		}
		if worstIdx < 0 || worstDist <= eps {
			break // remaining vertices already inside: exact representation
		}
		chosen[worstIdx] = true
		sel = append(sel, p.verts[worstIdx])
		next, err := New(sel, eps)
		if err != nil {
			return nil, 0, err
		}
		cur = next
		// New may prune earlier selections that became interior; keep sel
		// canonical so the budget counts actual hull vertices.
		sel = cur.Vertices()
	}
	errDist, err := DirectedHausdorff(p, cur, eps)
	if err != nil {
		return nil, 0, err
	}
	return cur, errDist, nil
}

// SampleBoundaryDirections returns k approximately spread unit directions
// (deterministic for a given seed), used by support-based approximations
// and by tests probing polytope boundaries.
func SampleBoundaryDirections(d, k int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	dirs := make([]geom.Point, 0, k)
	for len(dirs) < k {
		v := make(geom.Point, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		if n := v.Norm(); n > 1e-12 {
			dirs = append(dirs, v.Scale(1/n))
		}
	}
	return dirs
}

// SupportProfile evaluates the support function h_p(u) = max_{x in p} u·x
// over the given directions, returning the values in direction order. Two
// convex polytopes are equal iff their support functions agree on all
// directions; tests use sampled profiles as a cheap similarity oracle.
func (p *Polytope) SupportProfile(dirs []geom.Point) ([]float64, error) {
	out := make([]float64, len(dirs))
	for i, u := range dirs {
		_, v, err := p.Support(u)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// VertexCountsSorted is a small helper for experiments: the sorted vertex
// counts of a set of polytopes.
func VertexCountsSorted(polys []*Polytope) []int {
	out := make([]int, len(polys))
	for i, p := range polys {
		out[i] = p.NumVertices()
	}
	sort.Ints(out)
	return out
}

package polytope

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chc/internal/geom"
)

func regularPolygon(k int, radius float64) []geom.Point {
	pts := make([]geom.Point, k)
	for i := 0; i < k; i++ {
		a := 2 * math.Pi * float64(i) / float64(k)
		pts[i] = pt(radius*math.Cos(a), radius*math.Sin(a))
	}
	return pts
}

func TestLimitVerticesNoOpWhenSmall(t *testing.T) {
	p := mustNew(t, regularPolygon(4, 1)...)
	q, errDist, err := LimitVertices(p, 8, eps)
	if err != nil {
		t.Fatal(err)
	}
	if errDist != 0 || q.NumVertices() != 4 {
		t.Errorf("no-op budget: err=%v verts=%d", errDist, q.NumVertices())
	}
}

func TestLimitVerticesReduces(t *testing.T) {
	p := mustNew(t, regularPolygon(24, 1)...)
	q, errDist, err := LimitVertices(p, 6, eps)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVertices() > 6 {
		t.Errorf("budget exceeded: %d vertices", q.NumVertices())
	}
	// Inner approximation: q ⊆ p.
	in, err := p.ContainsPolytope(q, 1e-9)
	if err != nil || !in {
		t.Errorf("approximation not inside original: %v %v", in, err)
	}
	// The optimal 6-subset of a unit 24-gon has error 1 - cos(pi/6) ~ 0.134;
	// greedy farthest-point selection is a 2-approximation, so allow up to
	// ~2x that (the worst observed gap is a 90° arc: 1 - cos(pi/4) ~ 0.293).
	if errDist <= 0 || errDist > 0.35 {
		t.Errorf("error = %v out of expected range", errDist)
	}
	// Reported error matches an independent directed-Hausdorff computation.
	check, err := DirectedHausdorff(p, q, eps)
	if err != nil || math.Abs(check-errDist) > 1e-9 {
		t.Errorf("reported error %v vs recomputed %v", errDist, check)
	}
}

func TestLimitVerticesValidation(t *testing.T) {
	p := mustNew(t, regularPolygon(8, 1)...)
	if _, _, err := LimitVertices(p, 1, eps); err == nil {
		t.Error("budget < 2 should error")
	}
}

func TestSupportProfile(t *testing.T) {
	sq := unitSquare(t)
	dirs := []geom.Point{pt(1, 0), pt(0, 1), pt(-1, 0), pt(1, 1)}
	prof, err := sq.SupportProfile(dirs)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 0, 2}
	for i := range want {
		if math.Abs(prof[i]-want[i]) > 1e-9 {
			t.Errorf("profile[%d] = %v, want %v", i, prof[i], want[i])
		}
	}
}

func TestSampleBoundaryDirections(t *testing.T) {
	dirs := SampleBoundaryDirections(3, 16, 1)
	if len(dirs) != 16 {
		t.Fatalf("got %d directions", len(dirs))
	}
	for _, u := range dirs {
		if math.Abs(u.Norm()-1) > 1e-9 {
			t.Errorf("direction %v is not unit", u)
		}
	}
	again := SampleBoundaryDirections(3, 16, 1)
	for i := range dirs {
		if !geom.Equal(dirs[i], again[i], 0) {
			t.Error("directions are not deterministic for a fixed seed")
		}
	}
}

func TestVertexCountsSorted(t *testing.T) {
	a := mustNew(t, regularPolygon(5, 1)...)
	b := FromPoint(pt(0, 0))
	counts := VertexCountsSorted([]*Polytope{a, b})
	if len(counts) != 2 || counts[0] != 1 || counts[1] != 5 {
		t.Errorf("counts = %v", counts)
	}
}

// Property: support function of a Minkowski combination is the weighted sum
// of support functions — h_{L(h1..hk;c)}(u) = sum c_i h_{hi}(u). This is an
// exact identity of convex geometry and pins down LinearCombination.
func TestSupportOfCombinationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Polytope {
			n := 1 + rng.Intn(7)
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = pt(rng.Float64()*8-4, rng.Float64()*8-4)
			}
			p, err := New(pts, eps)
			if err != nil {
				return nil
			}
			return p
		}
		k := 2 + rng.Intn(3)
		polys := make([]*Polytope, k)
		w := make([]float64, k)
		var sum float64
		for i := range polys {
			if polys[i] = mk(); polys[i] == nil {
				return false
			}
			w[i] = rng.Float64() + 0.05
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
		l, err := LinearCombination(polys, w, eps)
		if err != nil {
			return false
		}
		dirs := SampleBoundaryDirections(2, 12, seed)
		lProf, err := l.SupportProfile(dirs)
		if err != nil {
			return false
		}
		for di, u := range dirs {
			var want float64
			for i, p := range polys {
				_, v, err := p.Support(u)
				if err != nil {
					return false
				}
				want += w[i] * v
			}
			if math.Abs(lProf[di]-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: intersection is contained in every operand, and intersecting
// with itself is the identity.
func TestIntersectionProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(cx, cy float64) *Polytope {
			n := 3 + rng.Intn(6)
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = pt(cx+rng.Float64()*4, cy+rng.Float64()*4)
			}
			p, err := New(pts, eps)
			if err != nil {
				return nil
			}
			return p
		}
		a := mk(0, 0)
		b := mk(1, 1) // overlapping region likely
		if a == nil || b == nil {
			return false
		}
		selfInter, err := Intersect([]*Polytope{a, a}, eps)
		if err != nil {
			return false
		}
		same, err := Equal(selfInter, a, 1e-6)
		if err != nil || !same {
			return false
		}
		inter, err := Intersect([]*Polytope{a, b}, eps)
		if err != nil {
			return true // disjoint is fine
		}
		inA, err1 := a.ContainsPolytope(inter, 1e-6)
		inB, err2 := b.ContainsPolytope(inter, 1e-6)
		return err1 == nil && err2 == nil && inA && inB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: LimitVertices error shrinks (weakly) as the budget grows.
func TestLimitVerticesMonotone(t *testing.T) {
	p := mustNew(t, regularPolygon(30, 2)...)
	prev := math.Inf(1)
	for _, budget := range []int{3, 5, 8, 12, 20, 30} {
		_, errDist, err := LimitVertices(p, budget, eps)
		if err != nil {
			t.Fatal(err)
		}
		if errDist > prev+1e-9 {
			t.Errorf("error grew from %v to %v at budget %d", prev, errDist, budget)
		}
		prev = errDist
	}
	if prev > 1e-9 {
		t.Errorf("full budget should be exact, error = %v", prev)
	}
}

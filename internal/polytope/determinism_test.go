package polytope

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"chc/internal/geom"
	"chc/internal/geom/par"
)

// runSequential executes fn with the worker pool forced onto the calling
// goroutine and all memoization disabled — the reference execution every
// parallel/cached run must match bitwise.
func runSequential(t *testing.T, fn func()) {
	t.Helper()
	prevWorkers := par.SetMaxWorkers(1)
	prevCache := SetHullCaching(false)
	defer func() {
		par.SetMaxWorkers(prevWorkers)
		SetHullCaching(prevCache)
	}()
	fn()
}

func vertsBitsEqual(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

func randCloud(n, d int, seed int64, shift float64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := geom.Zero(d)
		for j := range p {
			p[j] = rng.Float64()*4 + shift
		}
		pts[i] = p
	}
	return pts
}

// TestParallelMatchesSequentialBitwise is the determinism grid of the
// parallel engine: for seeds x dimensions, Intersect, Average and the
// pairwise Hausdorff maximum must be bitwise-identical between the
// sequential reference (one worker, caches off) and the parallel, memoizing
// execution. Run under -race this also exercises the pool's synchronization.
func TestParallelMatchesSequentialBitwise(t *testing.T) {
	type result struct {
		interVerts []geom.Point
		avgVerts   []geom.Point
		maxH       float64
	}
	compute := func(seed int64, d int) result {
		// Overlapping clouds so the intersection is non-empty.
		polys := make([]*Polytope, 3)
		for k := range polys {
			p, err := New(randCloud(8+2*k, d, seed+int64(k)*17, float64(k)*0.3), geom.DefaultEps)
			if err != nil {
				t.Fatalf("seed %d d %d: New: %v", seed, d, err)
			}
			polys[k] = p
		}
		var res result
		inter, err := Intersect(polys, geom.DefaultEps)
		if err != nil && !errors.Is(err, ErrEmpty) {
			t.Fatalf("seed %d d %d: Intersect: %v", seed, d, err)
		}
		if err == nil {
			res.interVerts = inter.Vertices()
		}
		avg, err := Average(polys, geom.DefaultEps)
		if err != nil {
			t.Fatalf("seed %d d %d: Average: %v", seed, d, err)
		}
		res.avgVerts = avg.Vertices()
		h, err := MaxPairwiseHausdorff(polys, geom.DefaultEps)
		if err != nil {
			t.Fatalf("seed %d d %d: Hausdorff: %v", seed, d, err)
		}
		res.maxH = h
		return res
	}

	for _, d := range []int{2, 3, 4} {
		for seed := int64(1); seed <= 4; seed++ {
			if d == 4 && seed > 2 {
				break // 4-D facet enumeration is slow; two seeds suffice
			}
			var ref result
			runSequential(t, func() { ref = compute(seed, d) })
			got := compute(seed, d)
			if !vertsBitsEqual(ref.interVerts, got.interVerts) {
				t.Errorf("seed %d d %d: Intersect parallel != sequential", seed, d)
			}
			if !vertsBitsEqual(ref.avgVerts, got.avgVerts) {
				t.Errorf("seed %d d %d: Average parallel != sequential", seed, d)
			}
			if math.Float64bits(ref.maxH) != math.Float64bits(got.maxH) {
				t.Errorf("seed %d d %d: Hausdorff %v != %v", seed, d, ref.maxH, got.maxH)
			}
		}
	}
}

// TestIntersectSeededIsolation: the support-sampling directions derive from
// the caller-supplied seed, not package-global rand, so (a) the same seed
// always gives the same result and (b) concurrent intersections cannot
// perturb each other's sampling sequences.
func TestIntersectSeededIsolation(t *testing.T) {
	mk := func(seed int64, shift float64) *Polytope {
		p, err := New(randCloud(10, 3, seed, shift), geom.DefaultEps)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	polys := []*Polytope{mk(23, 0), mk(29, 0.5), mk(31, -0.5)}

	ref, err := IntersectSeeded(polys, geom.DefaultEps, DefaultDirSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Default entry point uses DefaultDirSeed.
	same, err := Intersect(polys, geom.DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	if !vertsBitsEqual(ref.Vertices(), same.Vertices()) {
		t.Error("Intersect != IntersectSeeded(DefaultDirSeed)")
	}
	// Perturbing the package-global source must not change anything.
	for i := 0; i < 1000; i++ {
		_ = rand.Int63()
	}
	again, err := IntersectSeeded(polys, geom.DefaultEps, DefaultDirSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !vertsBitsEqual(ref.Vertices(), again.Vertices()) {
		t.Error("IntersectSeeded result depends on global rand state")
	}
}

// TestHullCacheHitBitwiseIdentical: a cache hit must hand back exactly the
// bits a fresh computation produces.
func TestHullCacheHitBitwiseIdentical(t *testing.T) {
	prev := SetHullCaching(true)
	defer SetHullCaching(prev)

	pts := randCloud(20, 3, 77, 0)
	var fresh []geom.Point
	runSequential(t, func() {
		p, err := New(pts, geom.DefaultEps)
		if err != nil {
			t.Fatal(err)
		}
		fresh = p.Vertices()
	})

	SetHullCaching(false) // clear
	SetHullCaching(true)
	h0, m0 := HullCacheStats()
	p1, err := New(pts, geom.DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(pts, geom.DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	h1, m1 := HullCacheStats()
	if h1-h0 < 1 || m1-m0 < 1 {
		t.Fatalf("expected >=1 hit and >=1 miss, got hits+%d misses+%d", h1-h0, m1-m0)
	}
	if p1 != p2 {
		t.Error("cache hit should return the shared polytope pointer")
	}
	if !vertsBitsEqual(fresh, p1.Vertices()) {
		t.Error("cached hull differs from fresh computation")
	}
}

// TestHullCacheDoesNotAliasInput: mutating the input points after New must
// not change a cached polytope.
func TestHullCacheDoesNotAliasInput(t *testing.T) {
	prev := SetHullCaching(true)
	defer SetHullCaching(prev)
	pts := randCloud(12, 3, 101, 0)
	p, err := New(pts, geom.DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	before := p.Vertices()
	for i := range pts {
		for j := range pts[i] {
			pts[i][j] = -1000
		}
	}
	if !vertsBitsEqual(before, p.Vertices()) {
		t.Fatal("cached polytope aliases caller memory")
	}
}

// TestCombineCacheHit: averaging the same operands twice must hit the
// combine cache and return identical bits.
func TestCombineCacheHit(t *testing.T) {
	prev := SetHullCaching(true)
	defer SetHullCaching(prev)
	SetHullCaching(false) // clear both caches
	SetHullCaching(true)

	polys := make([]*Polytope, 3)
	for k := range polys {
		p, err := New(randCloud(8, 3, int64(300+k), 0), geom.DefaultEps)
		if err != nil {
			t.Fatal(err)
		}
		polys[k] = p
	}
	a1, err := Average(polys, geom.DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	h0, _ := CombineCacheStats()
	a2, err := Average(polys, geom.DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := CombineCacheStats()
	if h1 <= h0 {
		t.Fatalf("second Average did not hit the combine cache (hits %d -> %d)", h0, h1)
	}
	if !vertsBitsEqual(a1.Vertices(), a2.Vertices()) {
		t.Fatal("combine cache hit differs from first computation")
	}
}

// TestChebyshevCenterMemoized: repeated queries return identical bits and a
// fresh copy each time (no aliasing of the cached centre).
func TestChebyshevCenterMemoized(t *testing.T) {
	p, err := New(randCloud(12, 3, 55, 0), geom.DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	c1, r1, err := p.ChebyshevCenter(geom.DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	c2, r2, err := p.ChebyshevCenter(geom.DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(r1) != math.Float64bits(r2) || !vertsBitsEqual([]geom.Point{c1}, []geom.Point{c2}) {
		t.Fatal("memoized Chebyshev centre differs across calls")
	}
	c1[0] = 1e9
	c3, _, err := p.ChebyshevCenter(geom.DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	if c3[0] == 1e9 {
		t.Fatal("ChebyshevCenter returned an aliased centre")
	}
}

// TestSupportCacheBitwise: cached support queries equal fresh scans.
func TestSupportCacheBitwise(t *testing.T) {
	// 20 vertices >= supportCacheMinVerts, so the cache engages.
	pts := randCloud(40, 3, 66, 0)
	p, err := New(pts, geom.DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	dirs := make([]geom.Point, 32)
	for i := range dirs {
		v := geom.Zero(3)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		dirs[i] = v
	}
	type ans struct {
		v   geom.Point
		val float64
	}
	first := make([]ans, len(dirs))
	for i, d := range dirs {
		v, val, err := p.Support(d)
		if err != nil {
			t.Fatal(err)
		}
		first[i] = ans{v, val}
	}
	for i, d := range dirs { // second pass: cache hits
		v, val, err := p.Support(d)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(val) != math.Float64bits(first[i].val) ||
			!vertsBitsEqual([]geom.Point{v}, []geom.Point{first[i].v}) {
			t.Fatalf("dir %d: cached support differs from first scan", i)
		}
	}
}

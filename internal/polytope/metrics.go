package polytope

import "chc/internal/telemetry"

// The geometry caches already keep their own atomic tallies (HullCacheStats,
// CombineCacheStats — the compatibility accessors); the registry mirrors them
// with pull-style collectors so the hot cache paths gain no new writes at
// all: the counters are read only when a snapshot or /metrics scrape asks.
func init() {
	reg := telemetry.Default()
	reg.CounterFunc("chc_hull_cache_hits_total",
		"Convex-hull memoization hits across the process.",
		func() float64 { h, _ := HullCacheStats(); return float64(h) })
	reg.CounterFunc("chc_hull_cache_misses_total",
		"Convex-hull memoization misses across the process.",
		func() float64 { _, m := HullCacheStats(); return float64(m) })
	reg.CounterFunc("chc_combine_cache_hits_total",
		"Minkowski-combination memoization hits across the process.",
		func() float64 { h, _ := CombineCacheStats(); return float64(h) })
	reg.CounterFunc("chc_combine_cache_misses_total",
		"Minkowski-combination memoization misses across the process.",
		func() float64 { _, m := CombineCacheStats(); return float64(m) })
}

package polytope

import (
	"errors"
	"fmt"
	"math"

	"chc/internal/geom"
	"chc/internal/hull"
)

// weightSumTol is how far the weights of a linear combination may deviate
// from summing to one.
const weightSumTol = 1e-9

// LinearCombination implements the function L of Definition 2: given
// non-empty convex polytopes h_1..h_k and weights c_1..c_k with c_i >= 0 and
// sum c_i = 1, it returns the polytope
//
//	{ sum_i c_i p_i  :  p_i in h_i },
//
// which equals the Minkowski sum of the scaled polytopes c_i * h_i. The
// result is convex and non-empty whenever the operands are (the property
// Lemma 5 relies on).
func LinearCombination(polys []*Polytope, weights []float64, eps float64) (*Polytope, error) {
	if len(polys) == 0 {
		return nil, errors.New("polytope: linear combination of zero polytopes")
	}
	if len(polys) != len(weights) {
		return nil, fmt.Errorf("polytope: %d polytopes but %d weights", len(polys), len(weights))
	}
	d := polys[0].Dim()
	var sum float64
	for i, w := range weights {
		if w < -weightSumTol || w > 1+weightSumTol {
			return nil, fmt.Errorf("polytope: weight %d = %v out of [0,1]", i, w)
		}
		sum += w
		if len(polys[i].verts) == 0 {
			return nil, ErrEmpty
		}
		if polys[i].Dim() != d {
			return nil, fmt.Errorf("polytope: operand %d has dimension %d, want %d", i, polys[i].Dim(), d)
		}
	}
	if math.Abs(sum-1) > weightSumTol*float64(len(weights)+1) {
		return nil, fmt.Errorf("polytope: weights sum to %v, want 1", sum)
	}

	// Zero-weight operands contribute only the origin; drop them.
	kept := make([]*Polytope, 0, len(polys))
	ws := make([]float64, 0, len(weights))
	for i, w := range weights {
		if w > 0 {
			kept = append(kept, polys[i])
			ws = append(ws, w)
		}
	}
	if len(kept) == 0 {
		return nil, errors.New("polytope: all weights are zero")
	}

	// Every process in a consensus round combines the same broadcast states
	// with the same weights, so the result is memoized process-wide (see
	// cache.go; hits are bitwise-identical to recomputation).
	key := combineCacheKey(kept, ws, eps)
	if key != "" {
		if p := combineCacheGet(key); p != nil {
			return p, nil
		}
	}
	result, err := func() (*Polytope, error) {
		switch d {
		case 1:
			return combine1D(kept, ws)
		case 2:
			return combine2D(kept, ws, eps)
		default:
			return combineND(kept, ws, eps)
		}
	}()
	if err != nil || key == "" {
		return result, err
	}
	// Clone before publishing: the kernels may return views of operand or
	// intermediate memory, and a cached polytope must own its vertices.
	owned := make([]geom.Point, len(result.verts))
	for i, v := range result.verts {
		owned[i] = v.Clone()
	}
	shared := fromHullVerts(owned)
	combineCachePut(key, shared)
	return shared, nil
}

// Average returns the equal-weight linear combination used on line 14 of
// Algorithm CC: L(Y; [1/|Y|, ..., 1/|Y|]).
func Average(polys []*Polytope, eps float64) (*Polytope, error) {
	if len(polys) == 0 {
		return nil, errors.New("polytope: average of zero polytopes")
	}
	w := make([]float64, len(polys))
	for i := range w {
		w[i] = 1 / float64(len(polys))
	}
	return LinearCombination(polys, w, eps)
}

func combine1D(polys []*Polytope, weights []float64) (*Polytope, error) {
	var lo, hi float64
	for i, p := range polys {
		plo, phi, err := p.BoundingBox()
		if err != nil {
			return nil, err
		}
		lo += weights[i] * plo[0]
		hi += weights[i] * phi[0]
	}
	if hi-lo < 1e-15 {
		return FromPoint(geom.NewPoint(lo)), nil
	}
	return fromHullVerts([]geom.Point{geom.NewPoint(lo), geom.NewPoint(hi)}), nil
}

func combine2D(polys []*Polytope, weights []float64, eps float64) (*Polytope, error) {
	cur := hull.ScalePolygon(polys[0].verts, weights[0])
	for i, p := range polys[1:] {
		next := hull.ScalePolygon(p.verts, weights[i+1])
		cur = hull.MinkowskiSum2D(cur, next, eps)
		if len(cur) == 0 {
			return nil, ErrEmpty
		}
	}
	return fromHullVerts(cur), nil
}

// combineND computes the weighted Minkowski sum in d >= 3 by pairwise
// vertex-sum hulls: vertices of A + B are sums of vertices of A and B, so
// the hull of all pairwise sums is exact; pruning to hull vertices after
// every pairwise step keeps the vertex count bounded.
func combineND(polys []*Polytope, weights []float64, eps float64) (*Polytope, error) {
	cur := polys[0].Scale(weights[0]).verts
	for i, p := range polys[1:] {
		next := p.Scale(weights[i+1]).verts
		sums := make([]geom.Point, 0, len(cur)*len(next))
		for _, u := range cur {
			for _, v := range next {
				sums = append(sums, u.Add(v))
			}
		}
		verts, err := hull.ConvexHull(sums, eps)
		if err != nil {
			return nil, fmt.Errorf("polytope: minkowski step %d: %w", i+1, err)
		}
		cur = verts
	}
	return fromHullVerts(cur), nil
}

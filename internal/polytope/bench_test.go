package polytope

import (
	"math"
	"math/rand"
	"testing"

	"chc/internal/geom"
)

func benchPolys(b *testing.B, d, k int, seed int64) (*Polytope, *Polytope) {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	mk := func(off float64) *Polytope {
		pts := make([]geom.Point, k)
		for i := range pts {
			p := make(geom.Point, d)
			for j := range p {
				p[j] = off + rng.Float64()*4
			}
			pts[i] = p
		}
		poly, err := New(pts, eps)
		if err != nil {
			b.Fatal(err)
		}
		return poly
	}
	return mk(0), mk(1)
}

func BenchmarkIntersect3D(b *testing.B) {
	p, q := benchPolys(b, 3, 10, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Intersect([]*Polytope{p, q}, eps); err != nil && err != ErrEmpty {
			b.Fatal(err)
		}
	}
}

func BenchmarkAverage3D(b *testing.B) {
	p, q := benchPolys(b, 3, 8, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Average([]*Polytope{p, q}, eps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWolfeProjection3D(b *testing.B) {
	p, _ := benchPolys(b, 3, 12, 3)
	q := geom.NewPoint(10, 10, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Distance(q, eps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLimitVertices(b *testing.B) {
	poly, err := New(regularPolygonBench(64, 3), eps)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := LimitVertices(poly, 8, eps); err != nil {
			b.Fatal(err)
		}
	}
}

func regularPolygonBench(k int, radius float64) []geom.Point {
	pts := make([]geom.Point, k)
	for i := 0; i < k; i++ {
		a := 2 * math.Pi * float64(i) / float64(k)
		pts[i] = geom.NewPoint(radius*math.Cos(a), radius*math.Sin(a))
	}
	return pts
}

package polytope

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"chc/internal/geom"
)

// The hull cache memoizes New across the whole process. Its payoff comes
// from the structure of Algorithm CC: in every round, all n processes build
// polytopes from the same broadcast states, so each distinct point set is
// hulled up to n times. Keys are the exact float bits of the input points
// plus eps, so a cache hit returns a result bitwise-identical to a fresh
// computation — determinism (and hence WAL replay byte-identity) is
// unaffected. Cached polytopes are shared immutable pointers; their verts
// never alias caller memory.
const (
	// hullCacheMaxPoints bounds the key size; larger inputs bypass the cache.
	hullCacheMaxPoints = 64
	// hullCacheMaxEntries bounds the cache; on overflow it is cleared
	// wholesale (simple, and round boundaries naturally shift the key set).
	hullCacheMaxEntries = 4096
)

var (
	hullCacheOn     atomic.Bool
	hullCacheHits   atomic.Int64
	hullCacheMisses atomic.Int64

	hullCacheMu sync.RWMutex
	hullCache   = make(map[string]*Polytope)
)

func init() { hullCacheOn.Store(true) }

// SetHullCaching toggles the process-wide hull memoization (on by default)
// and returns the previous setting. Disabling clears the cache. Intended
// for tests and benchmarks that need every hull computed from scratch.
func SetHullCaching(on bool) bool {
	prev := hullCacheOn.Swap(on)
	if !on {
		hullCacheMu.Lock()
		clear(hullCache)
		hullCacheMu.Unlock()
		combineMu.Lock()
		clear(combineCache)
		combineMu.Unlock()
	}
	return prev
}

// HullCacheStats reports cumulative cache hits and misses.
func HullCacheStats() (hits, misses int64) {
	return hullCacheHits.Load(), hullCacheMisses.Load()
}

// pointKey encodes the exact bits of a point as a map key.
func pointKey(p geom.Point) string {
	buf := make([]byte, 8*len(p))
	for i, c := range p {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(c))
	}
	return string(buf)
}

// hullCacheKey builds the cache key for New(pts, eps), or "" when the input
// is ineligible (caching disabled, empty, oversized, or mixed-dimension).
func hullCacheKey(pts []geom.Point, eps float64) string {
	if !hullCacheOn.Load() || len(pts) == 0 || len(pts) > hullCacheMaxPoints {
		return ""
	}
	d := pts[0].Dim()
	buf := make([]byte, 0, 16+8*len(pts)*d)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(eps))
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(d))
	buf = append(buf, tmp[:]...)
	for _, p := range pts {
		if p.Dim() != d {
			return "" // let New surface the dimension error
		}
		for _, c := range p {
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(c))
			buf = append(buf, tmp[:]...)
		}
	}
	return string(buf)
}

// The combine cache memoizes LinearCombination the same way: in every
// averaging round each process combines the same broadcast states with the
// same weights, so the (expensive, Minkowski-sum) result recurs up to n
// times per round. Keys again capture the exact operand bits, so hits are
// bitwise-identical to recomputation. Both caches share the SetHullCaching
// switch.
const (
	// combineCacheMaxPoints bounds the key size by the total operand
	// vertex count; larger combinations bypass the cache.
	combineCacheMaxPoints = 256
	combineCacheMaxEntries = 1024
)

var (
	combineHits   atomic.Int64
	combineMisses atomic.Int64

	combineMu    sync.RWMutex
	combineCache = make(map[string]*Polytope)
)

// CombineCacheStats reports cumulative combine-cache hits and misses.
func CombineCacheStats() (hits, misses int64) {
	return combineHits.Load(), combineMisses.Load()
}

// combineCacheKey builds the cache key for LinearCombination(polys,
// weights, eps), or "" when ineligible.
func combineCacheKey(polys []*Polytope, weights []float64, eps float64) string {
	if !hullCacheOn.Load() {
		return ""
	}
	total := 0
	for _, p := range polys {
		total += len(p.verts)
	}
	if total == 0 || total > combineCacheMaxPoints {
		return ""
	}
	var tmp [8]byte
	buf := make([]byte, 0, 16+16*len(polys)+8*total*polys[0].Dim())
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(eps))
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(len(polys)))
	buf = append(buf, tmp[:]...)
	for i, p := range polys {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(weights[i]))
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], uint64(len(p.verts)))
		buf = append(buf, tmp[:]...)
		for _, v := range p.verts {
			for _, c := range v {
				binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(c))
				buf = append(buf, tmp[:]...)
			}
		}
	}
	return string(buf)
}

func combineCacheGet(key string) *Polytope {
	combineMu.RLock()
	p := combineCache[key]
	combineMu.RUnlock()
	if p != nil {
		combineHits.Add(1)
	} else {
		combineMisses.Add(1)
	}
	return p
}

func combineCachePut(key string, p *Polytope) {
	combineMu.Lock()
	if len(combineCache) >= combineCacheMaxEntries {
		clear(combineCache)
	}
	combineCache[key] = p
	combineMu.Unlock()
}

func hullCacheGet(key string) *Polytope {
	hullCacheMu.RLock()
	p := hullCache[key]
	hullCacheMu.RUnlock()
	if p != nil {
		hullCacheHits.Add(1)
	} else {
		hullCacheMisses.Add(1)
	}
	return p
}

func hullCachePut(key string, p *Polytope) {
	hullCacheMu.Lock()
	if len(hullCache) >= hullCacheMaxEntries {
		clear(hullCache)
	}
	hullCache[key] = p
	hullCacheMu.Unlock()
}

// Package polytope provides the convex polytope abstraction at the heart of
// convex hull consensus: the state h_i[t] of every process is a Polytope,
// and the three operations the algorithm performs on states are implemented
// here — intersection of convex hulls (line 5 of Algorithm CC), the linear
// combination L of Definition 2 (a weighted Minkowski sum), and the
// Hausdorff distance of equation (1) used by the ε-agreement property.
//
// Polytopes are stored in V-representation (vertex sets); the H-representation
// (facets) is derived lazily when an operation needs it. Dimension 1 uses
// exact interval arithmetic and dimension 2 an exact polygon kernel; higher
// dimensions combine LP-based predicates with brute-force facet enumeration
// (see package hull for the trade-offs).
package polytope

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"chc/internal/geom"
	"chc/internal/hull"
	"chc/internal/lp"
)

// ErrEmpty is returned by operations whose result would be the empty set
// (e.g. an empty intersection) or that received an empty polytope.
var ErrEmpty = errors.New("polytope: empty polytope")

// supportCacheMinVerts gates the keyed support cache: below this vertex
// count the linear scan is cheaper than the map lookup.
const supportCacheMinVerts = 16

// supportCacheMaxEntries bounds the per-polytope support cache.
const supportCacheMaxEntries = 512

// supportEntry records a support query result: the maximising vertex index
// and the support value.
type supportEntry struct {
	idx int
	val float64
}

// Polytope is a bounded convex polytope in V-representation. The zero value
// is not usable; construct with New or FromPoint. Polytopes are immutable
// after construction and safe for concurrent use; derived quantities (the
// facet representation, the Chebyshev centre, support values) are computed
// lazily and memoized under an internal RWMutex. Because every derived
// computation is a deterministic function of the immutable vertex set, a
// memoized result is bitwise-identical to a fresh recomputation — caching
// never perturbs replayed traces.
type Polytope struct {
	verts []geom.Point // canonical vertex set (hull vertices only)

	mu        sync.RWMutex
	facets    []hull.Facet
	facetsErr error
	facetsSet bool
	chebC     geom.Point
	chebR     float64
	chebErr   error
	chebSet   bool
	support   map[string]supportEntry
}

// New builds the convex hull of pts and returns it as a Polytope. The input
// may contain duplicates and interior points; only hull vertices are kept.
// Small inputs are served from a process-wide memoized hull cache (see
// SetHullCaching): in a consensus round every process hulls the same
// received states, so identical point sets recur n-fold.
func New(pts []geom.Point, eps float64) (*Polytope, error) {
	if key := hullCacheKey(pts, eps); key != "" {
		if p := hullCacheGet(key); p != nil {
			return p, nil
		}
		verts, err := hull.ConvexHull(pts, eps)
		if err != nil {
			return nil, fmt.Errorf("polytope: %w", err)
		}
		// Clone before publishing: ConvexHull may return views of the input
		// points, and a cached polytope must not alias caller memory.
		owned := make([]geom.Point, len(verts))
		for i, v := range verts {
			owned[i] = v.Clone()
		}
		p := &Polytope{verts: owned}
		hullCachePut(key, p)
		return p, nil
	}
	verts, err := hull.ConvexHull(pts, eps)
	if err != nil {
		return nil, fmt.Errorf("polytope: %w", err)
	}
	return &Polytope{verts: verts}, nil
}

// FromPoint returns the degenerate polytope {p}.
func FromPoint(p geom.Point) *Polytope {
	return &Polytope{verts: []geom.Point{p.Clone()}}
}

// fromHullVerts wraps an already-canonical vertex set without re-hulling.
func fromHullVerts(verts []geom.Point) *Polytope {
	return &Polytope{verts: verts}
}

// Vertices returns a copy of the polytope's vertex set. For 2-D polytopes
// the vertices are in counter-clockwise order.
func (p *Polytope) Vertices() []geom.Point {
	out := make([]geom.Point, len(p.verts))
	for i, v := range p.verts {
		out[i] = v.Clone()
	}
	return out
}

// NumVertices returns the number of vertices.
func (p *Polytope) NumVertices() int { return len(p.verts) }

// Dim returns the ambient dimension.
func (p *Polytope) Dim() int {
	if len(p.verts) == 0 {
		return 0
	}
	return p.verts[0].Dim()
}

// AffineDim returns the dimension of the polytope's affine hull (0 for a
// point, up to Dim()).
func (p *Polytope) AffineDim(eps float64) (int, error) {
	if len(p.verts) == 0 {
		return 0, ErrEmpty
	}
	return geom.AffineDim(p.verts, eps)
}

// Facets returns the polytope's halfspace representation, computing and
// caching it on first use (the eps of the first call wins, as before).
func (p *Polytope) Facets(eps float64) ([]hull.Facet, error) {
	p.mu.RLock()
	if p.facetsSet {
		f, err := p.facets, p.facetsErr
		p.mu.RUnlock()
		return f, err
	}
	p.mu.RUnlock()
	f, err := hull.Facets(p.verts, eps)
	p.mu.Lock()
	if !p.facetsSet {
		p.facets, p.facetsErr, p.facetsSet = f, err, true
	}
	f, err = p.facets, p.facetsErr
	p.mu.Unlock()
	return f, err
}

// ChebyshevCenter returns the centre and radius of the largest inscribed
// ball of the polytope, derived from its facet representation and memoized
// (the eps of the first call wins). The returned centre is a fresh copy.
func (p *Polytope) ChebyshevCenter(eps float64) (geom.Point, float64, error) {
	if len(p.verts) == 0 {
		return nil, 0, ErrEmpty
	}
	p.mu.RLock()
	if p.chebSet {
		c, r, err := p.chebC, p.chebR, p.chebErr
		p.mu.RUnlock()
		if err != nil {
			return nil, 0, err
		}
		return c.Clone(), r, nil
	}
	p.mu.RUnlock()

	c, r, err := p.chebyshevCompute(eps)
	p.mu.Lock()
	if !p.chebSet {
		p.chebC, p.chebR, p.chebErr, p.chebSet = c, r, err, true
	}
	c, r, err = p.chebC, p.chebR, p.chebErr
	p.mu.Unlock()
	if err != nil {
		return nil, 0, err
	}
	return c.Clone(), r, nil
}

func (p *Polytope) chebyshevCompute(eps float64) (geom.Point, float64, error) {
	if len(p.verts) == 1 {
		return p.verts[0].Clone(), 0, nil
	}
	facets, err := p.Facets(eps)
	if err != nil {
		return nil, 0, err
	}
	a := make([][]float64, len(facets))
	b := make([]float64, len(facets))
	for i, f := range facets {
		a[i], b[i] = f.Normal, f.Offset
	}
	c, r, err := lp.ChebyshevCenter(a, b, eps)
	if err != nil {
		return nil, 0, fmt.Errorf("polytope: chebyshev centre: %w", err)
	}
	return geom.Point(c), r, nil
}

// Contains reports whether q is in the polytope, within tolerance eps.
func (p *Polytope) Contains(q geom.Point, eps float64) (bool, error) {
	if len(p.verts) == 0 {
		return false, ErrEmpty
	}
	if p.Dim() == 2 && len(p.verts) >= 3 {
		return hull.PointInConvexPolygon(q, p.verts, eps), nil
	}
	return hull.Contains(p.verts, q, eps)
}

// ContainsPolytope reports whether every point of q lies in p, i.e. q ⊆ p.
// By convexity it suffices to test q's vertices.
func (p *Polytope) ContainsPolytope(q *Polytope, eps float64) (bool, error) {
	if len(q.verts) == 0 {
		return false, ErrEmpty
	}
	for _, v := range q.verts {
		in, err := p.Contains(v, eps)
		if err != nil {
			return false, err
		}
		if !in {
			return false, nil
		}
	}
	return true, nil
}

// Support returns max over the polytope of dir·x and a maximising vertex.
// For polytopes with many vertices, results are memoized per direction
// (keyed on the exact float bits of dir, so a hit is bitwise-identical to a
// fresh scan).
func (p *Polytope) Support(dir geom.Point) (geom.Point, float64, error) {
	if len(p.verts) == 0 {
		return nil, 0, ErrEmpty
	}
	if len(p.verts) < supportCacheMinVerts {
		i, val := p.supportScan(dir)
		return p.verts[i].Clone(), val, nil
	}
	key := pointKey(dir)
	p.mu.RLock()
	e, ok := p.support[key]
	p.mu.RUnlock()
	if ok {
		return p.verts[e.idx].Clone(), e.val, nil
	}
	i, val := p.supportScan(dir)
	p.mu.Lock()
	if p.support == nil {
		p.support = make(map[string]supportEntry)
	} else if len(p.support) >= supportCacheMaxEntries {
		clear(p.support)
	}
	p.support[key] = supportEntry{idx: i, val: val}
	p.mu.Unlock()
	return p.verts[i].Clone(), val, nil
}

// supportScan is the uncached support computation: the index and value of
// the first maximising vertex.
func (p *Polytope) supportScan(dir geom.Point) (int, float64) {
	best := 0
	bestVal := dir.Dot(p.verts[0])
	for i, v := range p.verts[1:] {
		if val := dir.Dot(v); val > bestVal {
			best, bestVal = i+1, val
		}
	}
	return best, bestVal
}

// Centroid returns the arithmetic mean of the vertices (a point inside the
// polytope; not the volumetric centroid).
func (p *Polytope) Centroid() (geom.Point, error) {
	if len(p.verts) == 0 {
		return nil, ErrEmpty
	}
	return geom.Centroid(p.verts)
}

// Volume returns the d-dimensional volume; degenerate polytopes have 0.
func (p *Polytope) Volume(eps float64) (float64, error) {
	if len(p.verts) == 0 {
		return 0, ErrEmpty
	}
	return hull.Volume(p.verts, eps)
}

// Diameter returns the maximum distance between two points of the polytope
// (attained at a vertex pair).
func (p *Polytope) Diameter() float64 { return hull.Diameter(p.verts) }

// IsPoint reports whether the polytope is a single point (within eps).
func (p *Polytope) IsPoint(eps float64) bool {
	return len(p.verts) == 1 || p.Diameter() <= eps
}

// Sample returns a random point of the polytope, drawn as a random convex
// combination of its vertices with exponentially distributed weights (a
// Dirichlet(1,...,1) draw over the vertex simplex; not volumetrically
// uniform, but it has full support over the polytope).
func (p *Polytope) Sample(rng *rand.Rand) (geom.Point, error) {
	if len(p.verts) == 0 {
		return nil, ErrEmpty
	}
	w := make([]float64, len(p.verts))
	var sum float64
	for i := range w {
		w[i] = rng.ExpFloat64()
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return geom.Combination(p.verts, w)
}

// Translate returns the polytope shifted by v.
func (p *Polytope) Translate(v geom.Point) *Polytope {
	verts := make([]geom.Point, len(p.verts))
	for i, q := range p.verts {
		verts[i] = q.Add(v)
	}
	return fromHullVerts(verts)
}

// Scale returns the polytope scaled by c about the origin. Scaling preserves
// vertex status, so no re-hulling is needed (for c = 0 the result collapses
// to the origin).
func (p *Polytope) Scale(c float64) *Polytope {
	if c == 0 {
		return FromPoint(geom.Zero(p.Dim()))
	}
	verts := make([]geom.Point, len(p.verts))
	for i, q := range p.verts {
		verts[i] = q.Scale(c)
	}
	return fromHullVerts(verts)
}

// Equal reports whether a and b describe the same polytope within eps,
// i.e. their Hausdorff distance is at most eps.
func Equal(a, b *Polytope, eps float64) (bool, error) {
	d, err := Hausdorff(a, b, eps)
	if err != nil {
		return false, err
	}
	return d <= eps, nil
}

// BoundingBox returns the polytope's axis-aligned bounding box.
func (p *Polytope) BoundingBox() (lo, hi geom.Point, err error) {
	if len(p.verts) == 0 {
		return nil, nil, ErrEmpty
	}
	return geom.BoundingBox(p.verts)
}

// String renders a short description.
func (p *Polytope) String() string {
	if len(p.verts) == 0 {
		return "Polytope(empty)"
	}
	if len(p.verts) <= 4 {
		return fmt.Sprintf("Polytope%v", p.verts)
	}
	return fmt.Sprintf("Polytope(%d vertices in %d-D)", len(p.verts), p.Dim())
}

// maxFinite guards against NaN propagation in distance computations.
func maxFinite(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if a > b {
		return a
	}
	return b
}

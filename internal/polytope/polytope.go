// Package polytope provides the convex polytope abstraction at the heart of
// convex hull consensus: the state h_i[t] of every process is a Polytope,
// and the three operations the algorithm performs on states are implemented
// here — intersection of convex hulls (line 5 of Algorithm CC), the linear
// combination L of Definition 2 (a weighted Minkowski sum), and the
// Hausdorff distance of equation (1) used by the ε-agreement property.
//
// Polytopes are stored in V-representation (vertex sets); the H-representation
// (facets) is derived lazily when an operation needs it. Dimension 1 uses
// exact interval arithmetic and dimension 2 an exact polygon kernel; higher
// dimensions combine LP-based predicates with brute-force facet enumeration
// (see package hull for the trade-offs).
package polytope

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"chc/internal/geom"
	"chc/internal/hull"
)

// ErrEmpty is returned by operations whose result would be the empty set
// (e.g. an empty intersection) or that received an empty polytope.
var ErrEmpty = errors.New("polytope: empty polytope")

// Polytope is a bounded convex polytope in V-representation. The zero value
// is not usable; construct with New or FromPoint. Polytopes are immutable
// after construction and safe for concurrent use.
type Polytope struct {
	verts []geom.Point // canonical vertex set (hull vertices only)

	facetsOnce sync.Once
	facets     []hull.Facet
	facetsErr  error
}

// New builds the convex hull of pts and returns it as a Polytope. The input
// may contain duplicates and interior points; only hull vertices are kept.
func New(pts []geom.Point, eps float64) (*Polytope, error) {
	verts, err := hull.ConvexHull(pts, eps)
	if err != nil {
		return nil, fmt.Errorf("polytope: %w", err)
	}
	return &Polytope{verts: verts}, nil
}

// FromPoint returns the degenerate polytope {p}.
func FromPoint(p geom.Point) *Polytope {
	return &Polytope{verts: []geom.Point{p.Clone()}}
}

// fromHullVerts wraps an already-canonical vertex set without re-hulling.
func fromHullVerts(verts []geom.Point) *Polytope {
	return &Polytope{verts: verts}
}

// Vertices returns a copy of the polytope's vertex set. For 2-D polytopes
// the vertices are in counter-clockwise order.
func (p *Polytope) Vertices() []geom.Point {
	out := make([]geom.Point, len(p.verts))
	for i, v := range p.verts {
		out[i] = v.Clone()
	}
	return out
}

// NumVertices returns the number of vertices.
func (p *Polytope) NumVertices() int { return len(p.verts) }

// Dim returns the ambient dimension.
func (p *Polytope) Dim() int {
	if len(p.verts) == 0 {
		return 0
	}
	return p.verts[0].Dim()
}

// AffineDim returns the dimension of the polytope's affine hull (0 for a
// point, up to Dim()).
func (p *Polytope) AffineDim(eps float64) (int, error) {
	if len(p.verts) == 0 {
		return 0, ErrEmpty
	}
	return geom.AffineDim(p.verts, eps)
}

// Facets returns the polytope's halfspace representation, computing and
// caching it on first use.
func (p *Polytope) Facets(eps float64) ([]hull.Facet, error) {
	p.facetsOnce.Do(func() {
		p.facets, p.facetsErr = hull.Facets(p.verts, eps)
	})
	return p.facets, p.facetsErr
}

// Contains reports whether q is in the polytope, within tolerance eps.
func (p *Polytope) Contains(q geom.Point, eps float64) (bool, error) {
	if len(p.verts) == 0 {
		return false, ErrEmpty
	}
	if p.Dim() == 2 && len(p.verts) >= 3 {
		return hull.PointInConvexPolygon(q, p.verts, eps), nil
	}
	return hull.Contains(p.verts, q, eps)
}

// ContainsPolytope reports whether every point of q lies in p, i.e. q ⊆ p.
// By convexity it suffices to test q's vertices.
func (p *Polytope) ContainsPolytope(q *Polytope, eps float64) (bool, error) {
	if len(q.verts) == 0 {
		return false, ErrEmpty
	}
	for _, v := range q.verts {
		in, err := p.Contains(v, eps)
		if err != nil {
			return false, err
		}
		if !in {
			return false, nil
		}
	}
	return true, nil
}

// Support returns max over the polytope of dir·x and a maximising vertex.
func (p *Polytope) Support(dir geom.Point) (geom.Point, float64, error) {
	if len(p.verts) == 0 {
		return nil, 0, ErrEmpty
	}
	best := p.verts[0]
	bestVal := dir.Dot(best)
	for _, v := range p.verts[1:] {
		if val := dir.Dot(v); val > bestVal {
			best, bestVal = v, val
		}
	}
	return best.Clone(), bestVal, nil
}

// Centroid returns the arithmetic mean of the vertices (a point inside the
// polytope; not the volumetric centroid).
func (p *Polytope) Centroid() (geom.Point, error) {
	if len(p.verts) == 0 {
		return nil, ErrEmpty
	}
	return geom.Centroid(p.verts)
}

// Volume returns the d-dimensional volume; degenerate polytopes have 0.
func (p *Polytope) Volume(eps float64) (float64, error) {
	if len(p.verts) == 0 {
		return 0, ErrEmpty
	}
	return hull.Volume(p.verts, eps)
}

// Diameter returns the maximum distance between two points of the polytope
// (attained at a vertex pair).
func (p *Polytope) Diameter() float64 { return hull.Diameter(p.verts) }

// IsPoint reports whether the polytope is a single point (within eps).
func (p *Polytope) IsPoint(eps float64) bool {
	return len(p.verts) == 1 || p.Diameter() <= eps
}

// Sample returns a random point of the polytope, drawn as a random convex
// combination of its vertices with exponentially distributed weights (a
// Dirichlet(1,...,1) draw over the vertex simplex; not volumetrically
// uniform, but it has full support over the polytope).
func (p *Polytope) Sample(rng *rand.Rand) (geom.Point, error) {
	if len(p.verts) == 0 {
		return nil, ErrEmpty
	}
	w := make([]float64, len(p.verts))
	var sum float64
	for i := range w {
		w[i] = rng.ExpFloat64()
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return geom.Combination(p.verts, w)
}

// Translate returns the polytope shifted by v.
func (p *Polytope) Translate(v geom.Point) *Polytope {
	verts := make([]geom.Point, len(p.verts))
	for i, q := range p.verts {
		verts[i] = q.Add(v)
	}
	return fromHullVerts(verts)
}

// Scale returns the polytope scaled by c about the origin. Scaling preserves
// vertex status, so no re-hulling is needed (for c = 0 the result collapses
// to the origin).
func (p *Polytope) Scale(c float64) *Polytope {
	if c == 0 {
		return FromPoint(geom.Zero(p.Dim()))
	}
	verts := make([]geom.Point, len(p.verts))
	for i, q := range p.verts {
		verts[i] = q.Scale(c)
	}
	return fromHullVerts(verts)
}

// Equal reports whether a and b describe the same polytope within eps,
// i.e. their Hausdorff distance is at most eps.
func Equal(a, b *Polytope, eps float64) (bool, error) {
	d, err := Hausdorff(a, b, eps)
	if err != nil {
		return false, err
	}
	return d <= eps, nil
}

// BoundingBox returns the polytope's axis-aligned bounding box.
func (p *Polytope) BoundingBox() (lo, hi geom.Point, err error) {
	if len(p.verts) == 0 {
		return nil, nil, ErrEmpty
	}
	return geom.BoundingBox(p.verts)
}

// String renders a short description.
func (p *Polytope) String() string {
	if len(p.verts) == 0 {
		return "Polytope(empty)"
	}
	if len(p.verts) <= 4 {
		return fmt.Sprintf("Polytope%v", p.verts)
	}
	return fmt.Sprintf("Polytope(%d vertices in %d-D)", len(p.verts), p.Dim())
}

// maxFinite guards against NaN propagation in distance computations.
func maxFinite(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if a > b {
		return a
	}
	return b
}

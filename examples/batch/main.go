// Batch execution: a fleet of five nodes runs three independent agreement
// tasks — a 2-D rendezvous region, a 1-D rate limit, and a coarse 2-D
// geofence — multiplexed over a single network, with one node crashing
// mid-run. Each instance keeps its own parameters and guarantees.
package main

import (
	"fmt"
	"log"

	"chc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 5
	mk := func(f, d int, eps float64) chc.Params {
		return chc.Params{
			N: n, F: f, D: d,
			Epsilon:    eps,
			InputLower: 0, InputUpper: 10,
		}
	}
	cfg := chc.BatchConfig{
		N: n,
		Instances: []chc.BatchInstance{
			{ // rendezvous region proposals (2-D)
				Params: mk(1, 2, 0.05),
				Inputs: []chc.Point{
					chc.NewPoint(4, 4), chc.NewPoint(5, 4.5), chc.NewPoint(4.5, 5.5),
					chc.NewPoint(5.5, 5), chc.NewPoint(4.8, 4.2),
				},
			},
			{ // per-node rate-limit proposals (1-D)
				Params: mk(1, 1, 0.01),
				Inputs: []chc.Point{
					chc.NewPoint(3), chc.NewPoint(4), chc.NewPoint(3.5),
					chc.NewPoint(5), chc.NewPoint(4.2),
				},
			},
			{ // coarse geofence corners (2-D, loose ε)
				Params: mk(1, 2, 0.5),
				Inputs: []chc.Point{
					chc.NewPoint(1, 1), chc.NewPoint(9, 1), chc.NewPoint(9, 9),
					chc.NewPoint(1, 9), chc.NewPoint(5, 5),
				},
			},
		},
		Faulty:  []chc.ProcID{2},
		Crashes: []chc.CrashPlan{{Proc: 2, AfterSends: 40}}, // dies mid-batch
		Seed:    7,
	}
	result, err := chc.RunBatch(cfg)
	if err != nil {
		return err
	}
	names := []string{"rendezvous", "rate-limit", "geofence"}
	for k, outs := range result.Outputs {
		var polys []*chc.Polytope
		for _, p := range outs {
			polys = append(polys, p)
		}
		d, err := chc.MaxPairwiseHausdorff(polys, chc.DefaultEps)
		if err != nil {
			return err
		}
		sample := polys[0]
		center, err := sample.Centroid()
		if err != nil {
			return err
		}
		fmt.Printf("instance %-10s: %d/%d nodes decided, centre %v, agreement d_H %.2e (ε = %g)\n",
			names[k], len(outs), n, center, d, cfg.Instances[k].Params.Epsilon)
	}
	fmt.Printf("network total: %d messages, %d bytes across all three instances\n",
		result.Stats.Sends, result.Stats.Bytes)
	return nil
}

package main

import "testing"

// TestRun executes the example end to end; examples are deterministic, so
// a nil error means every property check inside them passed.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}

package main

import "testing"

// TestRun executes the example end to end; a nil error means the batch ran,
// the self-scrape over HTTP succeeded, and the digest printed.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}

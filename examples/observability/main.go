// Observability: a five-node fleet runs a batch of agreement tasks over real
// TCP sockets with light chaos injection, while the process serves its
// telemetry over HTTP. The example scrapes its own /metrics endpoint the way
// a Prometheus collector would, then prints a digest: round-latency
// percentiles from the registry's histograms and the link-layer repair work
// the chaos faults caused.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"chc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Mount the exposition server (port 0 picks a free port). This enables
	// metric collection process-wide; the server also serves /runs and
	// /debug/pprof for live inspection.
	addr, shutdown, err := chc.ServeTelemetry("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() {
		_ = shutdown()
		chc.EnableTelemetry(false)
	}()
	fmt.Printf("telemetry: http://%s/metrics\n", addr)

	const n = 5
	params := chc.Params{
		N: n, F: 1, D: 2,
		Epsilon:    0.05,
		InputLower: 0, InputUpper: 10,
	}
	inputs := func(shift float64) []chc.Point {
		pts := make([]chc.Point, n)
		for i := range pts {
			pts[i] = chc.NewPoint(float64(i)+shift, float64(n-i)-shift)
		}
		return pts
	}
	cfg := chc.BatchConfig{
		N: n,
		Instances: []chc.BatchInstance{
			{Params: params, Inputs: inputs(0)},
			{Params: params, Inputs: inputs(0.5)},
			{Params: params, Inputs: inputs(1)},
		},
		Transport: chc.BatchTCP,
		Timeout:   2 * time.Minute,
		Seed:      11,
		ChaosSeed: 11,
	}
	chaos := chc.LightChaos()
	cfg.Chaos = &chaos

	result, err := chc.RunBatch(cfg)
	if err != nil {
		return err
	}
	for k, outs := range result.Outputs {
		fmt.Printf("instance %d: %d/%d nodes decided\n", k, len(outs), n)
	}

	// Scrape our own /metrics endpoint over HTTP, Prometheus-style.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	fmt.Printf("scraped %d exposition lines; consensus families:\n", len(lines))
	for _, line := range lines {
		if strings.HasPrefix(line, "chc_consensus_decided_total") {
			fmt.Printf("  %s\n", line)
		}
	}

	// The batch result carries the same data as a structured snapshot:
	// report round-latency percentiles and the chaos repair work.
	snap := result.Telemetry
	if mf := snap.Find("chc_consensus_round_seconds"); mf != nil {
		for _, s := range mf.Samples {
			if s.Labels["protocol"] != "cc" || s.Histogram == nil {
				continue
			}
			fmt.Printf("round latency: n=%d p50=%.3gs p90=%.3gs p99=%.3gs\n",
				s.Histogram.Count,
				s.Histogram.Quantile(0.50),
				s.Histogram.Quantile(0.90),
				s.Histogram.Quantile(0.99))
		}
	}
	total := func(name string) float64 {
		if mf := snap.Find(name); mf != nil {
			return mf.Total()
		}
		return 0
	}
	fmt.Printf("chaos repair: %.0f drops injected, %.0f retransmits, %.0f duplicates suppressed\n",
		total("chc_chaos_drops_total"),
		total("chc_rlink_retransmits_total"),
		total("chc_rlink_dup_suppressed_total"))
	return nil
}

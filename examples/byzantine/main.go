// Byzantine tolerance: the same convex hull consensus guarantees under a
// fully Byzantine adversary, via the crash→Byzantine transformation the
// paper references (all communication compiled through reliable broadcast,
// states recomputed from broadcast certificates). The demo runs one
// adversary of each flavour — silent, incorrect-input, equivocating,
// garbage-flooding — and shows validity and ε-agreement holding at the
// correct processes every time.
package main

import (
	"fmt"
	"log"

	"chc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := chc.Params{
		N: 5, F: 1, D: 2,
		Epsilon:    0.1,
		InputLower: 0, InputUpper: 10,
	}
	inputs := []chc.Point{
		chc.NewPoint(3, 3),
		chc.NewPoint(5, 2.5),
		chc.NewPoint(4.5, 5),
		chc.NewPoint(2.5, 4.5),
		chc.NewPoint(9, 9), // the adversary's slot
	}

	for _, behavior := range []chc.ByzantineBehavior{
		chc.ByzSilent, chc.ByzIncorrectInput, chc.ByzEquivocator, chc.ByzGarbler,
	} {
		cfg := chc.ByzantineRunConfig{
			Params: params,
			Inputs: inputs,
			Faults: []chc.ByzantineFault{{
				Proc:     4,
				Behavior: behavior,
				Input:    chc.NewPoint(9.9, 0.1),
			}},
			Seed: 42,
		}
		result, err := chc.RunByzantine(cfg)
		if err != nil {
			return fmt.Errorf("%v: %w", behavior, err)
		}
		if err := chc.CheckByzantineValidity(result, &cfg); err != nil {
			return fmt.Errorf("%v: validity: %w", behavior, err)
		}
		dh, holds, err := chc.CheckByzantineAgreement(result)
		if err != nil {
			return err
		}
		out := result.Outputs[result.Correct()[0]]
		vol, err := out.Volume(chc.DefaultEps)
		if err != nil {
			return err
		}
		fmt.Printf("adversary %-16s: %d correct decisions, area %.3g, d_H %.2e (≤ %g: %v), %d msgs\n",
			behavior, len(result.Outputs), vol, dh, params.Epsilon, holds, result.Stats.Sends)
	}
	fmt.Println("\nvalidity + ε-agreement held against every Byzantine behaviour (n ≥ 3f+1)")
	return nil
}

// Fault-tolerance tour: runs the same consensus instance under every
// adversary the simulator can produce — random asynchrony, targeted
// starvation of the faulty process, a network split, crash storms at every
// possible point of the faulty process's broadcast — and shows that
// validity, ε-agreement and optimality hold in every single execution
// (Theorem 2 and Lemma 6 of the paper).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"chc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := chc.Params{
		N: 5, F: 1, D: 2,
		Epsilon:    0.05,
		InputLower: 0, InputUpper: 10,
	}
	rng := rand.New(rand.NewSource(99))
	inputs := make([]chc.Point, params.N)
	for i := range inputs {
		inputs[i] = chc.NewPoint(rng.Float64()*10, rng.Float64()*10)
	}

	schedulers := map[string]func() chc.Scheduler{
		"random asynchrony": func() chc.Scheduler { return chc.NewRandomScheduler() },
		"round-robin":       func() chc.Scheduler { return chc.NewRoundRobinScheduler() },
		"starve the faulty": func() chc.Scheduler { return chc.NewDelayScheduler(2) },
		"split 2-vs-3":      func() chc.Scheduler { return chc.NewSplitScheduler(0, 1) },
	}

	total, passed := 0, 0
	for name, mk := range schedulers {
		for crashAt := 0; crashAt <= 20; crashAt += 4 {
			cfg := chc.RunConfig{
				Params:    params,
				Inputs:    inputs,
				Faulty:    []chc.ProcID{2},
				Crashes:   []chc.CrashPlan{{Proc: 2, AfterSends: crashAt}},
				Seed:      int64(crashAt + 1),
				Scheduler: mk(),
			}
			result, err := chc.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s, crash@%d: %w", name, crashAt, err)
			}
			total++
			rep, err := chc.CheckAgreement(result)
			if err != nil {
				return err
			}
			ok := rep.Holds &&
				chc.CheckValidity(result, &cfg) == nil &&
				chc.CheckOptimality(result) == nil
			if ok {
				passed++
			} else {
				fmt.Printf("FAIL %-18s crash@%-3d d_H=%.3g\n", name, crashAt, rep.MaxHausdorff)
			}
		}
		fmt.Printf("adversary %-20s: all crash points survived\n", name)
	}
	fmt.Printf("\n%d/%d executions satisfied validity + ε-agreement + optimality\n", passed, total)
	if passed != total {
		return fmt.Errorf("%d executions failed", total-passed)
	}
	return nil
}

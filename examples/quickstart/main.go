// Quickstart: seven processes agree on a convex polytope inside the hull of
// the fault-free inputs, despite one faulty process with an incorrect input
// that crashes mid-broadcast.
package main

import (
	"fmt"
	"log"

	"chc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := chc.Params{
		N: 7, F: 1, D: 2,
		Epsilon:    0.01, // agree up to Hausdorff distance 0.01
		InputLower: 0, InputUpper: 10,
	}

	// Inputs: six honest sensors cluster around the truth; process 6 is
	// faulty — its input is garbage and it will crash partway through.
	inputs := []chc.Point{
		chc.NewPoint(4.0, 4.2),
		chc.NewPoint(5.1, 3.8),
		chc.NewPoint(4.6, 5.0),
		chc.NewPoint(5.5, 4.9),
		chc.NewPoint(4.2, 4.8),
		chc.NewPoint(5.0, 4.4),
		chc.NewPoint(9.9, 0.1), // incorrect input
	}

	cfg := chc.RunConfig{
		Params:  params,
		Inputs:  inputs,
		Faulty:  []chc.ProcID{6},
		Crashes: []chc.CrashPlan{{Proc: 6, AfterSends: 8}}, // dies mid-broadcast
		Seed:    1,
	}

	result, err := chc.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("t_end = %d asynchronous rounds\n", params.TEnd())
	for _, id := range result.FaultFree() {
		out := result.Outputs[id]
		vol, err := out.Volume(chc.DefaultEps)
		if err != nil {
			return err
		}
		fmt.Printf("process %d decided %d-vertex polytope, area %.4f\n",
			id, out.NumVertices(), vol)
	}

	rep, err := chc.CheckAgreement(result)
	if err != nil {
		return err
	}
	fmt.Printf("ε-agreement: max pairwise d_H = %.2e (ε = %g) -> %v\n",
		rep.MaxHausdorff, rep.Epsilon, rep.Holds)

	if err := chc.CheckValidity(result, &cfg); err != nil {
		return fmt.Errorf("validity: %w", err)
	}
	fmt.Println("validity: every output inside the hull of the six honest inputs")

	if err := chc.CheckOptimality(result); err != nil {
		return fmt.Errorf("optimality: %w", err)
	}
	fmt.Println("optimality: every output contains the reference polytope I_Z")
	return nil
}

// Distributed facility placement (Section 7 of the paper): five depots
// jointly pick a location minimising a quadratic transport cost over the
// convex hull of their (fault-free) positions, using the 2-step convex hull
// function optimisation algorithm. Despite one faulty depot, every healthy
// depot learns a cost within β of the others' — weak β-optimality — even
// though exact agreement on the location itself is impossible in general
// (Theorem 4).
package main

import (
	"fmt"
	"log"

	"chc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := chc.Params{
		N: 5, F: 1, D: 2,
		Epsilon:    1, // overwritten by the optimiser (ε = β/b)
		InputLower: 0, InputUpper: 10,
	}
	inputs := []chc.Point{
		chc.NewPoint(1, 1),
		chc.NewPoint(8, 2),
		chc.NewPoint(7, 7),
		chc.NewPoint(2, 6),
		chc.NewPoint(9.5, 9.5), // faulty depot with a bogus position
	}
	cfg := chc.RunConfig{
		Params:  params,
		Inputs:  inputs,
		Faulty:  []chc.ProcID{4},
		Crashes: []chc.CrashPlan{{Proc: 4, AfterSends: 6}},
		Seed:    11,
	}

	// Transport cost grows quadratically with distance from headquarters.
	hq := chc.NewPoint(5, 3)
	cost := chc.QuadraticCost{Target: hq, Scale: 1, Radius: 15}
	const beta = 0.25

	res, err := chc.Optimize(cfg, cost, beta)
	if err != nil {
		return err
	}

	fmt.Printf("headquarters at %v; Lipschitz constant b = %.1f; β = %g => consensus ε = %g\n",
		hq, cost.Lipschitz(), beta, beta/cost.Lipschitz())
	for _, id := range res.Consensus.FaultFree() {
		fv := res.Decisions[id]
		fmt.Printf("depot %d places the facility at %v with cost %.4f\n", id, fv.X, fv.Value)
	}
	fmt.Printf("cost spread across depots: %.2e (weak β-optimality bound: %g)\n",
		res.MaxValueSpread(), beta)
	fmt.Printf("location spread: %.2e (no guarantee exists for this — Theorem 4)\n",
		res.MaxArgSpread())
	return nil
}

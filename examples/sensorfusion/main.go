// Sensor fusion: nine ranging stations estimate the 2-D position of a
// target. Two stations are compromised (incorrect inputs; one also
// crashes). Convex hull consensus lets every healthy station agree on a
// region guaranteed to be spanned by honest estimates — unlike naive
// averaging, which the compromised readings drag arbitrarily far away.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"chc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n = 9
		f = 2
	)
	truth := chc.NewPoint(6.0, 4.0)
	rng := rand.New(rand.NewSource(7))

	// Honest stations observe the target with bounded noise; compromised
	// stations 7 and 8 report adversarial positions.
	inputs := make([]chc.Point, n)
	for i := 0; i < n-f; i++ {
		inputs[i] = chc.NewPoint(
			truth[0]+rng.NormFloat64()*0.4,
			truth[1]+rng.NormFloat64()*0.4,
		)
	}
	inputs[7] = chc.NewPoint(0.2, 9.8)
	inputs[8] = chc.NewPoint(9.9, 9.9)

	params := chc.Params{
		N: n, F: f, D: 2,
		Epsilon:    0.05,
		InputLower: 0, InputUpper: 10,
	}
	cfg := chc.RunConfig{
		Params:  params,
		Inputs:  inputs,
		Faulty:  []chc.ProcID{7, 8},
		Crashes: []chc.CrashPlan{{Proc: 8, AfterSends: 12}},
		Seed:    7,
		// The adversary also starves the compromised stations' channels.
		Scheduler: chc.NewDelayScheduler(7, 8),
	}
	result, err := chc.Run(cfg)
	if err != nil {
		return err
	}

	// Naive fusion for contrast: the mean of ALL reported positions.
	naive := chc.NewPoint(0, 0)
	for _, p := range inputs {
		naive[0] += p[0] / n
		naive[1] += p[1] / n
	}

	fmt.Printf("true target position: %v\n", truth)
	fmt.Printf("naive mean of all reports: %v (dragged by the compromised stations)\n", naive)

	for _, id := range result.FaultFree() {
		out := result.Outputs[id]
		center, err := out.Centroid()
		if err != nil {
			return err
		}
		dist, err := out.Distance(truth, chc.DefaultEps)
		if err != nil {
			return err
		}
		vol, err := out.Volume(chc.DefaultEps)
		if err != nil {
			return err
		}
		fmt.Printf("station %d fused region: centre %v, area %.3g, distance to truth %.3f\n",
			id, center, vol, dist)
	}

	if err := chc.CheckValidity(result, &cfg); err != nil {
		return fmt.Errorf("validity: %w", err)
	}
	fmt.Println("validity: fused regions are spanned by honest estimates only")
	rep, err := chc.CheckAgreement(result)
	if err != nil {
		return err
	}
	fmt.Printf("agreement: all stations within d_H = %.2e of each other\n", rep.MaxHausdorff)
	return nil
}

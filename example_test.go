package chc_test

import (
	"fmt"
	"sort"

	"chc"
)

// ExampleRun shows a minimal 1-D consensus: four processes, one of which
// is faulty with an incorrect input, agree on an interval inside the hull
// of the three correct inputs.
func ExampleRun() {
	cfg := chc.RunConfig{
		Params: chc.Params{
			N: 4, F: 1, D: 1,
			Epsilon:    0.01,
			InputLower: 0, InputUpper: 10,
		},
		Inputs: []chc.Point{
			chc.NewPoint(2), chc.NewPoint(3), chc.NewPoint(4),
			chc.NewPoint(9), // incorrect input at the faulty process
		},
		Faulty: []chc.ProcID{3},
		Seed:   1,
	}
	result, err := chc.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var ids []int
	for id := range result.Outputs {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	// All outputs lie within [2, 4] (the correct hull) and within ε of one
	// another; print whether that held rather than the float endpoints.
	rep, _ := chc.CheckAgreement(result)
	fmt.Println("processes decided:", len(ids))
	fmt.Println("ε-agreement:", rep.Holds)
	fmt.Println("validity:", chc.CheckValidity(result, &cfg) == nil)
	// Output:
	// processes decided: 4
	// ε-agreement: true
	// validity: true
}

// ExampleMinimize minimises a linear cost over a triangle — exact, at a
// vertex.
func ExampleMinimize() {
	tri, err := chc.NewPolytope([]chc.Point{
		chc.NewPoint(0, 0), chc.NewPoint(4, 0), chc.NewPoint(0, 4),
	}, chc.DefaultEps)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fv, err := chc.Minimize(chc.LinearCost{A: chc.NewPoint(-1, 0)}, tri, chc.MinimizeOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("min at %v with value %g\n", fv.X, fv.Value)
	// Output:
	// min at (4, 0) with value -4
}

// ExampleLinearCombination demonstrates the paper's function L on
// intervals: 0.5·[0,2] + 0.5·[4,6] = [2,4].
func ExampleLinearCombination() {
	a, _ := chc.NewPolytope([]chc.Point{chc.NewPoint(0), chc.NewPoint(2)}, chc.DefaultEps)
	b, _ := chc.NewPolytope([]chc.Point{chc.NewPoint(4), chc.NewPoint(6)}, chc.DefaultEps)
	l, err := chc.LinearCombination([]*chc.Polytope{a, b}, []float64{0.5, 0.5}, chc.DefaultEps)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	lo, hi, _ := l.BoundingBox()
	fmt.Printf("[%g, %g]\n", lo[0], hi[0])
	// Output:
	// [2, 4]
}

// ExampleRunByzantine runs the Byzantine-tolerant transformation against an
// equivocating adversary.
func ExampleRunByzantine() {
	cfg := chc.ByzantineRunConfig{
		Params: chc.Params{
			N: 5, F: 1, D: 2,
			Epsilon:    0.2,
			InputLower: 0, InputUpper: 10,
		},
		Inputs: []chc.Point{
			chc.NewPoint(3, 3), chc.NewPoint(5, 3), chc.NewPoint(4, 5),
			chc.NewPoint(3.5, 4), chc.NewPoint(9, 9),
		},
		Faults: []chc.ByzantineFault{{Proc: 4, Behavior: chc.ByzEquivocator}},
		Seed:   1,
	}
	result, err := chc.RunByzantine(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	_, holds, err := chc.CheckByzantineAgreement(result)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("correct processes decided:", len(result.Outputs))
	fmt.Println("ε-agreement:", holds)
	fmt.Println("validity:", chc.CheckByzantineValidity(result, &cfg) == nil)
	// Output:
	// correct processes decided: 4
	// ε-agreement: true
	// validity: true
}

// ExampleRunBatch multiplexes two independent agreement tasks over one
// network.
func ExampleRunBatch() {
	params := chc.Params{
		N: 5, F: 1, D: 1,
		Epsilon:    0.05,
		InputLower: 0, InputUpper: 10,
	}
	cfg := chc.BatchConfig{
		N: 5,
		Instances: []chc.BatchInstance{
			{Params: params, Inputs: []chc.Point{
				chc.NewPoint(1), chc.NewPoint(2), chc.NewPoint(3), chc.NewPoint(2.5), chc.NewPoint(1.5),
			}},
			{Params: params, Inputs: []chc.Point{
				chc.NewPoint(8), chc.NewPoint(9), chc.NewPoint(8.5), chc.NewPoint(9.5), chc.NewPoint(8.2),
			}},
		},
		Seed: 1,
	}
	result, err := chc.RunBatch(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("instances:", len(result.Outputs))
	fmt.Println("decisions per instance:", len(result.Outputs[0]), len(result.Outputs[1]))
	// Output:
	// instances: 2
	// decisions per instance: 5 5
}

// ExampleHausdorff computes the agreement metric between two unit squares
// three units apart.
func ExampleHausdorff() {
	sq, _ := chc.NewPolytope([]chc.Point{
		chc.NewPoint(0, 0), chc.NewPoint(1, 0), chc.NewPoint(1, 1), chc.NewPoint(0, 1),
	}, chc.DefaultEps)
	moved := sq.Translate(chc.NewPoint(3, 0))
	d, err := chc.Hausdorff(sq, moved, chc.DefaultEps)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("d_H = %g\n", d)
	// Output:
	// d_H = 3
}

package main

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSelected(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "E10"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E10") || !strings.Contains(out, "quick mode") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestRunMultiple(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "E10, e11"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E10") || !strings.Contains(out, "E11") {
		t.Errorf("missing experiments:\n%s", out)
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E99"}, &buf); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.md")
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "E10", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "E10") {
		t.Error("file missing experiment output")
	}
	if buf.Len() != 0 {
		t.Error("stdout should be empty when -out is used")
	}
}

func TestRunCSVFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "E10", "-format", "csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# E10:") {
		t.Errorf("CSV output missing header comment:\n%s", out)
	}
	// The CSV body must parse.
	var body []string
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		body = append(body, line)
	}
	if len(body) < 2 {
		t.Fatalf("CSV body too short: %d lines", len(body))
	}
	r := csv.NewReader(strings.NewReader(strings.Join(body, "\n")))
	records, err := r.ReadAll()
	if err != nil {
		t.Fatalf("CSV does not parse: %v", err)
	}
	for i, rec := range records[1:] {
		if len(rec) != len(records[0]) {
			t.Errorf("row %d has %d fields, header has %d", i, len(rec), len(records[0]))
		}
	}
}

func TestRunBadFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "E10", "-format", "xml"}, &buf); err == nil {
		t.Error("unknown format should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Error("bad flag should error")
	}
}

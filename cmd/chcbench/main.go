// Command chcbench regenerates the experiment tables of EXPERIMENTS.md
// (one experiment per theorem/bound of the paper; see DESIGN.md for the
// index) and records machine-readable performance baselines.
//
// Usage:
//
//	chcbench                  # run every experiment, print markdown
//	chcbench -run E1,E4       # run selected experiments
//	chcbench -quick           # small grids (seconds instead of minutes)
//	chcbench -out results.md  # write to a file instead of stdout
//
// Benchmark mode (see internal/benchsuite for the case list):
//
//	chcbench -benchjson BENCH_abc1234.json
//	    run the benchmark suite, write ns/op + allocs/op per case as JSON
//	chcbench -benchjson /tmp/now.json -baseline BENCH_seed.json -max-regress 0.25
//	    additionally compare against a committed baseline and exit non-zero
//	    on any case regressing by more than 25% ns/op
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"chc/internal/benchsuite"
	"chc/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("chcbench", flag.ContinueOnError)
	var (
		runIDs     = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		quick      = fs.Bool("quick", false, "use small grids and trial counts")
		out        = fs.String("out", "", "write output to this file instead of stdout")
		format     = fs.String("format", "md", "output format: md|csv")
		benchJSON  = fs.String("benchjson", "", "run the benchmark suite and write JSON results to this file")
		benchOnly  = fs.String("bench", "", "comma-separated benchmark case names (default: all)")
		baseline   = fs.String("baseline", "", "baseline BENCH_*.json to compare against (requires -benchjson)")
		maxRegress = fs.Float64("max-regress", 0.25, "allowed fractional ns/op regression vs -baseline")
		revision   = fs.String("revision", "", "revision label recorded in the JSON header")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *benchJSON != "" {
		return runBenchSuite(*benchJSON, *benchOnly, *baseline, *maxRegress, *revision)
	}

	var selected []experiments.Experiment
	if *runIDs == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (have E1..E11)", id)
			}
			selected = append(selected, e)
		}
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "chcbench: close:", cerr)
			}
		}()
		w = f
	}

	render := (*experiments.Table).Render
	switch *format {
	case "md":
	case "csv":
		render = (*experiments.Table).RenderCSV
	default:
		return fmt.Errorf("unknown format %q (want md or csv)", *format)
	}

	opt := experiments.Options{Quick: *quick}
	mode := "full"
	if *quick {
		mode = "quick"
	}
	if *format == "md" {
		fmt.Fprintf(w, "# Experiment results (%s mode)\n\n", mode)
	}
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := render(table, w); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "chcbench: %s done in %v\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runBenchSuite measures the benchsuite cases, writes the JSON report, and
// optionally enforces a regression bound against a committed baseline.
func runBenchSuite(outPath, only, baselinePath string, maxRegress float64, revision string) error {
	var names map[string]bool
	if only != "" {
		names = make(map[string]bool)
		for _, n := range strings.Split(only, ",") {
			names[strings.TrimSpace(n)] = true
		}
	}
	if revision == "" {
		if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
			revision = strings.TrimSpace(string(out))
		}
	}
	start := time.Now()
	results := benchsuite.Run(names)
	for _, r := range results {
		fmt.Fprintf(os.Stderr, "chcbench: %-24s %12.0f ns/op %8d allocs/op %10d B/op\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	report := benchsuite.NewReport(revision, results)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "chcbench: wrote %s in %v\n", outPath, time.Since(start).Round(time.Millisecond))
	if baselinePath == "" {
		return nil
	}
	baseData, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base benchsuite.Report
	if err := json.Unmarshal(baseData, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	if errs := benchsuite.Compare(base.Benchmarks, results, maxRegress); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "chcbench: REGRESSION:", e)
		}
		return fmt.Errorf("%d benchmark regression(s) vs %s", len(errs), baselinePath)
	}
	fmt.Fprintf(os.Stderr, "chcbench: no ns/op regression > %.0f%% vs %s\n", maxRegress*100, baselinePath)
	return nil
}

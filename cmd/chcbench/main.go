// Command chcbench regenerates the experiment tables of EXPERIMENTS.md:
// one experiment per theorem/bound of the paper (see DESIGN.md for the
// index).
//
// Usage:
//
//	chcbench                  # run every experiment, print markdown
//	chcbench -run E1,E4       # run selected experiments
//	chcbench -quick           # small grids (seconds instead of minutes)
//	chcbench -out results.md  # write to a file instead of stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"chc/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("chcbench", flag.ContinueOnError)
	var (
		runIDs = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		quick  = fs.Bool("quick", false, "use small grids and trial counts")
		out    = fs.String("out", "", "write output to this file instead of stdout")
		format = fs.String("format", "md", "output format: md|csv")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var selected []experiments.Experiment
	if *runIDs == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (have E1..E11)", id)
			}
			selected = append(selected, e)
		}
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "chcbench: close:", cerr)
			}
		}()
		w = f
	}

	render := (*experiments.Table).Render
	switch *format {
	case "md":
	case "csv":
		render = (*experiments.Table).RenderCSV
	default:
		return fmt.Errorf("unknown format %q (want md or csv)", *format)
	}

	opt := experiments.Options{Quick: *quick}
	mode := "full"
	if *quick {
		mode = "quick"
	}
	if *format == "md" {
		fmt.Fprintf(w, "# Experiment results (%s mode)\n\n", mode)
	}
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := render(table, w); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "chcbench: %s done in %v\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

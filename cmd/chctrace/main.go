// Command chctrace re-analyses an exported execution trace (produced by
// `chcrun -tracefile ...` or chc.WriteTraceJSON) offline: it reconstructs
// the transition matrices M[t] of Section 5, checks row stochasticity and
// Lemma 3, verifies Theorem 1 (matrix-form states equal operational
// states), reports the ε-agreement achieved, and prints the per-round
// disagreement series.
//
// Usage:
//
//	chcrun -n 7 -f 1 -tracefile run.json
//	chctrace run.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"chc"
	"chc/internal/core"
	"chc/internal/geom"
	"chc/internal/polytope"
	"chc/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chctrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("chctrace", flag.ContinueOnError)
	verifyRounds := fs.Int("verify", 2, "verify Theorem 1 on the first N rounds (0 = skip)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: chctrace [-verify N] <trace.json>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "chctrace: close:", cerr)
		}
	}()
	result, err := core.ReadTraceJSON(f)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "trace: n=%d f=%d d=%d ε=%g model=%s, %d decided, faulty %v, crashed %v\n",
		result.Params.N, result.Params.F, result.Params.D, result.Params.Epsilon,
		result.Params.Model, len(result.Outputs), keys(result.Faulty), keys(result.Crashed))

	analysis, err := trace.Build(result)
	if err != nil {
		return err
	}
	if err := analysis.CheckRowStochastic(1e-9); err != nil {
		return fmt.Errorf("row stochasticity: %w", err)
	}
	fmt.Fprintln(w, "matrices   : all M[t] and P[t] row stochastic")
	if err := analysis.CheckLemma3(1e-9); err != nil {
		return fmt.Errorf("lemma 3: %w", err)
	}
	fmt.Fprintln(w, "lemma 3    : δ(P[t]) ≤ (1-1/n)^t for every round")

	if *verifyRounds > 0 {
		rounds := make([]int, 0, *verifyRounds)
		for t := 1; t <= analysis.TEnd && t <= *verifyRounds; t++ {
			rounds = append(rounds, t)
		}
		if err := analysis.VerifyTheorem1(result, rounds, 1e-6); err != nil {
			return fmt.Errorf("theorem 1: %w", err)
		}
		fmt.Fprintf(w, "theorem 1  : matrix form equals operational states on rounds %v\n", rounds)
	}

	if rep, err := core.CheckAgreement(result); err == nil {
		fmt.Fprintf(w, "agreement  : max d_H = %.3g <= %g : %v\n", rep.MaxHausdorff, rep.Epsilon, rep.Holds)
	}

	fmt.Fprintln(w, "per-round disagreement:")
	step := 1
	if analysis.TEnd > 16 {
		step = analysis.TEnd / 16
	}
	for t := 0; t <= analysis.TEnd; t += step {
		d, err := disagreementAt(result, t)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "  t=%-4d max d_H = %.6g\n", t, d)
	}
	return nil
}

// disagreementAt computes the max pairwise Hausdorff distance at round t.
func disagreementAt(result *core.RunResult, t int) (float64, error) {
	var polys []*polytope.Polytope
	for _, id := range result.FaultFree() {
		tr := result.Traces[id]
		var verts []geom.Point
		if t == 0 {
			verts = tr.H0
		} else {
			for _, rec := range tr.Rounds {
				if rec.Round == t {
					verts = rec.State
					break
				}
			}
		}
		if verts == nil {
			return 0, fmt.Errorf("process %d missing round %d", id, t)
		}
		p, err := polytope.New(verts, geom.DefaultEps)
		if err != nil {
			return 0, err
		}
		polys = append(polys, p)
	}
	return polytope.MaxPairwiseHausdorff(polys, geom.DefaultEps)
}

func keys(m map[chc.ProcID]bool) []int {
	var out []int
	for id := range m {
		out = append(out, int(id))
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chc"
)

// writeTrace produces a trace file by running a consensus instance.
func writeTrace(t *testing.T, path string) {
	t.Helper()
	cfg := chc.RunConfig{
		Params: chc.Params{
			N: 5, F: 1, D: 2,
			Epsilon:    0.1,
			InputLower: 0, InputUpper: 10,
		},
		Inputs: []chc.Point{
			chc.NewPoint(1, 1), chc.NewPoint(9, 2), chc.NewPoint(5, 9),
			chc.NewPoint(3, 4), chc.NewPoint(7, 6),
		},
		Faulty:  []chc.ProcID{2},
		Crashes: []chc.CrashPlan{{Proc: 2, AfterSends: 15}},
		Seed:    1,
	}
	result, err := chc.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil {
			t.Fatal(cerr)
		}
	}()
	if err := chc.WriteTraceJSON(f, result); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	writeTrace(t, path)
	var buf bytes.Buffer
	if err := run([]string{path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"row stochastic", "lemma 3", "theorem 1", "agreement", "per-round disagreement",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeSkipVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	writeTrace(t, path)
	var buf bytes.Buffer
	if err := run([]string{"-verify", "0", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "theorem 1") {
		t.Error("verify=0 should skip Theorem 1")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("missing argument should error")
	}
	if err := run([]string{"/does/not/exist.json"}, &buf); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &buf); err == nil {
		t.Error("corrupt trace should error")
	}
}

// Command chcviz renders a 2-D convex hull consensus execution as an SVG:
// the inputs, the correct-input hull, the round-0 polytopes of every
// fault-free process, and the (near-identical) final outputs, making the
// contraction toward agreement visible.
//
// Usage:
//
//	chcviz -n 7 -f 1 -eps 0.05 -seed 3 -o run.svg
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"chc"
)

const svgSize = 640.0

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chcviz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("chcviz", flag.ContinueOnError)
	var (
		n      = fs.Int("n", 7, "number of processes")
		f      = fs.Int("f", 1, "maximum faulty processes")
		eps    = fs.Float64("eps", 0.05, "agreement parameter ε")
		seed   = fs.Int64("seed", 3, "seed")
		out    = fs.String("o", "chc.svg", "output SVG path")
		rounds = fs.String("rounds", "", "also render per-round frames (comma-separated round numbers) to this grid SVG alongside -o")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	params := chc.Params{
		N: *n, F: *f, D: 2,
		Epsilon:    *eps,
		InputLower: 0, InputUpper: 10,
	}
	rng := rand.New(rand.NewSource(*seed))
	inputs := make([]chc.Point, *n)
	for i := range inputs {
		inputs[i] = chc.NewPoint(rng.Float64()*10, rng.Float64()*10)
	}
	cfg := chc.RunConfig{
		Params: params,
		Inputs: inputs,
		Faulty: []chc.ProcID{0},
		Seed:   *seed,
	}
	result, err := chc.Run(cfg)
	if err != nil {
		return err
	}

	file, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := file.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "chcviz: close:", cerr)
		}
	}()
	if err := render(file, &cfg, result); err != nil {
		return err
	}
	fmt.Printf("chcviz: wrote %s (n=%d f=%d ε=%g, %d rounds)\n", *out, *n, *f, *eps, params.TEnd())

	if *rounds != "" {
		gridPath := strings.TrimSuffix(*out, ".svg") + "_rounds.svg"
		var roundList []int
		for _, part := range strings.Split(*rounds, ",") {
			r, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad round %q", part)
			}
			roundList = append(roundList, r)
		}
		gf, err := os.Create(gridPath)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := gf.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "chcviz: close:", cerr)
			}
		}()
		if err := renderRounds(gf, &cfg, result, roundList); err != nil {
			return err
		}
		fmt.Printf("chcviz: wrote %s (rounds %v)\n", gridPath, roundList)
	}
	return nil
}

// toSVG maps input-domain coordinates [0,10]² to SVG pixels (y flipped).
func toSVG(p chc.Point) (float64, float64) {
	const margin = 40.0
	scale := (svgSize - 2*margin) / 10.0
	return margin + p[0]*scale, svgSize - margin - p[1]*scale
}

func polygonPath(verts []chc.Point) string {
	s := ""
	for i, v := range verts {
		x, y := toSVG(v)
		if i == 0 {
			s += fmt.Sprintf("M %.1f %.1f ", x, y)
		} else {
			s += fmt.Sprintf("L %.1f %.1f ", x, y)
		}
	}
	return s + "Z"
}

func render(w io.Writer, cfg *chc.RunConfig, result *chc.RunResult) error {
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		int(svgSize), int(svgSize), int(svgSize), int(svgSize))
	fmt.Fprintln(w, `<rect width="100%" height="100%" fill="white"/>`)

	// Correct-input hull (background reference).
	hull, err := chc.CorrectInputHull(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, `<path d="%s" fill="#eef4ff" stroke="#8fb2e8" stroke-width="1.5"/>`+"\n",
		polygonPath(hull.Vertices()))

	colors := []string{"#c0392b", "#27ae60", "#8e44ad", "#d68910", "#16a085", "#2c3e50", "#7f8c8d", "#9b59b6", "#2980b9"}

	// Round-0 polytopes (dashed) and final outputs (solid).
	for idx, id := range result.FaultFree() {
		color := colors[idx%len(colors)]
		trace := result.Traces[id]
		if len(trace.H0) > 0 {
			h0, err := chc.NewPolytope(trace.H0, chc.DefaultEps)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, `<path d="%s" fill="none" stroke="%s" stroke-width="1" stroke-dasharray="4 3" opacity="0.6"/>`+"\n",
				polygonPath(h0.Vertices()), color)
		}
		if out, ok := result.Outputs[id]; ok {
			fmt.Fprintf(w, `<path d="%s" fill="%s" fill-opacity="0.12" stroke="%s" stroke-width="2"/>`+"\n",
				polygonPath(out.Vertices()), color, color)
		}
	}

	// Inputs.
	for i, p := range cfg.Inputs {
		x, y := toSVG(p)
		fill := "#2c3e50"
		if result.Faulty[chc.ProcID(i)] {
			fill = "#e74c3c"
		}
		fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="5" fill="%s"/>`+"\n", x, y, fill)
		fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-size="12" font-family="sans-serif">p%d</text>`+"\n", x+7, y-5, i)
	}

	fmt.Fprintf(w, `<text x="16" y="24" font-size="14" font-family="sans-serif">`+
		`convex hull consensus: dashed = h[0], solid = outputs, shaded = correct-input hull</text>`+"\n")
	fmt.Fprintln(w, "</svg>")
	return nil
}

// renderRounds draws a grid of small multiples, one frame per requested
// round (0 = h[0]), showing the per-round states of all fault-free
// processes contracting toward agreement.
func renderRounds(w io.Writer, cfg *chc.RunConfig, result *chc.RunResult, rounds []int) error {
	const cell = 320.0
	cols := len(rounds)
	if cols == 0 {
		return fmt.Errorf("chcviz: no rounds requested")
	}
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		int(cell)*cols, int(cell), int(cell)*cols, int(cell))
	fmt.Fprintln(w, `<rect width="100%" height="100%" fill="white"/>`)
	colors := []string{"#c0392b", "#27ae60", "#8e44ad", "#d68910", "#16a085", "#2c3e50", "#7f8c8d", "#9b59b6", "#2980b9"}

	toCell := func(p chc.Point, col int) (float64, float64) {
		const margin = 30.0
		scale := (cell - 2*margin) / 10.0
		return float64(col)*cell + margin + p[0]*scale, cell - margin - p[1]*scale
	}
	cellPath := func(verts []chc.Point, col int) string {
		s := ""
		for i, v := range verts {
			x, y := toCell(v, col)
			if i == 0 {
				s += fmt.Sprintf("M %.1f %.1f ", x, y)
			} else {
				s += fmt.Sprintf("L %.1f %.1f ", x, y)
			}
		}
		return s + "Z"
	}

	hull, err := chc.CorrectInputHull(cfg)
	if err != nil {
		return err
	}
	for col, round := range rounds {
		fmt.Fprintf(w, `<path d="%s" fill="#eef4ff" stroke="#8fb2e8" stroke-width="1"/>`+"\n",
			cellPath(hull.Vertices(), col))
		for idx, id := range result.FaultFree() {
			trace := result.Traces[id]
			var verts []chc.Point
			if round == 0 {
				verts = trace.H0
			} else {
				for _, rec := range trace.Rounds {
					if rec.Round == round {
						verts = rec.State
						break
					}
				}
			}
			if len(verts) == 0 {
				continue
			}
			poly, err := chc.NewPolytope(verts, chc.DefaultEps)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5" opacity="0.8"/>`+"\n",
				cellPath(poly.Vertices(), col), colors[idx%len(colors)])
		}
		fmt.Fprintf(w, `<text x="%.1f" y="20" font-size="13" font-family="sans-serif">round %d</text>`+"\n",
			float64(col)*cell+12, round)
	}
	fmt.Fprintln(w, "</svg>")
	return nil
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chc"
)

func TestRenderSVG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.svg")
	if err := run([]string{"-n", "5", "-f", "1", "-eps", "0.1", "-seed", "3", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	svg := string(data)
	for _, want := range []string{"<svg", "</svg>", "<path", "<circle"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One circle per process.
	if got := strings.Count(svg, "<circle"); got != 5 {
		t.Errorf("%d circles, want 5", got)
	}
}

func TestRenderDirect(t *testing.T) {
	params := chc.Params{
		N: 5, F: 1, D: 2,
		Epsilon:    0.2,
		InputLower: 0, InputUpper: 10,
	}
	inputs := []chc.Point{
		chc.NewPoint(1, 1), chc.NewPoint(9, 1), chc.NewPoint(5, 9),
		chc.NewPoint(5, 5), chc.NewPoint(3, 4),
	}
	cfg := chc.RunConfig{Params: params, Inputs: inputs, Seed: 1}
	result, err := chc.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := render(&buf, &cfg, result); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "<svg") {
		t.Error("render did not produce SVG")
	}
}

func TestPolygonPath(t *testing.T) {
	p := polygonPath([]chc.Point{chc.NewPoint(0, 0), chc.NewPoint(10, 0), chc.NewPoint(0, 10)})
	if !strings.HasPrefix(p, "M ") || !strings.HasSuffix(p, "Z") {
		t.Errorf("path = %q", p)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should error")
	}
}

func TestRenderRoundsGrid(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.svg")
	if err := run([]string{"-n", "5", "-f", "1", "-eps", "0.1", "-seed", "3", "-o", path, "-rounds", "0,1,5"}); err != nil {
		t.Fatal(err)
	}
	gridPath := filepath.Join(dir, "run_rounds.svg")
	data, err := os.ReadFile(gridPath)
	if err != nil {
		t.Fatal(err)
	}
	svg := string(data)
	for _, want := range []string{"round 0", "round 1", "round 5"} {
		if !strings.Contains(svg, want) {
			t.Errorf("grid missing frame label %q", want)
		}
	}
	if err := run([]string{"-o", path, "-rounds", "nope"}); err == nil {
		t.Error("bad round list should error")
	}
}

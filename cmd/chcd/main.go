// Command chcd runs the consensus engine as a resident daemon: one warm
// cluster of n processes serving a stream of consensus instances over an
// HTTP/JSON API, with admission control, result retention, optional bearer
// auth and TLS, and graceful drain on SIGTERM/SIGINT.
//
// Usage examples:
//
//	chcd -n 5 -addr 127.0.0.1:8080
//	chcd -n 5 -transport tcp -wal-dir /var/lib/chc -addr :8080
//	chcd -n 5 -addr :8443 -cert server.pem -key server.key -token $TOKEN
//	chcd -n 5 -addr :8080 -metrics-addr :9100 -max-active 32 -max-queue 128
//	chcd -n 6 -addr :8080 -wan us-eu-ap -wan-seed 3 -instance-deadline 2m
//
// The API:
//
//	POST /v1/instances             submit an instance (JSON body), 202 with {id}
//	GET  /v1/instances/{id}        current status (+ result once decided)
//	GET  /v1/instances/{id}/watch  long-poll until terminal (timeout_ms=N)
//	GET  /v1/healthz               admission funnel counters (503 while draining)
//
// On SIGTERM/SIGINT the daemon stops admitting (503), finishes queued and
// running instances, closes the cluster's instance stream — checkpointing
// WALs when journaling is on — and exits 0. A second signal forces exit.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chc"
	"chc/internal/engine"
	"chc/internal/service"
	"chc/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "chcd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a termination signal drains it.
// When ready is non-nil, the bound API address is sent on it once the
// daemon is accepting submissions (the smoke test uses this).
func run(args []string, w io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("chcd", flag.ContinueOnError)
	var (
		n            = fs.Int("n", 5, "number of processes in the resident cluster")
		transport    = fs.String("transport", "inproc", "cluster transport: inproc|tcp")
		addr         = fs.String("addr", "127.0.0.1:8080", "service API bind address (host:port; port 0 picks a free port)")
		token        = fs.String("token", "", "require `Authorization: Bearer <token>` on every API request")
		certFile     = fs.String("cert", "", "serve the API over TLS with this certificate (requires -key)")
		keyFile      = fs.String("key", "", "TLS private key for -cert")
		maxActive    = fs.Int("max-active", 64, "maximum concurrently running instances")
		maxQueue     = fs.Int("max-queue", 256, "maximum queued instances; submissions beyond active+queued get 429")
		retention    = fs.Duration("retention", 10*time.Minute, "how long finished results stay queryable before eviction")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain after SIGTERM")
		walDir       = fs.String("wal-dir", "", "journal protocol state to per-process write-ahead logs in this directory")
		walCkpt      = fs.Int64("wal-checkpoint", 0, "rotate each WAL and snapshot whenever its live file exceeds this many bytes; 0 disables (requires -wal-dir)")
		walRetire    = fs.Int("wal-retire", 64, "WAL retention horizon: checkpoint and compact every journal after this many retired instances; 0 disables (requires -wal-dir)")
		chaosSpec    = fs.String("chaos", "off", "network fault profile: off|light|heavy or drop=P,dup=P,delay=LO-HI (testing)")
		chaosSeed    = fs.Int64("chaos-seed", 1, "seed for the deterministic chaos fault plan")
		wanSpec      = fs.String("wan", "off", "wide-area link model: off, a topology (3-regions|us-eu-ap|star|clos), or topo,regions=R,delay=S,jitter=J,bw=RATE,cut=us->eu@LO-HI")
		wanSeed      = fs.Int64("wan-seed", 1, "seed for the deterministic WAN delay schedule")
		deadline     = fs.Duration("instance-deadline", 0, "abort instances still undecided after this long (outcome \"deadline\"); 0 disables")
		metricsAddr  = fs.String("metrics-addr", "", "enable telemetry and serve /metrics, /runs, /debug/pprof on this address")
		metricsToken = fs.String("metrics-token", "", "bearer token for the telemetry server (defaults to -token)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := service.Config{
		N:                *n,
		MaxActive:        *maxActive,
		MaxQueue:         *maxQueue,
		Retention:        *retention,
		DrainTimeout:     *drainTimeout,
		WALDir:           *walDir,
		ChaosSeed:        *chaosSeed,
		InstanceDeadline: *deadline,
	}
	if *walDir != "" {
		cfg.WALRetire = *walRetire
	}
	switch *transport {
	case "inproc":
		cfg.Transport = engine.TransportChannel
	case "tcp":
		cfg.Transport = engine.TransportTCP
	default:
		return fmt.Errorf("-transport: unknown transport %q (inproc|tcp)", *transport)
	}
	prof, err := chc.ParseChaosProfile(*chaosSpec)
	if err != nil {
		return fmt.Errorf("-chaos: %w", err)
	}
	if prof.Enabled() {
		cfg.Chaos = &prof
	}
	wanPlan, err := chc.ParseWANPlan(*wanSpec)
	if err != nil {
		return fmt.Errorf("-wan: %w", err)
	}
	if wanPlan.Enabled() {
		cfg.WAN = &wanPlan
		cfg.WANSeed = *wanSeed
	}
	if *walCkpt > 0 {
		if *walDir == "" {
			return fmt.Errorf("-wal-checkpoint requires -wal-dir")
		}
		cfg.Checkpoint = chc.WALCheckpointPolicy{EveryBytes: *walCkpt}
	}
	if *walDir != "" {
		// A daemon owns its state directory: create it rather than
		// demanding the operator pre-provision it.
		if err := os.MkdirAll(*walDir, 0o700); err != nil {
			return fmt.Errorf("-wal-dir: %w", err)
		}
	}

	if *metricsAddr != "" {
		mtok := *metricsToken
		if mtok == "" {
			mtok = *token
		}
		msrv, err := telemetry.EnsureServerWith(telemetry.ServerConfig{
			Addr: *metricsAddr, Token: mtok, CertFile: *certFile, KeyFile: *keyFile,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "chcd: telemetry on %s\n", msrv.URL())
	}

	srv, err := service.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	api, err := srv.ServeAPI(service.APIConfig{
		Addr: *addr, Token: *token, CertFile: *certFile, KeyFile: *keyFile,
	})
	if err != nil {
		return err
	}
	defer api.Close()

	fmt.Fprintf(w, "chcd: n=%d transport=%s serving on %s\n", *n, *transport, api.URL())
	if wanPlan.Enabled() {
		fmt.Fprintf(w, "chcd: wan model %s seed=%d\n", wanPlan.String(), *wanSeed)
	}
	if ready != nil {
		ready <- api.Addr()
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigs)
	sig := <-sigs
	fmt.Fprintf(w, "chcd: %v, draining (timeout %v)\n", sig, *drainTimeout)

	// A second signal aborts the drain.
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(*drainTimeout) }()
	select {
	case err := <-drained:
		if err != nil {
			return fmt.Errorf("drain: %w", err)
		}
	case sig := <-sigs:
		return fmt.Errorf("forced shutdown on second signal %v", sig)
	}
	if err := srv.Close(); err != nil {
		return err
	}
	fmt.Fprintln(w, "chcd: drained, bye")
	return nil
}

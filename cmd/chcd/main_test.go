package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonServeSubmitDrain is the daemon smoke test: start chcd on a free
// port, submit an instance over the HTTP API, send ourselves SIGTERM, and
// assert the daemon drains (instance decided) and exits cleanly.
func TestDaemonServeSubmitDrain(t *testing.T) {
	var out bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-n", "4", "-addr", "127.0.0.1:0", "-transport", "inproc",
			"-drain-timeout", "60s",
		}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v\n%s", err, out.String())
	case <-time.After(30 * time.Second):
		t.Fatal("daemon not ready after 30s")
	}
	base := "http://" + addr

	body := `{"f":1,"d":1,"epsilon":0.05,"input_upper":12,"inputs":[[1],[4],[7],[10]]}`
	resp, err := http.Post(base+"/v1/instances", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var accepted struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d", resp.StatusCode)
	}

	// SIGTERM with the instance possibly still in flight: the drain must
	// finish it before the daemon exits.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, out.String())
		}
	case <-time.After(90 * time.Second):
		t.Fatalf("daemon did not drain and exit\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained, bye") {
		t.Fatalf("missing drain farewell:\n%s", out.String())
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-transport", "bogus"}, &out, nil); err == nil {
		t.Fatal("accepted bogus transport")
	}
	if err := run([]string{"-wal-checkpoint", "4096"}, &out, nil); err == nil {
		t.Fatal("accepted -wal-checkpoint without -wal-dir")
	}
	if err := run([]string{"-chaos", "drop=banana"}, &out, nil); err == nil {
		t.Fatal("accepted malformed chaos spec")
	}
}

// TestDaemonRejectsSecondSignalMessage exercises the usage text path.
func TestDaemonUsageError(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-definitely-not-a-flag"}, &out, nil)
	if err == nil {
		t.Fatal("accepted unknown flag")
	}
	if !strings.Contains(fmt.Sprint(err), "definitely-not-a-flag") {
		t.Fatalf("unhelpful flag error: %v", err)
	}
}

package main

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestMeshGateOnly runs the WAN sim-mesh gate stand-alone and checks it
// reports a reproduced schedule for a ≥64-process mesh.
func TestMeshGateOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mesh", "64", "-mesh-rounds", "1", "-duration", "0"}, &buf); err != nil {
		t.Fatalf("mesh gate: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "mesh gate   : n=64") || !strings.Contains(out, "reproduced") {
		t.Fatalf("unexpected gate report:\n%s", out)
	}
}

// TestMeshGateDeterministicAcrossProcessesShape runs the gate twice in this
// process and checks the printed schedule fingerprint is identical — the
// same property the gate itself enforces across its two internal runs, but
// here across independent scheduler constructions.
func TestMeshGateFingerprintStable(t *testing.T) {
	fingerprint := func() string {
		var buf bytes.Buffer
		if err := run([]string{"-mesh", "48", "-mesh-rounds", "2", "-duration", "0", "-wan", "us-eu-ap", "-wan-seed", "11"}, &buf); err != nil {
			t.Fatalf("mesh gate: %v", err)
		}
		m := regexp.MustCompile(`schedule (0x[0-9a-f]+)`).FindStringSubmatch(buf.String())
		if m == nil {
			t.Fatalf("no fingerprint in:\n%s", buf.String())
		}
		return m[1]
	}
	if a, b := fingerprint(), fingerprint(); a != b {
		t.Fatalf("same plan and seed fingerprinted %s then %s", a, b)
	}
}

// TestSoakSelfSmoke drives a short soak against an in-process daemon under a
// scaled geo topology: every instance must decide, pass its client-side
// audit, and leave the drain with zero undecided instances.
func TestSoakSelfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	err := run([]string{
		"-self", "-n", "5", "-duration", "1500ms", "-rate", "8",
		"-wan", "3-regions,delay=0.002", "-wan-seed", "3", "-seed", "5",
		"-instance-deadline", "60s",
	}, &buf)
	out := buf.String()
	if err != nil {
		t.Fatalf("soak: %v\n%s", err, out)
	}
	if !strings.Contains(out, "drain       : zero undecided instances") {
		t.Fatalf("missing drain line:\n%s", out)
	}
	if !strings.Contains(out, " 0 failed, 0 deadlined") {
		t.Fatalf("instances failed:\n%s", out)
	}
	if strings.Contains(out, "violation") {
		t.Fatalf("audit violations:\n%s", out)
	}
}

// TestSoakNeedsTarget pins the flag contract: a soak without a daemon (and
// without a mesh-only escape hatch) is an error, not a hang.
func TestSoakNeedsTarget(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-duration", "1s"}, &buf); err == nil {
		t.Fatal("run without -addr/-self succeeded")
	}
	if err := run([]string{"-duration", "0"}, &buf); err == nil {
		t.Fatal("run with nothing to do succeeded")
	}
	if err := run([]string{"-self", "-addr", "x:1", "-duration", "1s"}, &buf); err == nil {
		t.Fatal("-self with -addr succeeded")
	}
}

// TestScrapeRegions feeds the Prometheus-text parser a synthetic exposition
// and checks the reconstructed histograms quantile correctly.
func TestScrapeRegions(t *testing.T) {
	const text = `# HELP chc_wan_region_decide_seconds Open-to-decide latency by deciding region.
# TYPE chc_wan_region_decide_seconds histogram
chc_wan_region_decide_seconds_bucket{region="us",le="0.1"} 5
chc_wan_region_decide_seconds_bucket{region="us",le="0.5"} 9
chc_wan_region_decide_seconds_bucket{region="us",le="+Inf"} 10
chc_wan_region_decide_seconds_sum{region="us"} 2.5
chc_wan_region_decide_seconds_count{region="us"} 10
chc_wan_region_decide_seconds_bucket{region="eu",le="0.1"} 1
chc_wan_region_decide_seconds_bucket{region="eu",le="+Inf"} 1
chc_wan_region_decide_seconds_sum{region="eu"} 0.05
chc_wan_region_decide_seconds_count{region="eu"} 1
other_metric 42
`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, text)
	}))
	defer ts.Close()

	snap, err := scrapeRegions(&http.Client{Timeout: 5 * time.Second}, ts.URL, "")
	if err != nil {
		t.Fatal(err)
	}
	fam := snap.Find("chc_wan_region_decide_seconds")
	if fam == nil || len(fam.Samples) != 2 {
		t.Fatalf("parsed families: %+v", snap.Metrics)
	}
	var us, eu bool
	for i := range fam.Samples {
		sm := &fam.Samples[i]
		switch sm.Labels["region"] {
		case "us":
			us = true
			if sm.Histogram.Count != 10 {
				t.Errorf("us count = %d, want 10", sm.Histogram.Count)
			}
			if q := sm.Histogram.Quantile(0.5); math.IsNaN(q) || q > 0.5 {
				t.Errorf("us p50 = %v, want ≤ 0.5", q)
			}
		case "eu":
			eu = true
			if sm.Histogram.Count != 1 {
				t.Errorf("eu count = %d, want 1", sm.Histogram.Count)
			}
		}
	}
	if !us || !eu {
		t.Fatalf("missing regions (us=%v eu=%v)", us, eu)
	}

	var buf bytes.Buffer
	reportRegions(&buf, snap)
	if !strings.Contains(buf.String(), "region us") || !strings.Contains(buf.String(), "region eu") {
		t.Fatalf("report rows:\n%s", buf.String())
	}
}

// TestBuildInstanceMix checks the stream rotates protocols and plants the
// Byzantine adversary with a rotating behavior at the last process.
func TestBuildInstanceMix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cc := buildInstance(6, 1, 2, 0.05, "cc", 0, rng)
	if cc.Protocol != "" || len(cc.Inputs) != 6 || len(cc.Faults) != 0 {
		t.Fatalf("cc instance: %+v", cc)
	}
	byz := buildInstance(6, 1, 2, 0.05, "byzantine", 2, rng)
	if byz.Protocol != "byzantine" || len(byz.Faults) != 1 || byz.Faults[0].Proc != 5 {
		t.Fatalf("byzantine instance: %+v", byz)
	}
	seen := map[string]bool{}
	for k := 0; k < 12; k++ {
		b := buildInstance(6, 1, 2, 0.05, "byzantine", k, rng)
		seen[b.Faults[0].Behavior] = true
	}
	if len(seen) != len(byzBehaviors) {
		t.Fatalf("behaviors seen = %v, want all of %v", seen, byzBehaviors)
	}
}

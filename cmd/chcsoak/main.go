// Command chcsoak load-tests a resident consensus daemon (chcd): it drives
// a sustained stream of mixed CC / vector / Byzantine instances through the
// HTTP/JSON API for a configured duration and rate, audits every decided
// instance client-side (Theorem 2 validity + ε-agreement), and reports
// decide-latency percentiles, per-region latency when a WAN model is active,
// and steady-state instance throughput. It exits nonzero on any audit
// violation, failed instance, or instance left undecided after drain.
//
// Usage examples:
//
//	chcsoak -self -duration 10s -rate 8 -wan us-eu-ap       # in-process daemon
//	chcsoak -addr 127.0.0.1:8080 -duration 30s -rate 16     # live chcd
//	chcsoak -self -mesh 64 -duration 5s -wan 3-regions      # + WAN sim-mesh gate
//	chcsoak -mesh 128 -duration 0                           # mesh gate only
//
// The -mesh gate exercises the WAN subsystem at scale before the soak: it
// pumps full-mesh rounds of an n-process virtual-time schedule through the
// seeded model twice and requires complete delivery and a bitwise-identical
// delivery order across the two runs.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"chc"
	"chc/internal/dist"
	"chc/internal/telemetry"
	"chc/internal/wan"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chcsoak:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("chcsoak", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "", "host:port (or full URL) of a running chcd; empty requires -self or a mesh-only run")
		token     = fs.String("token", "", "bearer token for the daemon API")
		self      = fs.Bool("self", false, "start an in-process daemon and soak it (no external chcd needed)")
		n         = fs.Int("n", 6, "process count of the -self daemon's cluster")
		transport = fs.String("transport", "inproc", "-self cluster transport: inproc|tcp")
		wanSpec   = fs.String("wan", "off", "WAN model for the -self daemon and the -mesh gate: off, a topology (3-regions|us-eu-ap|star|clos), or a full plan spec")
		wanSeed   = fs.Int64("wan-seed", 1, "seed for the deterministic WAN delay schedule")
		deadline  = fs.Duration("instance-deadline", 2*time.Minute, "per-instance deadline of the -self daemon (0 disables)")
		walDir    = fs.String("wal-dir", "", "journal the -self daemon's cluster to WALs in this directory")
		walRetire = fs.Int("wal-retire", 64, "WAL retention horizon of the -self daemon (requires -wal-dir)")
		duration  = fs.Duration("duration", 10*time.Second, "submission window of the soak (0 skips the soak; useful with -mesh)")
		rate      = fs.Float64("rate", 8, "target submissions per second")
		conc      = fs.Int("concurrency", 16, "maximum in-flight instances the harness holds open")
		f         = fs.Int("f", 1, "per-instance fault tolerance")
		d         = fs.Int("d", 2, "input dimension")
		eps       = fs.Float64("eps", 0.05, "per-instance agreement parameter ε")
		mix       = fs.String("mix", "cc,vector,byzantine", "comma-separated protocol rotation for the stream")
		seed      = fs.Int64("seed", 1, "input-generation seed")
		mesh      = fs.Int("mesh", 0, "run the WAN sim-mesh gate at this many processes before the soak (0 skips)")
		meshRound = fs.Int("mesh-rounds", 3, "full-mesh exchange rounds the gate pumps through the virtual-time schedule")
		watchMax  = fs.Duration("watch-timeout", 2*time.Minute, "bound on waiting for any one instance to reach a terminal state")
		metrics   = fs.String("metrics-url", "", "scrape this Prometheus /metrics endpoint after the soak for per-region decide latency (self mode reads the in-process registry instead)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	wanPlan, err := chc.ParseWANPlan(*wanSpec)
	if err != nil {
		return fmt.Errorf("-wan: %w", err)
	}

	if *mesh > 0 {
		if err := meshGate(w, *mesh, *meshRound, wanPlan, *wanSeed); err != nil {
			return err
		}
	}
	if *duration <= 0 {
		if *mesh > 0 {
			return nil
		}
		return fmt.Errorf("-duration 0 without -mesh: nothing to do")
	}

	base := strings.TrimSuffix(*addr, "/")
	if base != "" && !strings.Contains(base, "://") {
		base = "http://" + base
	}
	var srv *chc.ServiceServer
	if *self {
		if base != "" {
			return fmt.Errorf("-self and -addr are mutually exclusive")
		}
		chc.EnableTelemetry(true)
		cfg := chc.ServiceConfig{
			N:                *n,
			InstanceDeadline: *deadline,
			WALDir:           *walDir,
			Retention:        -1, // every record must survive to the post-drain audit
		}
		switch *transport {
		case "inproc":
			cfg.Transport = chc.BatchInProcess
		case "tcp":
			cfg.Transport = chc.BatchTCP
		default:
			return fmt.Errorf("-transport: unknown transport %q (inproc|tcp)", *transport)
		}
		if wanPlan.Enabled() {
			cfg.WAN = &wanPlan
			cfg.WANSeed = *wanSeed
		}
		if *walDir != "" {
			if err := os.MkdirAll(*walDir, 0o700); err != nil {
				return fmt.Errorf("-wal-dir: %w", err)
			}
			cfg.WALRetire = *walRetire
		}
		srv, err = chc.Serve(cfg)
		if err != nil {
			return err
		}
		defer srv.Close()
		api, err := srv.ServeAPI(chc.ServiceAPIConfig{Addr: "127.0.0.1:0", Token: *token})
		if err != nil {
			return err
		}
		defer api.Close()
		base = api.URL()
		fmt.Fprintf(w, "soak target : in-process daemon n=%d transport=%s on %s\n", *n, *transport, base)
		if wanPlan.Enabled() {
			fmt.Fprintf(w, "wan         : %s seed=%d\n", wanPlan.String(), *wanSeed)
		}
	}
	if base == "" {
		return fmt.Errorf("need -addr or -self")
	}

	cl := &client{base: base, token: *token, hc: &http.Client{Timeout: *watchMax + 10*time.Second}}
	nn, err := cl.clusterN()
	if err != nil {
		return fmt.Errorf("probe %s: %w", base, err)
	}

	protocols := strings.Split(*mix, ",")
	for i, p := range protocols {
		protocols[i] = strings.TrimSpace(p)
		switch protocols[i] {
		case "cc", "vector", "byzantine":
		default:
			return fmt.Errorf("-mix: unknown protocol %q", protocols[i])
		}
	}

	st := &soakState{watchMax: *watchMax, eps: *eps}
	rng := rand.New(rand.NewSource(*seed))
	sem := make(chan struct{}, *conc)
	interval := time.Duration(float64(time.Second) / *rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	start := time.Now()
	end := start.Add(*duration)
	var wg sync.WaitGroup
	for k := 0; time.Now().Before(end); k++ {
		sub := buildInstance(nn, *f, *d, *eps, protocols[k%len(protocols)], k, rng)
		sem <- struct{}{}
		id, rejected, err := cl.submit(sub)
		if err != nil {
			<-sem
			return fmt.Errorf("submit %d: %w", k, err)
		}
		st.addRejects(rejected)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			st.observe(cl, id, sub)
		}()
		time.Sleep(time.Until(minTime(time.Now().Add(interval), end)))
	}
	wg.Wait()

	undecided := 0
	if srv != nil {
		if err := srv.Drain(0); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		total, _, _, finished := srv.Counts()
		undecided = total - finished
	}
	elapsed := time.Since(start)

	st.report(w, elapsed, undecided)
	if *self {
		reportRegions(w, chc.TelemetrySnapshot())
	} else if *metrics != "" {
		snap, err := scrapeRegions(cl.hc, *metrics, *token)
		if err != nil {
			fmt.Fprintf(w, "regions     : scrape failed: %v\n", err)
		} else {
			reportRegions(w, snap)
		}
	}
	return st.verdict(undecided)
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}

// meshGate pumps rounds of an n-process full mesh through the WAN
// virtual-time scheduler twice and requires complete delivery plus a
// bitwise-identical delivery order across the runs.
func meshGate(w io.Writer, n, rounds int, plan chc.WANPlan, seed int64) error {
	if !plan.Enabled() {
		var err error
		if plan, err = chc.ParseWANPlan("3-regions"); err != nil {
			return err
		}
	}
	if rounds <= 0 {
		rounds = 1
	}
	want := rounds * n * (n - 1)
	runOnce := func() (uint64, time.Duration, int64, error) {
		sched, err := wan.NewSimScheduler(plan, n, seed)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("-mesh: %w", err)
		}
		channels := make([]dist.ChannelState, 0, n*(n-1))
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					channels = append(channels, dist.ChannelState{
						From: dist.ProcID(i), To: dist.ProcID(j), Pending: rounds, Kind: "mesh",
					})
				}
			}
		}
		h := fnv.New64a()
		rng := rand.New(rand.NewSource(seed))
		var buf [8]byte
		// The scheduler contract lists only non-empty queues, so present a
		// filtered view each pick and map the choice back.
		view := make([]dist.ChannelState, 0, len(channels))
		idxs := make([]int, 0, len(channels))
		for delivered := 0; delivered < want; delivered++ {
			view, idxs = view[:0], idxs[:0]
			for i := range channels {
				if channels[i].Pending > 0 {
					view = append(view, channels[i])
					idxs = append(idxs, i)
				}
			}
			pick := sched.Pick(view, rng)
			if pick < 0 || pick >= len(view) {
				return 0, 0, 0, fmt.Errorf("-mesh: scheduler picked invalid channel %d", pick)
			}
			ch := &channels[idxs[pick]]
			ch.Pending--
			// Hash the delivered edge, not the view index, so the fingerprint
			// is a property of the schedule itself.
			binaryPutEdge(&buf, ch.From, ch.To, delivered)
			h.Write(buf[:])
		}
		return h.Sum64(), sched.Elapsed(), sched.Delivered(), nil
	}
	start := time.Now()
	h1, virt, delivered, err := runOnce()
	if err != nil {
		return err
	}
	h2, _, _, err := runOnce()
	if err != nil {
		return err
	}
	if delivered != int64(want) {
		return fmt.Errorf("-mesh: %d of %d deliveries", delivered, want)
	}
	if h1 != h2 {
		return fmt.Errorf("-mesh: same seed produced different delivery orders (%#x vs %#x)", h1, h2)
	}
	fmt.Fprintf(w, "mesh gate   : n=%d %s: %d delivered in %v virtual time (%v wall), schedule %#x reproduced\n",
		n, plan.String(), delivered, virt.Round(time.Microsecond), time.Since(start).Round(time.Millisecond), h1)
	return nil
}

// binaryPutEdge encodes one delivery (ordinal plus directed edge) for the
// schedule fingerprint.
func binaryPutEdge(buf *[8]byte, from, to dist.ProcID, ordinal int) {
	buf[0] = byte(from)
	buf[1] = byte(from >> 8)
	buf[2] = byte(to)
	buf[3] = byte(to >> 8)
	buf[4] = byte(ordinal)
	buf[5] = byte(ordinal >> 8)
	buf[6] = byte(ordinal >> 16)
	buf[7] = byte(ordinal >> 24)
}

// submitReq mirrors the chcd POST /v1/instances body.
type submitReq struct {
	Protocol   string      `json:"protocol,omitempty"`
	F          int         `json:"f"`
	D          int         `json:"d"`
	Epsilon    float64     `json:"epsilon"`
	InputLower float64     `json:"input_lower"`
	InputUpper float64     `json:"input_upper"`
	Inputs     [][]float64 `json:"inputs"`
	Faults     []faultReq  `json:"faults,omitempty"`
}

type faultReq struct {
	Proc     int       `json:"proc"`
	Behavior string    `json:"behavior"`
	Input    []float64 `json:"input,omitempty"`
}

// statusResp mirrors the chcd instance status JSON.
type statusResp struct {
	ID       int                    `json:"id"`
	State    string                 `json:"state"`
	Protocol string                 `json:"protocol"`
	Error    string                 `json:"error,omitempty"`
	Outputs  map[string][][]float64 `json:"outputs,omitempty"`
	Points   map[string][]float64   `json:"points,omitempty"`
	Rounds   map[string]int         `json:"rounds,omitempty"`
}

var byzBehaviors = []string{"silent", "incorrect-input", "equivocator", "garbler"}

// buildInstance makes the kth instance of the stream: the requested
// protocol, seeded random inputs, and (for Byzantine cells) one rotating
// adversary at the last process.
func buildInstance(n, f, d int, eps float64, protocol string, k int, rng *rand.Rand) submitReq {
	req := submitReq{
		F: f, D: d, Epsilon: eps,
		InputLower: 0, InputUpper: 10,
		Inputs: make([][]float64, n),
	}
	if protocol != "cc" {
		req.Protocol = protocol
	}
	for i := range req.Inputs {
		pt := make([]float64, d)
		for j := range pt {
			pt[j] = rng.Float64() * 10
		}
		req.Inputs[i] = pt
	}
	if protocol == "byzantine" {
		req.Faults = []faultReq{{
			Proc:     n - 1,
			Behavior: byzBehaviors[(k/3)%len(byzBehaviors)],
			Input:    make([]float64, d),
		}}
	}
	return req
}

// client is the thin chcd API client.
type client struct {
	base  string
	token string
	hc    *http.Client
}

func (c *client) do(method, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	return c.hc.Do(req)
}

// clusterN probes /v1/healthz for the daemon's process count.
func (c *client) clusterN() (int, error) {
	resp, err := c.do(http.MethodGet, "/v1/healthz", nil)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var h struct {
		N      int    `json:"n"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("daemon %s (status %d)", h.Status, resp.StatusCode)
	}
	if h.N <= 0 {
		return 0, fmt.Errorf("daemon reported n=%d", h.N)
	}
	return h.N, nil
}

// submit POSTs one instance, retrying through 429 backpressure; it returns
// the instance id and how many 429s it absorbed.
func (c *client) submit(req submitReq) (id, rejected int, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, 0, err
	}
	for attempt := 0; ; attempt++ {
		resp, err := c.do(http.MethodPost, "/v1/instances", body)
		if err != nil {
			return 0, rejected, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			rejected++
			if attempt > 200 {
				return 0, rejected, fmt.Errorf("still overloaded after %d retries", attempt)
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		var acc struct {
			ID    int    `json:"id"`
			Error string `json:"error"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&acc)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return 0, rejected, fmt.Errorf("submit: status %d: %s", resp.StatusCode, acc.Error)
		}
		if derr != nil {
			return 0, rejected, derr
		}
		return acc.ID, rejected, nil
	}
}

// watch long-polls one instance until it reaches a terminal state or the
// harness's watch budget runs out.
func (c *client) watch(id int, budget time.Duration) (statusResp, error) {
	deadline := time.Now().Add(budget)
	for {
		poll := 5 * time.Second
		if rem := time.Until(deadline); rem < poll {
			if rem <= 0 {
				return statusResp{}, fmt.Errorf("instance %d not terminal after %v", id, budget)
			}
			poll = rem
		}
		resp, err := c.do(http.MethodGet,
			fmt.Sprintf("/v1/instances/%d/watch?timeout_ms=%d", id, poll.Milliseconds()), nil)
		if err != nil {
			return statusResp{}, err
		}
		var st statusResp
		derr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return statusResp{}, fmt.Errorf("watch %d: status %d", id, resp.StatusCode)
		}
		if derr != nil {
			return statusResp{}, derr
		}
		switch st.State {
		case "decided", "failed", "evicted":
			return st, nil
		}
	}
}

// soakState aggregates outcomes across the watcher goroutines.
type soakState struct {
	watchMax time.Duration
	eps      float64

	mu         sync.Mutex
	submitted  int
	decided    int
	failed     int
	deadlined  int
	rejects    int
	latencies  []time.Duration
	violations []string
}

func (s *soakState) addRejects(k int) {
	s.mu.Lock()
	s.rejects += k
	s.mu.Unlock()
}

func (s *soakState) violation(format string, args ...any) {
	s.mu.Lock()
	s.violations = append(s.violations, fmt.Sprintf(format, args...))
	s.mu.Unlock()
}

// observe waits for one instance and audits its decision.
func (s *soakState) observe(cl *client, id int, sub submitReq) {
	start := time.Now()
	s.mu.Lock()
	s.submitted++
	s.mu.Unlock()
	st, err := cl.watch(id, s.watchMax)
	if err != nil {
		s.violation("instance %d: %v", id, err)
		return
	}
	switch st.State {
	case "decided":
		lat := time.Since(start)
		if err := auditInstance(sub, st, s.eps); err != nil {
			s.violation("instance %d: %v", id, err)
			return
		}
		s.mu.Lock()
		s.decided++
		s.latencies = append(s.latencies, lat)
		s.mu.Unlock()
	default:
		s.mu.Lock()
		if strings.Contains(st.Error, "deadline") {
			s.deadlined++
		} else {
			s.failed++
		}
		s.mu.Unlock()
		s.violation("instance %d: state %s: %s", id, st.State, st.Error)
	}
}

// auditInstance re-checks the paper's guarantees client-side: every decided
// value lies in the hull of the correct inputs (Theorem 2 validity) and the
// decisions pairwise agree within ε.
func auditInstance(sub submitReq, st statusResp, eps float64) error {
	byzFaulty := make(map[int]bool, len(sub.Faults))
	for _, flt := range sub.Faults {
		byzFaulty[flt.Proc] = true
	}
	correct := make([]chc.Point, 0, len(sub.Inputs))
	for i, in := range sub.Inputs {
		if !byzFaulty[i] {
			correct = append(correct, chc.Point(in))
		}
	}
	hull, err := chc.NewPolytope(correct, chc.DefaultEps)
	if err != nil {
		return fmt.Errorf("input hull: %w", err)
	}
	const slack = 1e-7
	if len(st.Outputs) > 0 {
		polys := make([]*chc.Polytope, 0, len(st.Outputs))
		for proc, verts := range st.Outputs {
			pts := make([]chc.Point, len(verts))
			for i, v := range verts {
				pts[i] = chc.Point(v)
				inside, cerr := hull.Contains(chc.Point(v), slack)
				if cerr != nil {
					return cerr
				}
				if !inside {
					return fmt.Errorf("validity: p%s vertex %v outside the correct-input hull", proc, v)
				}
			}
			poly, perr := chc.NewPolytope(pts, chc.DefaultEps)
			if perr != nil {
				return fmt.Errorf("p%s output: %w", proc, perr)
			}
			polys = append(polys, poly)
		}
		dH, herr := chc.MaxPairwiseHausdorff(polys, chc.DefaultEps)
		if herr != nil {
			return herr
		}
		if dH > eps+1e-9 {
			return fmt.Errorf("ε-agreement: max d_H = %g > ε = %g", dH, eps)
		}
	}
	if len(st.Points) > 0 {
		var ref []float64
		for proc, pt := range st.Points {
			inside, cerr := hull.Contains(chc.Point(pt), slack)
			if cerr != nil {
				return cerr
			}
			if !inside {
				return fmt.Errorf("validity: p%s point %v outside the correct-input hull", proc, pt)
			}
			if ref == nil {
				ref = pt
				continue
			}
			var sum float64
			for i := range ref {
				sum += (ref[i] - pt[i]) * (ref[i] - pt[i])
			}
			if math.Sqrt(sum) > eps+1e-9 {
				return fmt.Errorf("ε-agreement: points %v and %v differ by > ε", ref, pt)
			}
		}
	}
	return nil
}

// report prints the aggregate soak outcome.
func (s *soakState) report(w io.Writer, elapsed time.Duration, undecided int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(w, "soak        : %d submitted, %d decided, %d failed, %d deadlined, %d rejected (429) in %v\n",
		s.submitted, s.decided, s.failed, s.deadlined, s.rejects, elapsed.Round(time.Millisecond))
	if elapsed > 0 {
		fmt.Fprintf(w, "throughput  : %.2f instances/sec decided\n", float64(s.decided)/elapsed.Seconds())
	}
	if len(s.latencies) > 0 {
		lat := append([]time.Duration(nil), s.latencies...)
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		q := func(p float64) time.Duration { return lat[int(p*float64(len(lat)-1))] }
		fmt.Fprintf(w, "latency     : p50=%v p90=%v p99=%v max=%v (client-side submit→decided)\n",
			q(0.50).Round(time.Millisecond), q(0.90).Round(time.Millisecond),
			q(0.99).Round(time.Millisecond), lat[len(lat)-1].Round(time.Millisecond))
	}
	if undecided > 0 {
		fmt.Fprintf(w, "drain       : %d instances NOT terminal after drain\n", undecided)
	} else {
		fmt.Fprintln(w, "drain       : zero undecided instances")
	}
	for i, v := range s.violations {
		if i == 8 {
			fmt.Fprintf(w, "violation   : ... %d more\n", len(s.violations)-i)
			break
		}
		fmt.Fprintf(w, "violation   : %s\n", v)
	}
}

// verdict converts the aggregate outcome into the process exit status.
func (s *soakState) verdict(undecided int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case len(s.violations) > 0:
		return fmt.Errorf("%d violations (audit failures, failed or unfinished instances)", len(s.violations))
	case undecided > 0:
		return fmt.Errorf("%d instances undecided after drain", undecided)
	case s.decided == 0:
		return fmt.Errorf("no instance decided")
	}
	return nil
}

// reportRegions prints per-region decide-latency percentiles from a
// telemetry snapshot (populated when the daemon runs a WAN model).
func reportRegions(w io.Writer, snap *chc.Telemetry) {
	if snap == nil {
		return
	}
	fam := snap.Find("chc_wan_region_decide_seconds")
	if fam == nil || len(fam.Samples) == 0 {
		return
	}
	type row struct {
		region string
		h      *chc.TelemetryHistogram
	}
	rows := make([]row, 0, len(fam.Samples))
	for i := range fam.Samples {
		sm := &fam.Samples[i]
		if sm.Histogram == nil || sm.Histogram.Count == 0 {
			continue
		}
		rows = append(rows, row{region: sm.Labels["region"], h: sm.Histogram})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].region < rows[j].region })
	for _, r := range rows {
		fmt.Fprintf(w, "region %-5s: %d decides, p50=%s p95=%s\n", r.region, r.h.Count,
			fmtSeconds(r.h.Quantile(0.50)), fmtSeconds(r.h.Quantile(0.95)))
	}
}

func fmtSeconds(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return time.Duration(v * float64(time.Second)).Round(time.Millisecond).String()
}

// scrapeRegions fetches a Prometheus text exposition and reconstructs the
// chc_wan_region_decide_seconds histograms, so a remote soak reports the
// same per-region rows a self soak reads from the in-process registry.
func scrapeRegions(hc *http.Client, url, token string) (*chc.Telemetry, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	const name = "chc_wan_region_decide_seconds"
	hists := make(map[string]*chc.TelemetryHistogram)
	order := []string{}
	get := func(region string) *chc.TelemetryHistogram {
		h, ok := hists[region]
		if !ok {
			h = &chc.TelemetryHistogram{}
			hists[region] = h
			order = append(order, region)
		}
		return h
	}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "#") {
			continue
		}
		metric, value, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, verr := strconv.ParseFloat(strings.TrimSpace(value), 64)
		if verr != nil {
			continue
		}
		labels := parseLabels(metric)
		region := labels["region"]
		switch {
		case strings.HasPrefix(metric, name+"_bucket"):
			le := math.Inf(1)
			if labels["le"] != "+Inf" {
				if b, berr := strconv.ParseFloat(labels["le"], 64); berr == nil {
					le = b
				}
			}
			h := get(region)
			h.Buckets = append(h.Buckets, telemetry.Bucket{UpperBound: le, CumulativeCount: uint64(v)})
		case strings.HasPrefix(metric, name+"_sum"):
			get(region).Sum = v
		case strings.HasPrefix(metric, name+"_count"):
			get(region).Count = uint64(v)
		}
	}
	snap := &chc.Telemetry{}
	fam := chc.TelemetryMetric{Name: name}
	for _, region := range order {
		h := hists[region]
		sort.Slice(h.Buckets, func(i, j int) bool { return h.Buckets[i].UpperBound < h.Buckets[j].UpperBound })
		fam.Samples = append(fam.Samples, chc.TelemetrySample{
			Labels: map[string]string{"region": region}, Histogram: h,
		})
	}
	snap.Metrics = append(snap.Metrics, fam)
	return snap, nil
}

// parseLabels extracts the label map of one exposition line's metric part.
func parseLabels(metric string) map[string]string {
	out := map[string]string{}
	open := strings.IndexByte(metric, '{')
	end := strings.LastIndexByte(metric, '}')
	if open < 0 || end < open {
		return out
	}
	for _, pair := range strings.Split(metric[open+1:end], ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			continue
		}
		out[strings.TrimSpace(k)] = strings.Trim(strings.TrimSpace(v), `"`)
	}
	return out
}

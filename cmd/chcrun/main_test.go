package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chc"
)

func TestRunDefaults(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"convex hull consensus", "ε-agreement", "validity", "optimality", "messages"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "true") {
		t.Error("agreement should hold")
	}
}

func TestRunWithFaultsAndSchedulers(t *testing.T) {
	for _, sched := range []string{"random", "rr", "delay", "split"} {
		var buf bytes.Buffer
		args := []string{
			"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1",
			"-faulty", "2", "-crash", "2:5", "-sched", sched,
		}
		if err := run(args, &buf); err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		if !strings.Contains(buf.String(), "faulty: incorrect input") {
			t.Errorf("%s: faulty process not marked", sched)
		}
	}
}

func TestRunCorrectInputsModel(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "3", "-f", "1", "-d", "2", "-eps", "0.2", "-model", "correct"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "crash+correct-inputs") {
		t.Error("model not reported")
	}
}

func TestRunInProcTransport(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "4", "-f", "0", "-d", "1", "-eps", "0.5", "-transport", "inproc"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "outputs:") {
		t.Error("no outputs printed")
	}
}

func TestRunTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	args := []string{"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1", "-tracefile", path}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if parsed["n"] != float64(5) {
		t.Errorf("trace n = %v", parsed["n"])
	}
}

func TestRunByzantineMode(t *testing.T) {
	for _, behavior := range []string{"silent", "incorrect", "equivocator", "garbler"} {
		var buf bytes.Buffer
		args := []string{"-n", "5", "-f", "1", "-d", "2", "-eps", "0.2", "-byz", behavior}
		if err := run(args, &buf); err != nil {
			t.Fatalf("%s: %v", behavior, err)
		}
		out := buf.String()
		if !strings.Contains(out, "byzantine convex hull consensus") ||
			!strings.Contains(out, "validity    : ok") {
			t.Errorf("%s: unexpected output:\n%s", behavior, out)
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"-byz", "weird"}, &buf); err == nil {
		t.Error("unknown byzantine behaviour should error")
	}
}

func TestRunChaosInProc(t *testing.T) {
	var buf bytes.Buffer
	args := []string{
		"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1",
		"-transport", "inproc", "-chaos", "drop=0.2,dup=0.1", "-chaos-seed", "7",
	}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"network     :", "chaos       :", "retransmits"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBatchMode(t *testing.T) {
	cases := [][]string{
		{"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1", "-batch", "3"},
		{"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1", "-batch", "2", "-transport", "tcp"},
		{"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1", "-batch", "2", "-protocol", "vector"},
		{"-n", "5", "-f", "1", "-d", "2", "-eps", "0.2", "-protocol", "byzantine", "-faulty", "4", "-transport", "inproc"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		out := buf.String()
		for _, want := range []string{"batch consensus", "decided by round", "<= ε: true", "messages"} {
			if !strings.Contains(out, want) {
				t.Errorf("%v: output missing %q:\n%s", args, want, out)
			}
		}
	}
}

func TestRunBatchChaosLine(t *testing.T) {
	var buf bytes.Buffer
	args := []string{
		"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1",
		"-batch", "2", "-transport", "inproc", "-chaos", "light",
	}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<= ε: true", "chaos       :", "injected"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBatchRecovery(t *testing.T) {
	var buf bytes.Buffer
	args := []string{
		"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1",
		"-batch", "2", "-transport", "inproc",
		"-wal-dir", t.TempDir(), "-crash", "0:15", "-recover",
	}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2/5 decided") && !strings.Contains(out, "5/5 decided") {
		t.Errorf("no decision counts in output:\n%s", out)
	}
	if !strings.Contains(out, "5/5 decided") {
		t.Errorf("recovered node should complete the batch:\n%s", out)
	}
	if !strings.Contains(out, "recovery    :") {
		t.Errorf("no recovery counters in output:\n%s", out)
	}
}

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-model", "weird"},
		{"-sched", "weird"},
		{"-transport", "weird"},
		{"-chaos", "weird"},
		{"-chaos", "heavy"}, // chaos on the simulator transport is an error
		{"-faulty", "zero,one"},
		{"-crash", "nonsense"},
		{"-crash", "1"},
		{"-crash", "x:1"},
		{"-crash", "1:y"},
		{"-n", "3", "-f", "1", "-d", "2"}, // below resilience bound
		{"-batch", "2", "-protocol", "weird"},
		{"-protocol", "vector", "-byz", "incorrect"},
		{"-batch", "1", "-tracefile", "/tmp/x.json"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v should error", args)
		}
	}
}

func TestParseHelpers(t *testing.T) {
	ids, err := parseIDs("1, 2,3")
	if err != nil || len(ids) != 3 || ids[2] != 3 {
		t.Errorf("parseIDs = %v, %v", ids, err)
	}
	plans, err := parseCrashes("1:5, 2:0")
	if err != nil || len(plans) != 2 || plans[0].AfterSends != 5 {
		t.Errorf("parseCrashes = %v, %v", plans, err)
	}
	if !containsID([]chc.ProcID{1, 2}, 2) || containsID(nil, 0) {
		t.Error("containsID broken")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chc"
	"chc/internal/telemetry"
)

func TestRunDefaults(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"convex hull consensus", "ε-agreement", "validity", "optimality", "messages"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "true") {
		t.Error("agreement should hold")
	}
}

func TestRunWithFaultsAndSchedulers(t *testing.T) {
	for _, sched := range []string{"random", "rr", "delay", "split"} {
		var buf bytes.Buffer
		args := []string{
			"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1",
			"-faulty", "2", "-crash", "2:5", "-sched", sched,
		}
		if err := run(args, &buf); err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		if !strings.Contains(buf.String(), "faulty: incorrect input") {
			t.Errorf("%s: faulty process not marked", sched)
		}
	}
}

func TestRunCorrectInputsModel(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "3", "-f", "1", "-d", "2", "-eps", "0.2", "-model", "correct"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "crash+correct-inputs") {
		t.Error("model not reported")
	}
}

func TestRunInProcTransport(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "4", "-f", "0", "-d", "1", "-eps", "0.5", "-transport", "inproc"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "outputs:") {
		t.Error("no outputs printed")
	}
}

func TestRunTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	args := []string{"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1", "-tracefile", path}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if parsed["n"] != float64(5) {
		t.Errorf("trace n = %v", parsed["n"])
	}
}

func TestRunByzantineMode(t *testing.T) {
	for _, behavior := range []string{"silent", "incorrect", "equivocator", "garbler"} {
		var buf bytes.Buffer
		args := []string{"-n", "5", "-f", "1", "-d", "2", "-eps", "0.2", "-byz", behavior}
		if err := run(args, &buf); err != nil {
			t.Fatalf("%s: %v", behavior, err)
		}
		out := buf.String()
		if !strings.Contains(out, "byzantine convex hull consensus") ||
			!strings.Contains(out, "validity    : ok") {
			t.Errorf("%s: unexpected output:\n%s", behavior, out)
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"-byz", "weird"}, &buf); err == nil {
		t.Error("unknown byzantine behaviour should error")
	}
}

func TestRunChaosInProc(t *testing.T) {
	var buf bytes.Buffer
	args := []string{
		"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1",
		"-transport", "inproc", "-chaos", "drop=0.2,dup=0.1", "-chaos-seed", "7",
	}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"network     :", "chaos       :", "retransmits"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBatchMode(t *testing.T) {
	cases := [][]string{
		{"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1", "-batch", "3"},
		{"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1", "-batch", "2", "-transport", "tcp"},
		{"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1", "-batch", "2", "-protocol", "vector"},
		{"-n", "5", "-f", "1", "-d", "2", "-eps", "0.2", "-protocol", "byzantine", "-faulty", "4", "-transport", "inproc"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		out := buf.String()
		for _, want := range []string{"batch consensus", "decided by round", "<= ε: true", "messages"} {
			if !strings.Contains(out, want) {
				t.Errorf("%v: output missing %q:\n%s", args, want, out)
			}
		}
	}
}

func TestRunBatchChaosLine(t *testing.T) {
	var buf bytes.Buffer
	args := []string{
		"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1",
		"-batch", "2", "-transport", "inproc", "-chaos", "light",
	}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<= ε: true", "chaos       :", "injected"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBatchRecovery(t *testing.T) {
	var buf bytes.Buffer
	args := []string{
		"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1",
		"-batch", "2", "-transport", "inproc",
		"-wal-dir", t.TempDir(), "-crash", "0:15", "-recover",
	}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2/5 decided") && !strings.Contains(out, "5/5 decided") {
		t.Errorf("no decision counts in output:\n%s", out)
	}
	if !strings.Contains(out, "5/5 decided") {
		t.Errorf("recovered node should complete the batch:\n%s", out)
	}
	if !strings.Contains(out, "recovery    :") {
		t.Errorf("no recovery counters in output:\n%s", out)
	}
}

// TestRunMetricsAddrServesMidRun is the end-to-end exposition check: a live
// TCP batch run with -metrics-addr must serve /metrics (valid Prometheus
// text), /runs (JSON listing the run as active) and /debug/pprof while the
// batch is still executing. The crash-recovery downtime of 500ms guarantees
// the run stays alive long enough for a deterministic mid-run scrape.
func TestRunMetricsAddrServesMidRun(t *testing.T) {
	prev := chc.TelemetryEnabled()
	defer func() {
		telemetry.ShutdownServer()
		chc.EnableTelemetry(prev)
	}()

	jsonPath := filepath.Join(t.TempDir(), "telemetry.json")
	args := []string{
		"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1",
		"-batch", "2", "-transport", "tcp",
		"-wal-dir", t.TempDir(), "-crash", "1:10", "-recover", "-recover-downtime", "500ms",
		"-metrics-addr", "127.0.0.1:0",
		"-telemetry-json", jsonPath,
	}
	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() { done <- run(args, &buf) }()

	// The server mounts synchronously before the batch starts; discover its
	// resolved port.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if s := telemetry.ActiveServer(); s != nil {
			base = s.URL()
		} else if time.Now().After(deadline) {
			t.Fatal("exposition server never mounted")
		} else {
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Poll /runs until the batch appears as an active run — from then on the
	// scrape is by construction mid-run.
	var runsSnap telemetry.RunsSnapshot
	for len(runsSnap.Active) == 0 {
		select {
		case err := <-done:
			t.Fatalf("run finished before a mid-run scrape (err=%v):\n%s", err, buf.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("run never appeared in /runs")
		}
		resp, err := http.Get(base + "/runs")
		if err != nil {
			t.Fatal(err)
		}
		runsSnap = telemetry.RunsSnapshot{}
		if err := json.NewDecoder(resp.Body).Decode(&runsSnap); err != nil {
			t.Fatalf("/runs is not valid JSON: %v", err)
		}
		resp.Body.Close()
	}
	if got := runsSnap.Active[0]; got.Status != "running" || got.Transport != "tcp" || got.Instances != 2 {
		t.Errorf("active run = %+v, want running tcp batch of 2", got)
	}

	// /metrics mid-run: must parse as Prometheus text and already carry the
	// engine's run counter.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	samples, perr := telemetry.ParseText(resp.Body)
	resp.Body.Close()
	if perr != nil {
		t.Fatalf("/metrics is not valid exposition text: %v", perr)
	}
	started := 0.0
	for _, s := range samples {
		if s.Name == "chc_engine_runs_started_total" {
			started += s.Value
		}
	}
	if started < 1 {
		t.Errorf("chc_engine_runs_started_total = %v mid-run, want >= 1", started)
	}

	// /debug/pprof mid-run.
	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}

	if err := <-done; err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "telemetry   : serving /metrics /runs /debug/pprof on http://") {
		t.Errorf("no server banner in output:\n%s", out)
	}
	if !strings.Contains(out, "5/5 decided") {
		t.Errorf("recovered batch should fully decide:\n%s", out)
	}
	if !strings.Contains(out, "snapshot written to "+jsonPath) {
		t.Errorf("no -telemetry-json confirmation in output:\n%s", out)
	}

	// The run must have moved to the completed ring with its decisions.
	resp, err = http.Get(base + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	runsSnap = telemetry.RunsSnapshot{}
	if err := json.NewDecoder(resp.Body).Decode(&runsSnap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var completed *telemetry.RunRecord
	for i := range runsSnap.Completed {
		if runsSnap.Completed[i].Transport == "tcp" && runsSnap.Completed[i].Status == "ok" {
			completed = &runsSnap.Completed[i]
		}
	}
	if completed == nil {
		t.Fatalf("no completed ok run in /runs: %+v", runsSnap)
	}
	if len(completed.DecidedRounds) != 10 { // 2 instances × 5 processes
		t.Errorf("completed run has %d decided rounds, want 10", len(completed.DecidedRounds))
	}

	// The -telemetry-json dump must round-trip as a Snapshot.
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("-telemetry-json file is not a Snapshot: %v", err)
	}
	if snap.Find("chc_engine_runs_completed_total") == nil {
		t.Error("dumped snapshot missing chc_engine_runs_completed_total")
	}
}

// TestRunTelemetrySummaryOnError checks the error-path summary: a failed run
// with telemetry enabled still prints registry totals and writes the JSON
// dump.
func TestRunTelemetrySummaryOnError(t *testing.T) {
	prevSink := chc.EnableTelemetry(true)
	defer chc.EnableTelemetry(prevSink)

	jsonPath := filepath.Join(t.TempDir(), "telemetry.json")
	// An unrecovered crash of a process not in -faulty fails validation inside
	// the run, after telemetry is live.
	args := []string{
		"-n", "5", "-f", "1", "-d", "2", "-eps", "0.1",
		"-crash", "7:1",
		"-telemetry-json", jsonPath,
	}
	var buf bytes.Buffer
	if err := run(args, &buf); err == nil {
		t.Fatal("crash plan for out-of-range process should error")
	}
	out := buf.String()
	if !strings.Contains(out, "telemetry   : ") || !strings.Contains(out, "registry totals at exit") {
		t.Errorf("error exit missing telemetry summary:\n%s", out)
	}
	if _, err := os.Stat(jsonPath); err != nil {
		t.Errorf("-telemetry-json not written on error exit: %v", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-model", "weird"},
		{"-sched", "weird"},
		{"-transport", "weird"},
		{"-chaos", "weird"},
		{"-chaos", "heavy"}, // chaos on the simulator transport is an error
		{"-faulty", "zero,one"},
		{"-crash", "nonsense"},
		{"-crash", "1"},
		{"-crash", "x:1"},
		{"-crash", "1:y"},
		{"-n", "3", "-f", "1", "-d", "2"}, // below resilience bound
		{"-batch", "2", "-protocol", "weird"},
		{"-protocol", "vector", "-byz", "incorrect"},
		{"-batch", "1", "-tracefile", "/tmp/x.json"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v should error", args)
		}
	}
}

func TestParseHelpers(t *testing.T) {
	ids, err := parseIDs("1, 2,3")
	if err != nil || len(ids) != 3 || ids[2] != 3 {
		t.Errorf("parseIDs = %v, %v", ids, err)
	}
	plans, err := parseCrashes("1:5, 2:0")
	if err != nil || len(plans) != 2 || plans[0].AfterSends != 5 {
		t.Errorf("parseCrashes = %v, %v", plans, err)
	}
	if !containsID([]chc.ProcID{1, 2}, 2) || containsID(nil, 0) {
		t.Error("containsID broken")
	}
}

// Command chcrun executes one convex hull consensus instance and prints the
// outcome: per-process output polytopes, the agreement/validity/optimality
// checks, and message statistics.
//
// Usage examples:
//
//	chcrun -n 7 -f 1 -d 2 -eps 0.01 -seed 3
//	chcrun -n 5 -f 1 -d 2 -faulty 3 -crash 3:9 -sched delay
//	chcrun -n 3 -f 1 -d 2 -model correct
//	chcrun -n 5 -f 1 -d 2 -transport tcp     # real sockets instead of simulation
//	chcrun -n 5 -f 1 -transport inproc -chaos heavy -chaos-seed 3
//	chcrun -n 5 -f 1 -transport tcp -chaos 'drop=0.2,dup=0.1,delay=100us-2ms'
//	chcrun -n 5 -f 1 -transport inproc -wal-dir /tmp/chc-wal -crash 2:9 -recover
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"chc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chcrun:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("chcrun", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 7, "number of processes")
		f         = fs.Int("f", 1, "maximum faulty processes")
		d         = fs.Int("d", 2, "input dimension")
		eps       = fs.Float64("eps", 0.01, "agreement parameter ε")
		seed      = fs.Int64("seed", 1, "scheduler / input seed")
		faulty    = fs.String("faulty", "", "comma-separated faulty process IDs")
		crash     = fs.String("crash", "", "crash plans id:afterSends,...")
		sched     = fs.String("sched", "random", "scheduler: random|rr|delay|split")
		model     = fs.String("model", "incorrect", "fault model: incorrect|correct")
		transport = fs.String("transport", "sim", "execution: sim|inproc|tcp")
		byz       = fs.String("byz", "", "run the Byzantine transformation with this adversary at the first faulty process: silent|incorrect|equivocator|garbler")
		traceFile = fs.String("tracefile", "", "write the full execution trace (per-round states) as JSON to this file")
		chaosSpec = fs.String("chaos", "off", "network fault profile: off|light|heavy or drop=P,dup=P,delay=LO-HI,part=LO-HI:ID+ID (inproc/tcp only)")
		chaosSeed = fs.Int64("chaos-seed", 1, "seed for the deterministic chaos fault plan")
		walDir    = fs.String("wal-dir", "", "journal protocol state to per-process write-ahead logs in this directory (inproc/tcp only)")
		recoverWAL = fs.Bool("recover", false, "treat -crash plans as kill-and-restart faults: relaunch killed processes from their WALs (requires -wal-dir)")
		downtime  = fs.Duration("recover-downtime", 10*time.Millisecond, "how long a killed process stays down before its WAL relaunch")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	chaosProfile, err := chc.ParseChaosProfile(*chaosSpec)
	if err != nil {
		return fmt.Errorf("-chaos: %w", err)
	}
	if chaosProfile.Enabled() && *transport == "sim" {
		return fmt.Errorf("-chaos requires a networked transport (-transport inproc or tcp); the simulator has no link layer")
	}
	if *walDir != "" && *transport == "sim" {
		return fmt.Errorf("-wal-dir requires a networked transport (-transport inproc or tcp); the simulator has no crash-recovery runtime")
	}
	if *recoverWAL {
		if *walDir == "" {
			return fmt.Errorf("-recover requires -wal-dir")
		}
		if *crash == "" {
			return fmt.Errorf("-recover needs -crash plans to convert into kill-and-restart faults")
		}
	}

	params := chc.Params{
		N: *n, F: *f, D: *d,
		Epsilon:    *eps,
		InputLower: 0, InputUpper: 10,
	}
	switch *model {
	case "incorrect":
		params.Model = chc.IncorrectInputs
	case "correct":
		params.Model = chc.CorrectInputs
	default:
		return fmt.Errorf("unknown fault model %q", *model)
	}

	rng := rand.New(rand.NewSource(*seed))
	inputs := make([]chc.Point, *n)
	for i := range inputs {
		p := make([]float64, *d)
		for j := range p {
			p[j] = rng.Float64() * 10
		}
		inputs[i] = chc.NewPoint(p...)
	}

	cfg := chc.RunConfig{Params: params, Inputs: inputs, Seed: *seed}
	if *faulty != "" {
		ids, err := parseIDs(*faulty)
		if err != nil {
			return err
		}
		cfg.Faulty = ids
	}
	if *crash != "" {
		plans, err := parseCrashes(*crash)
		if err != nil {
			return err
		}
		cfg.Crashes = plans
	}
	switch *sched {
	case "random":
	case "rr":
		cfg.Scheduler = chc.NewRoundRobinScheduler()
	case "delay":
		cfg.Scheduler = chc.NewDelayScheduler(cfg.Faulty...)
	case "split":
		half := make([]chc.ProcID, 0, *n/2)
		for i := 0; i < *n/2; i++ {
			half = append(half, chc.ProcID(i))
		}
		cfg.Scheduler = chc.NewSplitScheduler(half...)
	default:
		return fmt.Errorf("unknown scheduler %q", *sched)
	}

	if *byz != "" {
		return runByzantine(w, params, inputs, cfg.Faulty, *byz, *seed)
	}

	var netOpts []chc.NetworkOption
	if chaosProfile.Enabled() {
		netOpts = append(netOpts, chc.WithNetworkChaos(chaosProfile, *chaosSeed))
	}
	if *walDir != "" {
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			return fmt.Errorf("-wal-dir: %w", err)
		}
		netOpts = append(netOpts, chc.WithWAL(*walDir))
	}
	if *recoverWAL {
		netOpts = append(netOpts, chc.WithCrashRecovery(*downtime))
	}
	var result *chc.RunResult
	start := time.Now()
	switch *transport {
	case "sim":
		result, err = chc.Run(cfg)
	case "inproc":
		result, err = chc.RunNetworked(cfg, chc.InProcess, 5*time.Minute, netOpts...)
	case "tcp":
		result, err = chc.RunNetworked(cfg, chc.TCP, 5*time.Minute, netOpts...)
	default:
		return fmt.Errorf("unknown transport %q", *transport)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Fprintf(w, "convex hull consensus: n=%d f=%d d=%d ε=%g model=%v t_end=%d (%v)\n",
		*n, *f, *d, *eps, params.Model, params.TEnd(), elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "inputs:\n")
	for i, x := range inputs {
		marker := ""
		if containsID(cfg.Faulty, chc.ProcID(i)) {
			marker = "  (faulty: incorrect input)"
		}
		fmt.Fprintf(w, "  p%-2d %v%s\n", i, x, marker)
	}
	fmt.Fprintf(w, "outputs:\n")
	for i := 0; i < *n; i++ {
		id := chc.ProcID(i)
		out, ok := result.Outputs[id]
		switch {
		case result.Crashed[id]:
			fmt.Fprintf(w, "  p%-2d CRASHED\n", i)
		case !ok:
			fmt.Fprintf(w, "  p%-2d (no decision)\n", i)
		default:
			vol, _ := out.Volume(chc.DefaultEps)
			fmt.Fprintf(w, "  p%-2d %d vertices, volume %.4g: %v\n", i, out.NumVertices(), vol, out)
		}
	}
	if rep, err := chc.CheckAgreement(result); err == nil {
		fmt.Fprintf(w, "ε-agreement : max d_H = %.3g <= %g : %v\n", rep.MaxHausdorff, rep.Epsilon, rep.Holds)
	}
	if err := chc.CheckValidity(result, &cfg); err == nil {
		fmt.Fprintln(w, "validity    : ok (outputs inside correct-input hull)")
	} else {
		fmt.Fprintf(w, "validity    : VIOLATED: %v\n", err)
	}
	if params.Model == chc.IncorrectInputs {
		if err := chc.CheckOptimality(result); err == nil {
			fmt.Fprintln(w, "optimality  : ok (I_Z contained in every output)")
		} else {
			fmt.Fprintf(w, "optimality  : VIOLATED: %v\n", err)
		}
	}
	if result.Stats != nil {
		fmt.Fprintf(w, "messages    : %d sends, %d bytes\n", result.Stats.Sends, result.Stats.Bytes)
		if net := result.Stats.Net; net != nil && (chaosProfile.Enabled() || net.FramesSent > 0) {
			fmt.Fprintf(w, "network     : %d frames, %d retransmits, %d dup-suppressed, %d reconnects\n",
				net.FramesSent, net.Retransmits, net.DupSuppressed, net.Reconnects)
			if chaosProfile.Enabled() {
				fmt.Fprintf(w, "chaos       : %s seed=%d: %d drops, %d dups, %d delays, %d partition drops injected\n",
					chaosProfile.String(), *chaosSeed, net.InjectedDrops, net.InjectedDups, net.InjectedDelays, net.PartitionDrops)
			}
			if *walDir != "" {
				fmt.Fprintf(w, "recovery    : %d wal appends in %d fsync batches, %d link resumes\n",
					net.WALAppends, net.WALSyncs, net.Resumes)
			}
		}
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "chcrun: close trace file:", cerr)
			}
		}()
		if err := chc.WriteTraceJSON(f, result); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace       : written to %s\n", *traceFile)
	}
	return nil
}

// runByzantine executes the Byzantine-compiled protocol with the selected
// adversary behaviour at the first listed faulty process (default: the
// last process).
func runByzantine(w io.Writer, params chc.Params, inputs []chc.Point, faulty []chc.ProcID, behaviorName string, seed int64) error {
	var behavior chc.ByzantineBehavior
	switch behaviorName {
	case "silent":
		behavior = chc.ByzSilent
	case "incorrect":
		behavior = chc.ByzIncorrectInput
	case "equivocator":
		behavior = chc.ByzEquivocator
	case "garbler":
		behavior = chc.ByzGarbler
	default:
		return fmt.Errorf("unknown byzantine behaviour %q", behaviorName)
	}
	target := chc.ProcID(params.N - 1)
	if len(faulty) > 0 {
		target = faulty[0]
	}
	cfg := chc.ByzantineRunConfig{
		Params: params,
		Inputs: inputs,
		Faults: []chc.ByzantineFault{{
			Proc:     target,
			Behavior: behavior,
			Input:    chc.NewPoint(make([]float64, params.D)...),
		}},
		Seed: seed,
	}
	start := time.Now()
	result, err := chc.RunByzantine(cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(w, "byzantine convex hull consensus: n=%d f=%d d=%d ε=%g adversary=%v at p%d (%v)\n",
		params.N, params.F, params.D, params.Epsilon, behavior, target, elapsed.Round(time.Millisecond))
	for _, id := range result.Correct() {
		out, ok := result.Outputs[id]
		if !ok {
			fmt.Fprintf(w, "  p%-2d (no decision)\n", id)
			continue
		}
		vol, _ := out.Volume(chc.DefaultEps)
		fmt.Fprintf(w, "  p%-2d %d vertices, volume %.4g\n", id, out.NumVertices(), vol)
	}
	if err := chc.CheckByzantineValidity(result, &cfg); err == nil {
		fmt.Fprintln(w, "validity    : ok")
	} else {
		fmt.Fprintf(w, "validity    : VIOLATED: %v\n", err)
	}
	if d, holds, err := chc.CheckByzantineAgreement(result); err == nil {
		fmt.Fprintf(w, "ε-agreement : max d_H = %.3g <= %g : %v\n", d, params.Epsilon, holds)
	}
	fmt.Fprintf(w, "messages    : %d sends, %d bytes (reliable broadcast)\n",
		result.Stats.Sends, result.Stats.Bytes)
	return nil
}

func parseIDs(s string) ([]chc.ProcID, error) {
	var out []chc.ProcID
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad process ID %q", part)
		}
		out = append(out, chc.ProcID(id))
	}
	return out, nil
}

func parseCrashes(s string) ([]chc.CrashPlan, error) {
	var out []chc.CrashPlan
	for _, part := range strings.Split(s, ",") {
		bits := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(bits) != 2 {
			return nil, fmt.Errorf("bad crash plan %q (want id:afterSends)", part)
		}
		id, err := strconv.Atoi(bits[0])
		if err != nil {
			return nil, fmt.Errorf("bad crash process %q", bits[0])
		}
		after, err := strconv.Atoi(bits[1])
		if err != nil {
			return nil, fmt.Errorf("bad crash afterSends %q", bits[1])
		}
		out = append(out, chc.CrashPlan{Proc: chc.ProcID(id), AfterSends: after})
	}
	return out, nil
}

func containsID(ids []chc.ProcID, id chc.ProcID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

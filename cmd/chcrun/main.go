// Command chcrun executes one convex hull consensus instance and prints the
// outcome: per-process output polytopes, the agreement/validity/optimality
// checks, and message statistics.
//
// Usage examples:
//
//	chcrun -n 7 -f 1 -d 2 -eps 0.01 -seed 3
//	chcrun -n 5 -f 1 -d 2 -faulty 3 -crash 3:9 -sched delay
//	chcrun -n 3 -f 1 -d 2 -model correct
//	chcrun -n 5 -f 1 -d 2 -transport tcp     # real sockets instead of simulation
//	chcrun -n 5 -f 1 -transport inproc -chaos heavy -chaos-seed 3
//	chcrun -n 5 -f 1 -transport tcp -chaos 'drop=0.2,dup=0.1,delay=100us-2ms'
//	chcrun -n 5 -f 1 -transport inproc -wal-dir /tmp/chc-wal -crash 2:9 -recover
//	chcrun -n 5 -f 1 -transport sim -wan us-eu-ap -wan-seed 3   # geo-modeled virtual time
//	chcrun -n 5 -f 1 -transport tcp -wan '3-regions,delay=0.01' # wall-clock link shaping
//	chcrun -n 5 -f 1 -batch 4 -transport tcp          # four CC instances, one network
//	chcrun -n 5 -f 1 -batch 3 -protocol vector        # vector-consensus batch
//	chcrun -n 5 -f 1 -protocol byzantine -faulty 4    # Byzantine batch, adversary at p4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"chc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chcrun:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) (err error) {
	fs := flag.NewFlagSet("chcrun", flag.ContinueOnError)
	var (
		n             = fs.Int("n", 7, "number of processes")
		f             = fs.Int("f", 1, "maximum faulty processes")
		d             = fs.Int("d", 2, "input dimension")
		eps           = fs.Float64("eps", 0.01, "agreement parameter ε")
		seed          = fs.Int64("seed", 1, "scheduler / input seed")
		faulty        = fs.String("faulty", "", "comma-separated faulty process IDs")
		crash         = fs.String("crash", "", "crash plans id:afterSends,...")
		sched         = fs.String("sched", "random", "scheduler: random|rr|delay|split")
		model         = fs.String("model", "incorrect", "fault model: incorrect|correct")
		transport     = fs.String("transport", "sim", "execution: sim|inproc|tcp")
		batch         = fs.Int("batch", 0, "run this many instances as one batch multiplexed over the shared transport (0 = single-instance mode)")
		protocol      = fs.String("protocol", "cc", "protocol for batch instances: cc|vector|byzantine (implies batch mode when not cc)")
		byz           = fs.String("byz", "", "run the Byzantine transformation with this adversary at the first faulty process: silent|incorrect|equivocator|garbler")
		traceFile     = fs.String("tracefile", "", "write the full execution trace (per-round states) as JSON to this file")
		wanSpec       = fs.String("wan", "off", "wide-area link model: off, a topology (3-regions|us-eu-ap|star|clos), or topo,regions=R,delay=S,jitter=J,tail=P,bw=RATE,cut=us->eu@LO-HI (sim: deterministic virtual-time schedule; inproc/tcp: wall-clock shaping)")
		wanSeed       = fs.Int64("wan-seed", 1, "seed for the deterministic WAN delay schedule")
		chaosSpec     = fs.String("chaos", "off", "network fault profile: off|light|heavy or drop=P,dup=P,delay=LO-HI,part=LO-HI:ID+ID (inproc/tcp only)")
		chaosSeed     = fs.Int64("chaos-seed", 1, "seed for the deterministic chaos fault plan")
		walDir        = fs.String("wal-dir", "", "journal protocol state to per-process write-ahead logs in this directory (inproc/tcp only)")
		recoverWAL    = fs.Bool("recover", false, "treat -crash plans as kill-and-restart faults: relaunch killed processes from their WALs (requires -wal-dir)")
		downtime      = fs.Duration("recover-downtime", 10*time.Millisecond, "how long a killed process stays down before its WAL relaunch")
		diskFaults    = fs.String("disk-faults", "off", "storage fault plan against the WALs: off|flaky|sick or werr=P,nospc=P,torn=P,syncerr=P,slow=P:LO-HI,cut=N,path=SUBSTR,after=K (requires -wal-dir)")
		diskSeed      = fs.Int64("disk-seed", 1, "seed for the deterministic storage fault schedule")
		netFaults     = fs.String("net-faults", "off", "byte-stream corruption against the TCP links: off|flaky|hostile or flip=P,garbage=P,lenmut=P,trunc=P,reset=P,stall=P:LO-HI,window=N,link=SUBSTR,after=K (requires -transport tcp)")
		netSeed       = fs.Int64("net-seed", 1, "seed for the deterministic wire fault schedule")
		wireCoalesce  = fs.String("wire-coalesce", "on", "TCP frame coalescing: on (flush immediately per writer wakeup) | off (write+flush per frame) | a flush-deadline duration like 200us that lets batches accumulate (requires -transport tcp when not \"on\")")
		wireCompress  = fs.Bool("wire-compress", false, "negotiate flate compression of coalesced frame batches on the TCP links (requires -transport tcp)")
		walCheckpoint = fs.Int64("wal-checkpoint", 0, "rotate each WAL into segments and publish a full-history snapshot whenever its live file exceeds this many bytes; 0 disables (requires -wal-dir)")
		durability    = fs.String("durability", "failstop", "policy when a WAL stops accepting writes: failstop (node becomes a crash fault) | degrade (node quarantines non-durably and re-arms with backoff)")
		metricsAddr   = fs.String("metrics-addr", "", "enable telemetry and serve /metrics, /runs and /debug/pprof on this address (host:port; port 0 picks a free port)")
		telemetryJSON = fs.String("telemetry-json", "", "enable telemetry and write the final registry snapshot as JSON to this file (written on error and timeout exits too)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	chaosProfile, err := chc.ParseChaosProfile(*chaosSpec)
	if err != nil {
		return fmt.Errorf("-chaos: %w", err)
	}
	wanPlan, err := chc.ParseWANPlan(*wanSpec)
	if err != nil {
		return fmt.Errorf("-wan: %w", err)
	}
	if chaosProfile.Enabled() && *transport == "sim" {
		return fmt.Errorf("-chaos requires a networked transport (-transport inproc or tcp); the simulator has no link layer")
	}
	if *walDir != "" && *transport == "sim" {
		return fmt.Errorf("-wal-dir requires a networked transport (-transport inproc or tcp); the simulator has no crash-recovery runtime")
	}
	if *recoverWAL {
		if *walDir == "" {
			return fmt.Errorf("-recover requires -wal-dir")
		}
		if *crash == "" {
			return fmt.Errorf("-recover needs -crash plans to convert into kill-and-restart faults")
		}
	}
	diskPlan, err := chc.ParseDiskFaultPlan(*diskFaults)
	if err != nil {
		return fmt.Errorf("-disk-faults: %w", err)
	}
	diskPlan.Seed = *diskSeed
	netPlan, err := chc.ParseNetFaultPlan(*netFaults)
	if err != nil {
		return fmt.Errorf("-net-faults: %w", err)
	}
	netPlan.Seed = *netSeed
	if netPlan.Enabled() && *transport != "tcp" {
		return fmt.Errorf("-net-faults requires -transport tcp (only TCP links carry byte streams)")
	}
	var wireCfg *chc.WireConfig
	{
		var wc chc.WireConfig
		switch *wireCoalesce {
		case "on":
		case "off":
			wc.SingleFrame = true
		default:
			dl, derr := time.ParseDuration(*wireCoalesce)
			if derr != nil || dl < 0 {
				return fmt.Errorf("-wire-coalesce: want on, off or a flush-deadline duration, got %q", *wireCoalesce)
			}
			wc.FlushDeadline = dl
		}
		wc.Compress = *wireCompress
		if wc != (chc.WireConfig{}) {
			wireCfg = &wc
		}
	}
	if wireCfg != nil && *transport != "tcp" {
		return fmt.Errorf("-wire-coalesce/-wire-compress require -transport tcp (only TCP links have a framed write path)")
	}
	var durabilityPolicy chc.DurabilityPolicy
	switch *durability {
	case "failstop":
		durabilityPolicy = chc.FailStop
	case "degrade":
		durabilityPolicy = chc.Degrade
	default:
		return fmt.Errorf("-durability: unknown policy %q (failstop|degrade)", *durability)
	}
	if *walDir == "" {
		switch {
		case diskPlan.Enabled():
			return fmt.Errorf("-disk-faults requires -wal-dir")
		case *walCheckpoint > 0:
			return fmt.Errorf("-wal-checkpoint requires -wal-dir")
		case durabilityPolicy != chc.FailStop:
			return fmt.Errorf("-durability requires -wal-dir")
		}
	}

	if *metricsAddr != "" {
		resolved, _, serr := chc.ServeTelemetry(*metricsAddr)
		if serr != nil {
			return fmt.Errorf("-metrics-addr: %w", serr)
		}
		fmt.Fprintf(w, "telemetry   : serving /metrics /runs /debug/pprof on http://%s\n", resolved)
	}
	if *telemetryJSON != "" {
		chc.EnableTelemetry(true)
	}
	if chc.TelemetryEnabled() {
		// Failed and timed-out runs return no result object, so their summary
		// comes from the process-wide registry instead; the JSON dump is
		// written on every exit path for the same reason.
		defer func() {
			if err != nil {
				printTelemetrySummary(w)
			}
			if *telemetryJSON != "" {
				if werr := writeTelemetryJSON(w, *telemetryJSON); werr != nil {
					if err == nil {
						err = werr
					} else {
						fmt.Fprintf(w, "telemetry   : %v\n", werr)
					}
				}
			}
		}()
	}

	params := chc.Params{
		N: *n, F: *f, D: *d,
		Epsilon:    *eps,
		InputLower: 0, InputUpper: 10,
	}
	switch *model {
	case "incorrect":
		params.Model = chc.IncorrectInputs
	case "correct":
		params.Model = chc.CorrectInputs
	default:
		return fmt.Errorf("unknown fault model %q", *model)
	}

	rng := rand.New(rand.NewSource(*seed))
	inputs := make([]chc.Point, *n)
	for i := range inputs {
		p := make([]float64, *d)
		for j := range p {
			p[j] = rng.Float64() * 10
		}
		inputs[i] = chc.NewPoint(p...)
	}

	cfg := chc.RunConfig{Params: params, Inputs: inputs, Seed: *seed}
	if *faulty != "" {
		ids, err := parseIDs(*faulty)
		if err != nil {
			return err
		}
		cfg.Faulty = ids
	}
	if *crash != "" {
		plans, err := parseCrashes(*crash)
		if err != nil {
			return err
		}
		cfg.Crashes = plans
	}
	switch *sched {
	case "random":
	case "rr":
		cfg.Scheduler = chc.NewRoundRobinScheduler()
	case "delay":
		cfg.Scheduler = chc.NewDelayScheduler(cfg.Faulty...)
	case "split":
		half := make([]chc.ProcID, 0, *n/2)
		for i := 0; i < *n/2; i++ {
			half = append(half, chc.ProcID(i))
		}
		cfg.Scheduler = chc.NewSplitScheduler(half...)
	default:
		return fmt.Errorf("unknown scheduler %q", *sched)
	}
	if wanPlan.Enabled() && *transport == "sim" {
		if *sched != "random" {
			return fmt.Errorf("-wan drives the simulator's delivery order itself; drop -sched %s", *sched)
		}
		ws, werr := chc.NewWANScheduler(wanPlan, *n, *wanSeed)
		if werr != nil {
			return fmt.Errorf("-wan: %w", werr)
		}
		cfg.Scheduler = ws
	}

	if *batch > 0 || *protocol != "cc" {
		if *byz != "" {
			return fmt.Errorf("-byz cannot be combined with batch mode; use -protocol byzantine")
		}
		if *traceFile != "" {
			return fmt.Errorf("-tracefile is not supported in batch mode")
		}
		k := *batch
		if k <= 0 {
			k = 1
		}
		bm := batchMode{
			params: params, protocol: *protocol, k: k, transport: *transport,
			seed: *seed, rng: rng, faulty: cfg.Faulty, crashes: cfg.Crashes,
			scheduler: cfg.Scheduler, chaos: chaosProfile, chaosSeed: *chaosSeed,
			walDir: *walDir, recoverWAL: *recoverWAL, downtime: *downtime,
			diskPlan: diskPlan, netPlan: netPlan, netSeed: *netSeed,
			checkpoint: *walCheckpoint, durability: durabilityPolicy,
			wire: wireCfg, wan: wanPlan, wanSeed: *wanSeed,
		}
		if bm.wan.Enabled() && *transport == "sim" {
			// The engine builds the virtual-time scheduler itself in batch
			// mode; the one built above was the single-instance path's.
			bm.scheduler = nil
		}
		return runBatchMode(w, bm)
	}

	if *byz != "" {
		return runByzantine(w, params, inputs, cfg.Faulty, *byz, *seed)
	}

	var netOpts []chc.NetworkOption
	if chaosProfile.Enabled() {
		netOpts = append(netOpts, chc.WithNetworkChaos(chaosProfile, *chaosSeed))
	}
	if *walDir != "" {
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			return fmt.Errorf("-wal-dir: %w", err)
		}
		netOpts = append(netOpts, chc.WithWAL(*walDir))
	}
	if *recoverWAL {
		netOpts = append(netOpts, chc.WithCrashRecovery(*downtime))
	}
	if diskPlan.Enabled() {
		netOpts = append(netOpts, chc.WithDiskFaults(diskPlan))
	}
	if netPlan.Enabled() {
		netOpts = append(netOpts, chc.WithNetFaults(netPlan))
	}
	if wireCfg != nil {
		netOpts = append(netOpts, chc.WithWire(*wireCfg))
	}
	if *walCheckpoint > 0 {
		netOpts = append(netOpts, chc.WithWALCheckpoint(*walCheckpoint))
	}
	if durabilityPolicy != chc.FailStop {
		netOpts = append(netOpts, chc.WithDurability(durabilityPolicy))
	}
	if wanPlan.Enabled() && *transport != "sim" {
		netOpts = append(netOpts, chc.WithWAN(wanPlan, *wanSeed))
	}
	var result *chc.RunResult
	start := time.Now()
	switch *transport {
	case "sim":
		result, err = chc.Run(cfg)
	case "inproc":
		result, err = chc.RunNetworked(cfg, chc.InProcess, 5*time.Minute, netOpts...)
	case "tcp":
		result, err = chc.RunNetworked(cfg, chc.TCP, 5*time.Minute, netOpts...)
	default:
		return fmt.Errorf("unknown transport %q", *transport)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Fprintf(w, "convex hull consensus: n=%d f=%d d=%d ε=%g model=%v t_end=%d (%v)\n",
		*n, *f, *d, *eps, params.Model, params.TEnd(), elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "inputs:\n")
	for i, x := range inputs {
		marker := ""
		if containsID(cfg.Faulty, chc.ProcID(i)) {
			marker = "  (faulty: incorrect input)"
		}
		fmt.Fprintf(w, "  p%-2d %v%s\n", i, x, marker)
	}
	fmt.Fprintf(w, "outputs:\n")
	for i := 0; i < *n; i++ {
		id := chc.ProcID(i)
		out, ok := result.Outputs[id]
		switch {
		case result.Crashed[id]:
			fmt.Fprintf(w, "  p%-2d CRASHED\n", i)
		case !ok:
			fmt.Fprintf(w, "  p%-2d (no decision)\n", i)
		default:
			vol, _ := out.Volume(chc.DefaultEps)
			fmt.Fprintf(w, "  p%-2d %d vertices, volume %.4g: %v\n", i, out.NumVertices(), vol, out)
		}
	}
	if rep, err := chc.CheckAgreement(result); err == nil {
		fmt.Fprintf(w, "ε-agreement : max d_H = %.3g <= %g : %v\n", rep.MaxHausdorff, rep.Epsilon, rep.Holds)
	}
	if err := chc.CheckValidity(result, &cfg); err == nil {
		fmt.Fprintln(w, "validity    : ok (outputs inside correct-input hull)")
	} else {
		fmt.Fprintf(w, "validity    : VIOLATED: %v\n", err)
	}
	if params.Model == chc.IncorrectInputs {
		if err := chc.CheckOptimality(result); err == nil {
			fmt.Fprintln(w, "optimality  : ok (I_Z contained in every output)")
		} else {
			fmt.Fprintf(w, "optimality  : VIOLATED: %v\n", err)
		}
	}
	if result.Stats != nil {
		fmt.Fprintf(w, "messages    : %d sends, %d bytes\n", result.Stats.Sends, result.Stats.Bytes)
		if net := result.Stats.Net; net != nil && (chaosProfile.Enabled() || net.FramesSent > 0) {
			fmt.Fprintf(w, "network     : %d frames, %d retransmits, %d dup-suppressed, %d reconnects\n",
				net.FramesSent, net.Retransmits, net.DupSuppressed, net.Reconnects)
			if chaosProfile.Enabled() {
				fmt.Fprintf(w, "chaos       : %s seed=%d: %d drops, %d dups, %d delays, %d partition drops injected\n",
					chaosProfile.String(), *chaosSeed, net.InjectedDrops, net.InjectedDups, net.InjectedDelays, net.PartitionDrops)
			}
			if *walDir != "" {
				fmt.Fprintf(w, "recovery    : %d wal appends in %d fsync batches, %d link resumes\n",
					net.WALAppends, net.WALSyncs, net.Resumes)
			}
			if diskPlan.Enabled() || *walCheckpoint > 0 {
				fmt.Fprintf(w, "storage     : %d durability faults, %d fail-stops, %d degradations, %d re-arms, %d checkpoints\n",
					net.DurabilityFaults, net.FailStops, net.Degradations, net.Rearms, net.WALCheckpoints)
			}
			if netPlan.Enabled() {
				fmt.Fprintf(w, "wire        : %s seed=%d: %d faults injected, %d corrupt frames rejected, %d quarantines, %d readmits\n",
					netPlan.String(), *netSeed, net.InjectedWire, net.CorruptFrames, net.PeerQuarantines, net.PeerReadmits)
			}
			if wanPlan.Enabled() {
				fmt.Fprintf(w, "wan         : %s seed=%d: %d frames delayed, %d writes shaped, %d cut-held\n",
					wanPlan.String(), *wanSeed, net.WANDelayedFrames, net.WANShapedWrites, net.WANCutHeld)
			}
		}
	}
	if wanPlan.Enabled() && *transport == "sim" {
		if ws, ok := cfg.Scheduler.(interface {
			Delivered() int64
			Held() int64
			Elapsed() time.Duration
		}); ok {
			fmt.Fprintf(w, "wan         : %s seed=%d: %d delivered in %v virtual time, %d cut-held\n",
				wanPlan.String(), *wanSeed, ws.Delivered(), ws.Elapsed().Round(time.Microsecond), ws.Held())
		}
	}
	if len(result.Degraded) > 0 {
		fmt.Fprintf(w, "degraded    : %v (non-durable at shutdown; no re-arm succeeded)\n", result.Degraded)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "chcrun: close trace file:", cerr)
			}
		}()
		if err := chc.WriteTraceJSON(f, result); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace       : written to %s\n", *traceFile)
	}
	return nil
}

// batchMode carries the flag values of a batch run.
type batchMode struct {
	params     chc.Params
	protocol   string
	k          int
	transport  string
	seed       int64
	rng        *rand.Rand
	faulty     []chc.ProcID
	crashes    []chc.CrashPlan
	scheduler  chc.Scheduler
	chaos      chc.ChaosProfile
	chaosSeed  int64
	walDir     string
	recoverWAL bool
	downtime   time.Duration
	diskPlan   chc.DiskFaultPlan
	netPlan    chc.NetFaultPlan
	netSeed    int64
	checkpoint int64
	durability chc.DurabilityPolicy
	wire       *chc.WireConfig
	wan        chc.WANPlan
	wanSeed    int64
}

// runBatchMode executes -batch instances of -protocol as one batch
// multiplexed over the shared transport, then reports per-instance decisions
// and agreement.
func runBatchMode(w io.Writer, m batchMode) error {
	var proto chc.BatchProtocol
	switch m.protocol {
	case "cc":
		proto = chc.BatchCC
	case "vector":
		proto = chc.BatchVector
	case "byzantine":
		proto = chc.BatchByzantine
	default:
		return fmt.Errorf("unknown protocol %q (want cc, vector or byzantine)", m.protocol)
	}
	var bt chc.BatchTransport
	switch m.transport {
	case "sim":
		bt = chc.BatchSim
	case "inproc":
		bt = chc.BatchInProcess
	case "tcp":
		bt = chc.BatchTCP
	default:
		return fmt.Errorf("unknown transport %q", m.transport)
	}

	instances := make([]chc.BatchInstance, m.k)
	for i := range instances {
		inputs := make([]chc.Point, m.params.N)
		for j := range inputs {
			p := make([]float64, m.params.D)
			for c := range p {
				p[c] = m.rng.Float64() * 10
			}
			inputs[j] = chc.NewPoint(p...)
		}
		inst := chc.BatchInstance{Params: m.params, Inputs: inputs, Protocol: proto}
		if proto == chc.BatchByzantine {
			// -faulty IDs become incorrect-input adversaries of every
			// Byzantine instance (mirroring -byz incorrect in single mode).
			for _, id := range m.faulty {
				inst.Faults = append(inst.Faults, chc.BatchFault{
					Proc:     id,
					Behavior: chc.ByzIncorrectInput,
					Input:    chc.NewPoint(make([]float64, m.params.D)...),
				})
			}
		}
		instances[i] = inst
	}

	cfg := chc.BatchConfig{
		N:         m.params.N,
		Instances: instances,
		Crashes:   m.crashes,
		Seed:      m.seed,
		Transport: bt,
		Timeout:   5 * time.Minute,
		ChaosSeed: m.chaosSeed,
	}
	if proto != chc.BatchByzantine {
		cfg.Faulty = m.faulty
	}
	if bt == chc.BatchSim {
		cfg.Scheduler = m.scheduler
	}
	if m.chaos.Enabled() {
		profile := m.chaos
		cfg.Chaos = &profile
	}
	if m.walDir != "" {
		if err := os.MkdirAll(m.walDir, 0o755); err != nil {
			return fmt.Errorf("-wal-dir: %w", err)
		}
		cfg.WALDir = m.walDir
	}
	if m.recoverWAL {
		cfg.Recover = true
		cfg.RecoverDowntime = m.downtime
	}
	if m.diskPlan.Enabled() {
		cfg.WALFS = chc.DiskFaultFS(m.diskPlan)
	}
	if m.netPlan.Enabled() {
		p := m.netPlan
		cfg.NetFaults = &p
	}
	cfg.Wire = m.wire
	if m.checkpoint > 0 {
		cfg.Checkpoint = chc.WALCheckpointPolicy{EveryBytes: m.checkpoint}
	}
	cfg.Durability = m.durability
	if m.wan.Enabled() {
		p := m.wan
		cfg.WAN = &p
		cfg.WANSeed = m.wanSeed
	}

	start := time.Now()
	result, err := chc.RunBatch(cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Fprintf(w, "batch consensus: %d × %s over %s: n=%d f=%d d=%d ε=%g seed=%d (%v)\n",
		m.k, m.protocol, m.transport, m.params.N, m.params.F, m.params.D, m.params.Epsilon,
		m.seed, elapsed.Round(time.Millisecond))
	correct := m.params.N
	if proto == chc.BatchByzantine {
		correct -= len(m.faulty)
	}
	for k := range instances {
		var polys []*chc.Polytope
		if proto == chc.BatchVector {
			for _, pt := range result.Points[k] {
				polys = append(polys, chc.PointPolytope(pt))
			}
		} else {
			for _, out := range result.Outputs[k] {
				polys = append(polys, out)
			}
		}
		maxRound := 0
		for _, r := range result.Rounds[k] {
			if r > maxRound {
				maxRound = r
			}
		}
		line := fmt.Sprintf("  instance %-2d %d/%d decided by round %d", k, len(polys), correct, maxRound)
		if d, herr := chc.MaxPairwiseHausdorff(polys, chc.DefaultEps); herr == nil {
			line += fmt.Sprintf(", max d_H = %.3g <= ε: %v", d, d <= m.params.Epsilon+1e-9)
		}
		fmt.Fprintln(w, line)
	}
	if len(result.Crashed) > 0 {
		ids := make([]int, 0, len(result.Crashed))
		for id := range result.Crashed {
			ids = append(ids, int(id))
		}
		fmt.Fprintf(w, "crashed     : %v\n", ids)
	}
	if result.Stats != nil {
		fmt.Fprintf(w, "messages    : %d sends, %d bytes across %d instances\n",
			result.Stats.Sends, result.Stats.Bytes, m.k)
		if net := result.Stats.Net; net != nil && net.FramesSent > 0 {
			fmt.Fprintf(w, "network     : %d frames, %d retransmits, %d dup-suppressed, %d reconnects\n",
				net.FramesSent, net.Retransmits, net.DupSuppressed, net.Reconnects)
			if m.chaos.Enabled() {
				fmt.Fprintf(w, "chaos       : %s seed=%d: %d drops, %d dups, %d delays, %d partition drops injected\n",
					m.chaos.String(), m.chaosSeed, net.InjectedDrops, net.InjectedDups, net.InjectedDelays, net.PartitionDrops)
			}
			if m.walDir != "" {
				fmt.Fprintf(w, "recovery    : %d wal appends in %d fsync batches, %d link resumes\n",
					net.WALAppends, net.WALSyncs, net.Resumes)
			}
			if m.diskPlan.Enabled() || m.checkpoint > 0 {
				fmt.Fprintf(w, "storage     : %d durability faults, %d fail-stops, %d degradations, %d re-arms, %d checkpoints\n",
					net.DurabilityFaults, net.FailStops, net.Degradations, net.Rearms, net.WALCheckpoints)
			}
			if m.netPlan.Enabled() {
				fmt.Fprintf(w, "wire        : %s seed=%d: %d faults injected, %d corrupt frames rejected, %d quarantines, %d readmits\n",
					m.netPlan.String(), m.netSeed, net.InjectedWire, net.CorruptFrames, net.PeerQuarantines, net.PeerReadmits)
			}
			if m.wan.Enabled() {
				fmt.Fprintf(w, "wan         : %s seed=%d: %d frames delayed, %d writes shaped, %d cut-held\n",
					m.wan.String(), m.wanSeed, net.WANDelayedFrames, net.WANShapedWrites, net.WANCutHeld)
			}
		}
	}
	return nil
}

// runByzantine executes the Byzantine-compiled protocol with the selected
// adversary behaviour at the first listed faulty process (default: the
// last process).
func runByzantine(w io.Writer, params chc.Params, inputs []chc.Point, faulty []chc.ProcID, behaviorName string, seed int64) error {
	var behavior chc.ByzantineBehavior
	switch behaviorName {
	case "silent":
		behavior = chc.ByzSilent
	case "incorrect":
		behavior = chc.ByzIncorrectInput
	case "equivocator":
		behavior = chc.ByzEquivocator
	case "garbler":
		behavior = chc.ByzGarbler
	default:
		return fmt.Errorf("unknown byzantine behaviour %q", behaviorName)
	}
	target := chc.ProcID(params.N - 1)
	if len(faulty) > 0 {
		target = faulty[0]
	}
	cfg := chc.ByzantineRunConfig{
		Params: params,
		Inputs: inputs,
		Faults: []chc.ByzantineFault{{
			Proc:     target,
			Behavior: behavior,
			Input:    chc.NewPoint(make([]float64, params.D)...),
		}},
		Seed: seed,
	}
	start := time.Now()
	result, err := chc.RunByzantine(cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(w, "byzantine convex hull consensus: n=%d f=%d d=%d ε=%g adversary=%v at p%d (%v)\n",
		params.N, params.F, params.D, params.Epsilon, behavior, target, elapsed.Round(time.Millisecond))
	for _, id := range result.Correct() {
		out, ok := result.Outputs[id]
		if !ok {
			fmt.Fprintf(w, "  p%-2d (no decision)\n", id)
			continue
		}
		vol, _ := out.Volume(chc.DefaultEps)
		fmt.Fprintf(w, "  p%-2d %d vertices, volume %.4g\n", id, out.NumVertices(), vol)
	}
	if err := chc.CheckByzantineValidity(result, &cfg); err == nil {
		fmt.Fprintln(w, "validity    : ok")
	} else {
		fmt.Fprintf(w, "validity    : VIOLATED: %v\n", err)
	}
	if d, holds, err := chc.CheckByzantineAgreement(result); err == nil {
		fmt.Fprintf(w, "ε-agreement : max d_H = %.3g <= %g : %v\n", d, params.Epsilon, holds)
	}
	fmt.Fprintf(w, "messages    : %d sends, %d bytes (reliable broadcast)\n",
		result.Stats.Sends, result.Stats.Bytes)
	return nil
}

// printTelemetrySummary prints the message/network/recovery counters from the
// process-wide registry. Error and timeout exits use it: those paths have no
// result object to report from, but the registry has been counting all along.
func printTelemetrySummary(w io.Writer) {
	snap := chc.TelemetrySnapshot()
	total := func(name string) int64 {
		if mf := snap.Find(name); mf != nil {
			return int64(mf.Total())
		}
		return 0
	}
	fmt.Fprintf(w, "telemetry   : %d sends, %d frames, %d retransmits, %d reconnects, %d restarts (registry totals at exit)\n",
		total("chc_runtime_sends_total"), total("chc_rlink_frames_sent_total"),
		total("chc_rlink_retransmits_total"), total("chc_tcp_reconnects_total"),
		total("chc_runtime_restarts_total"))
	if drops := total("chc_chaos_drops_total") + total("chc_chaos_partition_drops_total"); drops > 0 {
		fmt.Fprintf(w, "chaos       : %d drops, %d dups, %d delays injected\n",
			drops, total("chc_chaos_dups_total"), total("chc_chaos_delays_total"))
	}
	if appends := total("chc_wal_appends_total"); appends > 0 {
		fmt.Fprintf(w, "recovery    : %d wal appends in %d fsync batches, %d link resumes\n",
			appends, total("chc_wal_fsyncs_total"), total("chc_rlink_resumes_total"))
	}
}

// writeTelemetryJSON dumps the final registry snapshot to path for scripting.
func writeTelemetryJSON(w io.Writer, path string) error {
	data, err := json.MarshalIndent(chc.TelemetrySnapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("-telemetry-json: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("-telemetry-json: %w", err)
	}
	fmt.Fprintf(w, "telemetry   : snapshot written to %s\n", path)
	return nil
}

func parseIDs(s string) ([]chc.ProcID, error) {
	var out []chc.ProcID
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad process ID %q", part)
		}
		out = append(out, chc.ProcID(id))
	}
	return out, nil
}

func parseCrashes(s string) ([]chc.CrashPlan, error) {
	var out []chc.CrashPlan
	for _, part := range strings.Split(s, ",") {
		bits := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(bits) != 2 {
			return nil, fmt.Errorf("bad crash plan %q (want id:afterSends)", part)
		}
		id, err := strconv.Atoi(bits[0])
		if err != nil {
			return nil, fmt.Errorf("bad crash process %q", bits[0])
		}
		after, err := strconv.Atoi(bits[1])
		if err != nil {
			return nil, fmt.Errorf("bad crash afterSends %q", bits[1])
		}
		out = append(out, chc.CrashPlan{Proc: chc.ProcID(id), AfterSends: after})
	}
	return out, nil
}

func containsID(ids []chc.ProcID, id chc.ProcID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

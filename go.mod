module chc

go 1.22

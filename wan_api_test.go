package chc_test

import (
	"reflect"
	"testing"
	"time"

	"chc"
)

// wanRun executes one simulator run under a WAN virtual-time schedule and
// returns its decided polytopes keyed by process.
func wanRun(t *testing.T, spec string, seed int64) map[chc.ProcID]*chc.Polytope {
	t.Helper()
	plan, err := chc.ParseWANPlan(spec)
	if err != nil {
		t.Fatalf("ParseWANPlan(%q): %v", spec, err)
	}
	p := params()
	sched, err := chc.NewWANScheduler(plan, p.N, seed)
	if err != nil {
		t.Fatalf("NewWANScheduler: %v", err)
	}
	cfg := chc.RunConfig{
		Params:    p,
		Inputs:    inputs2D(p.N, 7),
		Scheduler: sched,
	}
	result, err := chc.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep, err := chc.CheckAgreement(result); err != nil || !rep.Holds {
		t.Fatalf("agreement under WAN schedule: %+v, %v", rep, err)
	}
	if err := chc.CheckValidity(result, &cfg); err != nil {
		t.Error(err)
	}
	return result.Outputs
}

// TestWANSchedulerDeterministic pins the subsystem's reproducibility
// contract: the same plan and seed yield bitwise-identical decisions, and a
// different seed yields a different (but still correct) execution.
func TestWANSchedulerDeterministic(t *testing.T) {
	const spec = "us-eu-ap,delay=1,jitter=0.3,tail=0.05,cut=us->eu@5ms-40ms"
	a := wanRun(t, spec, 42)
	b := wanRun(t, spec, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same WAN seed produced different decisions")
	}
	// A different seed must still satisfy the paper's guarantees (checked in
	// wanRun); its decisions usually differ, but that is not a contract.
	wanRun(t, spec, 43)
}

// TestWithWANNetworked shapes a live in-process run through a geo topology
// and checks shaping is observable yet consumes no fault budget.
func TestWithWANNetworked(t *testing.T) {
	plan, err := chc.ParseWANPlan("3-regions,delay=0.02,tail=0.1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := chc.RunConfig{Params: params(), Inputs: inputs2D(5, 3)}
	result, err := chc.RunNetworked(cfg, chc.InProcess, 60*time.Second,
		chc.WithWAN(plan, 9))
	if err != nil {
		t.Fatal(err)
	}
	if rep, err := chc.CheckAgreement(result); err != nil || !rep.Holds {
		t.Fatalf("agreement under WAN shaping: %+v, %v", rep, err)
	}
	if err := chc.CheckValidity(result, &cfg); err != nil {
		t.Error(err)
	}
	if result.Stats == nil || result.Stats.Net.WANDelayedFrames == 0 {
		t.Error("WAN shaping left no trace in Stats.Net.WANDelayedFrames")
	}
	if result.Stats.Net.InjectedDrops != 0 {
		t.Errorf("WAN shaping dropped %d frames; the model is delay-only", result.Stats.Net.InjectedDrops)
	}
}

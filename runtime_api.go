package chc

import (
	"fmt"
	"time"

	"chc/internal/chaos"
	"chc/internal/core"
	"chc/internal/diskfault"
	"chc/internal/dist"
	"chc/internal/engine"
	"chc/internal/netfault"
	"chc/internal/runtime"
	"chc/internal/telemetry"
	"chc/internal/wal"
)

// TransportKind selects how RunNetworked connects the processes.
type TransportKind int

// Available transports.
const (
	// InProcess connects processes with in-memory mailboxes, one goroutine
	// per process (real concurrency, no sockets).
	InProcess TransportKind = iota + 1
	// TCP connects processes over loopback TCP sockets using the library's
	// binary wire format, with the reliable-link layer (sequence numbers,
	// acks, retransmission, reconnect) always active.
	TCP
)

// engineTransport maps the public transport to the engine's executor.
func (t TransportKind) engineTransport() (engine.Transport, error) {
	switch t {
	case InProcess:
		return engine.TransportChannel, nil
	case TCP:
		return engine.TransportTCP, nil
	default:
		return 0, fmt.Errorf("chc: unknown transport %d", int(t))
	}
}

// ChaosProfile describes injected network faults for RunNetworked: per-frame
// drop and duplication probabilities, bounded random delays, and transient
// link partitions. See LightChaos, HeavyChaos and ParseChaosProfile.
type ChaosProfile = chaos.Profile

// ChaosPartition is a timed link cut inside a ChaosProfile.
type ChaosPartition = chaos.Partition

// NetStats carries the link-layer counters of a networked run: reliability
// work (retransmits, duplicate suppression, reordering), injected chaos
// faults, and TCP link repair.
type NetStats = dist.NetStats

// LightChaos returns a mild fault profile (occasional drops and duplicates,
// sub-millisecond delays).
func LightChaos() ChaosProfile { return chaos.Light() }

// HeavyChaos returns the acceptance profile of the chaos matrix: >= 20%
// drops, duplication, delay jitter and a transient partition of process 0.
func HeavyChaos() ChaosProfile { return chaos.Heavy() }

// ParseChaosProfile parses "off", "light", "heavy", or a custom
// "drop=0.2,dup=0.1,delay=100us-2ms,part=5ms-25ms:0+1" specification.
func ParseChaosProfile(spec string) (ChaosProfile, error) { return chaos.ParseProfile(spec) }

// NetworkOption tunes RunNetworked beyond the RunConfig.
type NetworkOption func(*networkOptions)

type networkOptions struct {
	chaos       *ChaosProfile
	chaosSeed   int64
	walDir      string
	recover     bool
	recoverWait time.Duration
	diskPlan    *DiskFaultPlan
	netPlan     *NetFaultPlan
	checkpoint  int64
	durability  DurabilityPolicy
	wire        *WireConfig
	wan         *WANPlan
	wanSeed     int64
}

// WireConfig tunes the TCP transport's write path: frame coalescing (on by
// default; SingleFrame restores the write+flush-per-frame path), the
// flush-deadline batching window, and optional per-batch flate compression
// negotiated in the connection handshake. The zero value is the default
// production configuration. Usable both with WithWire and as
// BatchConfig.Wire.
type WireConfig = runtime.WireConfig

// WithWire applies a wire write-path configuration to the TCP transport.
// Requires the TCP transport — the other transports exchange structured
// messages, not framed bytes.
func WithWire(cfg WireConfig) NetworkOption {
	return func(o *networkOptions) {
		c := cfg
		o.wire = &c
	}
}

// WithNetworkChaos injects seeded network faults below the reliable-link
// layer (which is enabled automatically). The fault plan of every link is a
// deterministic function of the seed, so a failing run can be replayed.
func WithNetworkChaos(profile ChaosProfile, seed int64) NetworkOption {
	return func(o *networkOptions) {
		p := profile
		o.chaos = &p
		o.chaosSeed = seed
	}
}

// WithWAL journals every process's protocol-relevant state — input,
// delivered messages, incarnation epochs, decision — to per-process
// write-ahead logs in dir (one node-NNN.wal file each). Journaling forces
// the reliable-link layer: a delivery is fsynced before it is acknowledged,
// so a node killed at any instant can be reconstructed from its log.
func WithWAL(dir string) NetworkOption {
	return func(o *networkOptions) { o.walDir = dir }
}

// WithCrashRecovery converts the RunConfig's crash plans from crash-stop
// faults into crash-recovery faults: each planned crash kills the node
// mid-protocol (possibly mid-broadcast), keeps it down for the given
// downtime, then relaunches it from its write-ahead log with a new
// incarnation epoch. Requires WithWAL. Recovered processes are correct
// processes — they decide, and every paper guarantee must hold for their
// outputs.
func WithCrashRecovery(downtime time.Duration) NetworkOption {
	return func(o *networkOptions) {
		o.recover = true
		o.recoverWait = downtime
	}
}

// DiskFaultPlan describes seeded, deterministic storage-fault injection
// against the write-ahead logs: write errors, ENOSPC, torn writes, fsync
// failures and latency spikes, and a power cut after a byte budget. The
// fate of every I/O operation is a pure function of (seed, file, op kind,
// op index), so a failing run replays exactly. See FlakyDisk, SickDisk and
// ParseDiskFaultPlan.
type DiskFaultPlan = diskfault.Plan

// FlakyDisk returns a mild storage-fault plan (rare write/fsync errors,
// occasional sub-millisecond fsync stalls).
func FlakyDisk() DiskFaultPlan { return diskfault.Flaky() }

// SickDisk returns an aggressive storage-fault plan (frequent write errors,
// torn writes, failing and stalling fsyncs).
func SickDisk() DiskFaultPlan { return diskfault.Sick() }

// ParseDiskFaultPlan parses "off", "flaky", "sick", or a custom
// "werr=0.05,torn=0.02,syncerr=0.1,slow=0.05:1ms-5ms,cut=65536,path=node-001,after=32"
// specification (presets are refinable: "sick,syncerr=0.5").
func ParseDiskFaultPlan(spec string) (DiskFaultPlan, error) { return diskfault.ParsePlan(spec) }

// DurabilityPolicy decides what a node does when its write-ahead log stops
// accepting writes. See FailStop and Degrade.
type DurabilityPolicy = runtime.DurabilityPolicy

// Durability policies for WithDurability.
const (
	// FailStop (default): a node that cannot journal crashes on the spot,
	// consuming one of the f crash faults the protocol tolerates.
	FailStop = runtime.FailStop
	// Degrade: the node quarantines into non-durable mode, keeps
	// participating, and a background loop re-arms the WAL with backoff;
	// a successful re-arm restores full durability including the
	// degraded-window deliveries.
	Degrade = runtime.Degrade
)

// NetFaultPlan describes seeded, deterministic byte-stream corruption
// against the TCP links: bit flips, garbage injection, length-prefix
// mutation, truncation, mid-frame connection resets and read/write stalls.
// The fate of every byte window on a link is a pure function of
// (seed, link, window index), so a failing run replays exactly. See
// FlakyNet, HostileNet and ParseNetFaultPlan.
type NetFaultPlan = netfault.Plan

// FlakyNet returns a mild wire-fault plan (rare bit flips, occasional lost
// tails and sub-millisecond stalls).
func FlakyNet() NetFaultPlan { return netfault.Flaky() }

// HostileNet returns an aggressive wire-fault plan (frequent flips, garbage
// injection, length-prefix mutation, truncations and mid-frame resets).
func HostileNet() NetFaultPlan { return netfault.Hostile() }

// ParseNetFaultPlan parses "off", "flaky", "hostile", or a custom
// "flip=0.05,garbage=0.02,lenmut=0.01,trunc=0.02,reset=0.005,stall=0.02:100us-2ms,window=256,link=0->1,after=2048"
// specification (presets are refinable: "hostile,reset=0.1").
func ParseNetFaultPlan(spec string) (NetFaultPlan, error) { return netfault.ParsePlan(spec) }

// WithNetFaults corrupts the raw byte streams under the wire codec with the
// given seeded plan. Requires the TCP transport — the other transports
// exchange structured messages, not bytes. Composable with WithNetworkChaos
// and WithDiskFaults: wire, link and storage fault schedules are independent
// deterministic functions of their seeds.
func WithNetFaults(plan NetFaultPlan) NetworkOption {
	return func(o *networkOptions) {
		p := plan
		o.netPlan = &p
	}
}

// WithDiskFaults injects seeded storage faults into every WAL write path.
// Requires WithWAL. Composable with WithNetworkChaos: network and storage
// fault schedules are independent deterministic functions of their seeds.
func WithDiskFaults(plan DiskFaultPlan) NetworkOption {
	return func(o *networkOptions) {
		p := plan
		o.diskPlan = &p
	}
}

// WithWALCheckpoint bounds on-disk WAL size: whenever a node's live log
// exceeds everyBytes, it is rotated into a segment and a CRC-framed
// full-history snapshot is published atomically; compaction then deletes
// segments the previous snapshot already covers. Recovery replays snapshot +
// tail, falling back to the previous snapshot if the current one is torn.
// Requires WithWAL.
func WithWALCheckpoint(everyBytes int64) NetworkOption {
	return func(o *networkOptions) { o.checkpoint = everyBytes }
}

// WithDurability selects the degradation policy applied when a node's
// journal fails mid-run (default FailStop). Requires WithWAL. Nodes still
// quarantined when the run ends are listed in RunResult.Degraded.
func WithDurability(policy DurabilityPolicy) NetworkOption {
	return func(o *networkOptions) { o.durability = policy }
}

// RunNetworked executes a convex hull consensus instance under real
// concurrency — one goroutine per process — over the selected transport
// (via the unified engine). Unlike Run, delivery order comes from actual
// goroutine and network scheduling, so executions are not reproducible;
// cfg.Seed and cfg.Scheduler are ignored (chaos fault plans, by contrast,
// are seeded and reproducible per link).
//
// The returned result carries outputs and traces; Crashed marks processes
// whose scheduled crash prevented a decision. Stats.Net exposes the
// link-layer counters (retransmits, duplicate suppressions, injected
// faults, reconnects) when the reliable-link layer was active.
func RunNetworked(cfg RunConfig, transport TransportKind, timeout time.Duration, opts ...NetworkOption) (*RunResult, error) {
	var netOpts networkOptions
	for _, o := range opts {
		o(&netOpts)
	}
	if netOpts.recover && netOpts.walDir == "" {
		return nil, fmt.Errorf("chc: WithCrashRecovery requires WithWAL")
	}
	if netOpts.netPlan != nil && transport != TCP {
		return nil, fmt.Errorf("chc: WithNetFaults requires the TCP transport")
	}
	if netOpts.wire != nil && transport != TCP {
		return nil, fmt.Errorf("chc: WithWire requires the TCP transport")
	}
	if netOpts.walDir == "" {
		switch {
		case netOpts.diskPlan != nil:
			return nil, fmt.Errorf("chc: WithDiskFaults requires WithWAL")
		case netOpts.checkpoint > 0:
			return nil, fmt.Errorf("chc: WithWALCheckpoint requires WithWAL")
		case netOpts.durability != FailStop:
			return nil, fmt.Errorf("chc: WithDurability requires WithWAL")
		}
	}
	engTransport, err := transport.engineTransport()
	if err != nil {
		return nil, err
	}
	var restartCrashes []CrashPlan
	if netOpts.recover {
		// Crash-recovery kills are not crash-stop faults: the node comes
		// back and must behave as a correct process, so its crash plan is
		// detached before validation (which would otherwise require the
		// process to be declared faulty) and turned into restart plans.
		restartCrashes = cfg.Crashes
		cfg.Crashes = nil
	}
	cfg.Seed = 0
	cfg.Scheduler = nil
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.TelemetryAddr != "" {
		if _, err := telemetry.EnsureServer(cfg.TelemetryAddr); err != nil {
			return nil, err
		}
	}
	params := cfg.Params
	engOpts := engine.Options{
		Transport: engTransport,
		Crashes:   cfg.Crashes,
		Timeout:   timeout,
		Chaos:     netOpts.chaos,
		ChaosSeed: netOpts.chaosSeed,
		WALDir:    netOpts.walDir,
		Inputs:    cfg.Inputs,
	}
	if netOpts.diskPlan != nil {
		engOpts.WALFS = diskfault.New(wal.OSFS(), *netOpts.diskPlan)
	}
	engOpts.NetFaults = netOpts.netPlan
	engOpts.Wire = netOpts.wire
	engOpts.WAN = netOpts.wan
	engOpts.WANSeed = netOpts.wanSeed
	if netOpts.checkpoint > 0 {
		engOpts.Checkpoint = wal.CheckpointPolicy{EveryBytes: netOpts.checkpoint}
	}
	engOpts.Durability = netOpts.durability
	if netOpts.recover {
		plans := make([]runtime.RestartPlan, 0, len(restartCrashes))
		for _, cp := range restartCrashes {
			plans = append(plans, runtime.RestartPlan{
				Proc:           cp.Proc,
				KillAfterSends: cp.AfterSends,
				Downtime:       netOpts.recoverWait,
			})
		}
		engOpts.Restarts = plans
	}
	res, err := engine.Run(engine.Spec{N: params.N, Instances: []engine.InstanceSpec{cfg.Spec()}}, engOpts)
	if res == nil {
		return nil, err
	}
	if err != nil {
		return nil, err
	}
	result := &RunResult{
		Params:   params,
		Outputs:  make(map[ProcID]*Polytope),
		Crashed:  make(map[ProcID]bool),
		Faulty:   make(map[ProcID]bool),
		Traces:   make(map[ProcID]Trace),
		Stats:    res.Stats,
		Degraded: res.Degraded,
	}
	if telemetry.Enabled() {
		result.Telemetry = telemetry.Default().Snapshot()
	}
	for _, id := range cfg.Faulty {
		result.Faulty[id] = true
	}
	// Inspect the post-run incarnations: with crash recovery a relaunched
	// process replaces the one first constructed, and its recovered state is
	// the one to read.
	for i := 0; i < params.N; i++ {
		id := ProcID(i)
		impl := res.Sub(0, id).(*core.Process)
		result.Traces[id] = impl.TraceData()
		out, oerr := impl.Output()
		if oerr != nil {
			// Undecided: either it crashed per plan or the run timed out
			// for it; with a successful cluster run, only crashes remain.
			result.Crashed[id] = true
			continue
		}
		result.Outputs[id] = out
	}
	return result, nil
}

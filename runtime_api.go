package chc

import (
	"fmt"
	"time"

	"chc/internal/core"
	"chc/internal/dist"
	"chc/internal/runtime"
	"chc/internal/wire"
)

// TransportKind selects how RunNetworked connects the processes.
type TransportKind int

// Available transports.
const (
	// InProcess connects processes with in-memory mailboxes, one goroutine
	// per process (real concurrency, no sockets).
	InProcess TransportKind = iota + 1
	// TCP connects processes over loopback TCP sockets using the library's
	// binary wire format.
	TCP
)

// RunNetworked executes a convex hull consensus instance under real
// concurrency — one goroutine per process — over the selected transport.
// Unlike Run, delivery order comes from actual goroutine and network
// scheduling, so executions are not reproducible; cfg.Seed and
// cfg.Scheduler are ignored.
//
// The returned result carries outputs and traces; Crashed marks processes
// whose scheduled crash prevented a decision.
func RunNetworked(cfg RunConfig, transport TransportKind, timeout time.Duration) (*RunResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	params := cfg.Params
	procs := make([]dist.Process, params.N)
	impls := make([]*core.Process, params.N)
	for i := 0; i < params.N; i++ {
		proc, err := core.NewProcess(params, ProcID(i), cfg.Inputs[i])
		if err != nil {
			return nil, err
		}
		impls[i] = proc
		procs[i] = proc
	}
	opts := []runtime.Option{runtime.WithSizer(wire.MessageSize)}
	if len(cfg.Crashes) > 0 {
		opts = append(opts, runtime.WithCrashes(cfg.Crashes...))
	}
	var (
		cluster *runtime.Cluster
		err     error
	)
	switch transport {
	case InProcess:
		cluster, err = runtime.NewChannelCluster(procs, opts...)
	case TCP:
		cluster, err = runtime.NewTCPCluster(procs, opts...)
	default:
		return nil, fmt.Errorf("chc: unknown transport %d", transport)
	}
	if err != nil {
		return nil, err
	}
	if err := cluster.Run(timeout); err != nil {
		return nil, err
	}
	sends, bytes := cluster.Stats()
	result := &RunResult{
		Params:  params,
		Outputs: make(map[ProcID]*Polytope),
		Crashed: make(map[ProcID]bool),
		Faulty:  make(map[ProcID]bool),
		Traces:  make(map[ProcID]Trace),
		Stats:   &Stats{Sends: int(sends), Bytes: int(bytes), KindCounts: map[string]int{}},
	}
	for _, id := range cfg.Faulty {
		result.Faulty[id] = true
	}
	for i, proc := range impls {
		id := ProcID(i)
		result.Traces[id] = proc.TraceData()
		out, oerr := proc.Output()
		if oerr != nil {
			// Undecided: either it crashed per plan or the run timed out
			// for it; with a successful cluster run, only crashes remain.
			result.Crashed[id] = true
			continue
		}
		result.Outputs[id] = out
	}
	return result, nil
}

package chc

import (
	"chc/internal/wan"
)

// Wide-area network realism: every link of a run can be shaped through a
// seeded geo-topology model — per-edge propagation delay with jitter and
// heavy tails, token-bucket bandwidth with queueing delay, and asymmetric
// one-way partition windows. The model is delay-only (no drops), so it
// composes with the chaos, wire-fault and crash stacks without consuming
// crash budgets or tripping the peer quarantine machinery.
type (
	// WANPlan describes the model: a topology preset ("3-regions",
	// "us-eu-ap", "star", "clos"), region count, delay scaling, jitter and
	// tail parameters, bandwidth, one-way cut windows, and per-link
	// overrides. See ParseWANPlan for the textual form; the zero value
	// disables shaping.
	WANPlan = wan.Plan

	// WANCut is a one-way partition window inside a WANPlan: frames from
	// From to To departing inside [Start, End) are held until the window
	// closes (the reverse direction is untouched).
	WANCut = wan.Cut

	// WANLinkOverride pins one directed link's base delay and bandwidth,
	// overriding the topology preset.
	WANLinkOverride = wan.LinkOverride
)

// ParseWANPlan parses "off", a bare topology ("3-regions", "us-eu-ap",
// "star", "clos"), or a full specification such as
// "3-regions,regions=3,delay=0.5,jitter=0.2,tail=0.01,tailx=8,bw=64mb,msg=512,cut=r0->r1@10ms-50ms,link=0->3:5ms/1gb".
func ParseWANPlan(spec string) (WANPlan, error) { return wan.ParsePlan(spec) }

// NewWANScheduler builds the virtual-time form of the WAN model for the
// deterministic simulator (Run with RunConfig.Scheduler): delivery order is
// what the modeled link delays, bandwidth serialization and cut windows
// dictate, delivered in zero wall-clock time, and is a pure function of
// (plan, n, seed) — the same seed replays the same schedule bit for bit.
func NewWANScheduler(plan WANPlan, n int, seed int64) (Scheduler, error) {
	return wan.NewSimScheduler(plan, n, seed)
}

// WithWAN shapes every link of a RunNetworked execution through the WAN
// model: frames (and, on TCP, the raw writes) are released late per the
// seeded delay/bandwidth schedule, and one-way cut windows hold traffic
// without dropping it. Delay-only, so it composes with WithNetworkChaos and
// WithNetFaults — shaped links never consume crash budgets, never corrupt
// bytes, and never trip peer quarantine.
func WithWAN(plan WANPlan, seed int64) NetworkOption {
	return func(o *networkOptions) {
		p := plan
		o.wan = &p
		o.wanSeed = seed
	}
}

// Benchmarks: one per experiment of DESIGN.md's index (E1..E11, run in
// quick mode so a full -bench pass stays laptop-scale) plus micro-benchmarks
// of the substrates every round of Algorithm CC exercises — hulls, polygon
// intersection, Minkowski combination, Hausdorff distance, the LP solver,
// the stable vector primitive, the wire codec, and whole consensus runs.
package chc_test

import (
	"math/rand"
	"testing"

	"chc"
	"chc/internal/experiments"
)

// benchExperiment runs one registered experiment per iteration (quick mode).
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(experiments.Options{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1RoundComplexity(b *testing.B)   { benchExperiment(b, "E1") }
func BenchmarkE2Convergence(b *testing.B)       { benchExperiment(b, "E2") }
func BenchmarkE3Validity(b *testing.B)          { benchExperiment(b, "E3") }
func BenchmarkE4Optimality(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5OutputVolume(b *testing.B)      { benchExperiment(b, "E5") }
func BenchmarkE6VsVectorConsensus(b *testing.B) { benchExperiment(b, "E6") }
func BenchmarkE7Optimization(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8Impossibility(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9MessageCost(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkE10Resilience(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11CorrectInputs(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12VertexBudget(b *testing.B)     { benchExperiment(b, "E12") }
func BenchmarkE13StableVectorAblation(b *testing.B) {
	benchExperiment(b, "E13")
}
func BenchmarkE14Byzantine(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkE15StrongConvexity(b *testing.B) { benchExperiment(b, "E15") }

// --- end-to-end consensus benchmarks ---

func benchConsensus(b *testing.B, n, f, d int, epsilon float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	inputs := make([]chc.Point, n)
	for i := range inputs {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64() * 10
		}
		inputs[i] = chc.NewPoint(p...)
	}
	cfg := chc.RunConfig{
		Params: chc.Params{
			N: n, F: f, D: d,
			Epsilon:    epsilon,
			InputLower: 0, InputUpper: 10,
		},
		Inputs: inputs,
		Seed:   1,
	}
	if f > 0 {
		cfg.Faulty = []chc.ProcID{0}
		cfg.Crashes = []chc.CrashPlan{{Proc: 0, AfterSends: 9}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := chc.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConsensusN5D1(b *testing.B)  { benchConsensus(b, 4, 1, 1, 0.1) }
func BenchmarkConsensusN5D2(b *testing.B)  { benchConsensus(b, 5, 1, 2, 0.1) }
func BenchmarkConsensusN9D2(b *testing.B)  { benchConsensus(b, 9, 2, 2, 0.1) }
func BenchmarkConsensusN13D2(b *testing.B) { benchConsensus(b, 13, 1, 2, 0.1) }
func BenchmarkConsensusN6D3(b *testing.B)  { benchConsensus(b, 6, 1, 3, 2.0) }

// BenchmarkConsensusN10F2D3 mirrors the benchsuite acceptance case: n=10,
// f=2, d=3 under the correct-inputs model (n >= (d+2)f+1 = 11 rules out the
// incorrect-inputs variant at this size), with two crashing processes.
func BenchmarkConsensusN10F2D3(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inputs := make([]chc.Point, 10)
	for i := range inputs {
		p := make([]float64, 3)
		for j := range p {
			p[j] = rng.Float64() * 10
		}
		inputs[i] = chc.NewPoint(p...)
	}
	cfg := chc.RunConfig{
		Params: chc.Params{
			N: 10, F: 2, D: 3,
			Epsilon:    2.0,
			InputLower: 0, InputUpper: 10,
			Model: chc.CorrectInputs,
		},
		Inputs:  inputs,
		Faulty:  []chc.ProcID{0, 1},
		Crashes: []chc.CrashPlan{{Proc: 0, AfterSends: 9}, {Proc: 1, AfterSends: 40}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := chc.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
func BenchmarkConsensusTightEps(b *testing.B) {
	benchConsensus(b, 5, 1, 2, 0.001)
}

// BenchmarkBatch8Instances mirrors the benchsuite batch-throughput case: one
// op is an eight-instance heterogeneous batch (Algorithm CC and the vector
// baseline alternating) multiplexed over the deterministic simulator via the
// unified engine. Reports instances/sec alongside the usual ns/op.
func BenchmarkBatch8Instances(b *testing.B) {
	const n, d, k = 5, 2, 8
	params := chc.Params{
		N: n, F: 1, D: d,
		Epsilon:    0.1,
		InputLower: 0, InputUpper: 10,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		instances := make([]chc.BatchInstance, k)
		for j := range instances {
			inst := chc.BatchInstance{Params: params, Inputs: randPoints(n, d, int64(i*k+j+1))}
			if j%2 == 1 {
				inst.Protocol = chc.BatchVector
			}
			instances[j] = inst
		}
		if _, err := chc.RunBatch(chc.BatchConfig{N: n, Instances: instances, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(k)*float64(b.N)/b.Elapsed().Seconds(), "instances/sec")
}

// --- substrate micro-benchmarks ---

func randPoints(n, d int, seed int64) []chc.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]chc.Point, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64() * 10
		}
		pts[i] = chc.NewPoint(p...)
	}
	return pts
}

func BenchmarkHull2D32Points(b *testing.B) {
	pts := randPoints(32, 2, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := chc.NewPolytope(pts, chc.DefaultEps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHull3D16Points(b *testing.B) {
	pts := randPoints(16, 3, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := chc.NewPolytope(pts, chc.DefaultEps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntersect2D(b *testing.B) {
	a, err := chc.NewPolytope(randPoints(12, 2, 3), chc.DefaultEps)
	if err != nil {
		b.Fatal(err)
	}
	c := a.Translate(chc.NewPoint(1, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chc.Intersect([]*chc.Polytope{a, c}, chc.DefaultEps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAverage2D(b *testing.B) {
	polys := make([]*chc.Polytope, 6)
	for k := range polys {
		p, err := chc.NewPolytope(randPoints(8, 2, int64(k+10)), chc.DefaultEps)
		if err != nil {
			b.Fatal(err)
		}
		polys[k] = p
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chc.AveragePolytopes(polys, chc.DefaultEps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHausdorff2D(b *testing.B) {
	a, err := chc.NewPolytope(randPoints(16, 2, 20), chc.DefaultEps)
	if err != nil {
		b.Fatal(err)
	}
	c, err := chc.NewPolytope(randPoints(16, 2, 21), chc.DefaultEps)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chc.Hausdorff(a, c, chc.DefaultEps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHausdorff3DWolfe(b *testing.B) {
	a, err := chc.NewPolytope(randPoints(10, 3, 30), chc.DefaultEps)
	if err != nil {
		b.Fatal(err)
	}
	c, err := chc.NewPolytope(randPoints(10, 3, 31), chc.DefaultEps)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chc.Hausdorff(a, c, chc.DefaultEps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkByzantineConsensus(b *testing.B) {
	inputs := randPoints(5, 2, 50)
	cfg := chc.ByzantineRunConfig{
		Params: chc.Params{
			N: 5, F: 1, D: 2,
			Epsilon:    0.5,
			InputLower: 0, InputUpper: 10,
		},
		Inputs: inputs,
		Faults: []chc.ByzantineFault{{Proc: 4, Behavior: chc.ByzEquivocator}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := chc.RunByzantine(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimizeQuadratic(b *testing.B) {
	p, err := chc.NewPolytope(randPoints(12, 2, 40), chc.DefaultEps)
	if err != nil {
		b.Fatal(err)
	}
	cost := chc.QuadraticCost{Target: chc.NewPoint(20, 20), Scale: 1, Radius: 40}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chc.Minimize(cost, p, chc.MinimizeOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

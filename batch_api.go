package chc

import (
	"chc/internal/multiplex"
)

// Batch execution: many independent consensus instances multiplexed over
// one network, the way a deployed system amortises its connections across
// agreement tasks.
type (
	// BatchInstance is one consensus instance of a batch.
	BatchInstance = multiplex.Instance

	// BatchConfig describes a batch execution.
	BatchConfig = multiplex.BatchConfig

	// BatchResult maps instance index -> process -> output polytope.
	BatchResult = multiplex.BatchResult
)

// RunBatch executes every instance of the batch concurrently over one
// simulated network. Message kinds are namespaced per instance, so the
// protocols cannot interfere; a crash kills every instance hosted by that
// process, as it would in a real deployment.
func RunBatch(cfg BatchConfig) (*BatchResult, error) {
	return multiplex.RunBatch(cfg)
}

package chc

import (
	"chc/internal/byzantine"
	"chc/internal/diskfault"
	"chc/internal/engine"
	"chc/internal/multiplex"
	"chc/internal/wal"
)

// Batch execution: many independent consensus instances multiplexed over
// one network, the way a deployed system amortises its connections across
// agreement tasks.
type (
	// BatchInstance is one consensus instance of a batch.
	BatchInstance = multiplex.Instance

	// BatchConfig describes a batch execution.
	BatchConfig = multiplex.BatchConfig

	// BatchResult aggregates per-instance outputs (instance index ->
	// process -> decision), decided rounds, and run statistics.
	BatchResult = multiplex.BatchResult

	// BatchProtocol selects the state machine a batch instance runs.
	BatchProtocol = multiplex.ProtocolKind

	// BatchTransport selects the executor a batch runs over.
	BatchTransport = engine.Transport

	// BatchFault assigns a Byzantine behaviour to one process of a
	// BatchCompiledByzantine instance.
	BatchFault = byzantine.Fault

	// WALFileSystem is the filesystem the write-ahead logs write through
	// (BatchConfig.WALFS); nil means the host filesystem. See DiskFaultFS.
	WALFileSystem = wal.FS

	// WALCheckpointPolicy configures WAL snapshot + segment rotation
	// (BatchConfig.Checkpoint); the zero value disables checkpointing.
	WALCheckpointPolicy = wal.CheckpointPolicy
)

// Protocols a batch instance can run.
const (
	// BatchCC runs Algorithm CC (the default).
	BatchCC = multiplex.ProtocolCC
	// BatchVector runs the approximate vector consensus baseline.
	BatchVector = multiplex.ProtocolVector
	// BatchByzantine runs the crash→Byzantine transformation (n >= 3f+1).
	BatchByzantine = multiplex.ProtocolByzantine
)

// Transports a batch can run over.
const (
	// BatchSim is the deterministic simulator (the default): delivery order
	// is a reproducible function of BatchConfig.Seed.
	BatchSim = engine.TransportSim
	// BatchInProcess runs one goroutine per process over in-memory
	// mailboxes.
	BatchInProcess = engine.TransportChannel
	// BatchTCP runs one goroutine per process over loopback TCP with the
	// wire codec and the reliable-link layer always active.
	BatchTCP = engine.TransportTCP
)

// DiskFaultFS wraps the host filesystem in seeded, deterministic storage
// fault injection for BatchConfig.WALFS — the batch counterpart of
// WithDiskFaults. Requires BatchConfig.WALDir.
func DiskFaultFS(plan DiskFaultPlan) WALFileSystem {
	return diskfault.New(wal.OSFS(), plan)
}

// RunBatch executes every instance of the batch concurrently over one
// network. Messages carry their instance index, so the protocols cannot
// interfere; a crash kills every instance hosted by that process, as it
// would in a real deployment. The batch runs over the transport selected by
// cfg.Transport — simulator by default, or the networked runtimes with
// chaos injection, write-ahead logging and crash recovery available.
func RunBatch(cfg BatchConfig) (*BatchResult, error) {
	return multiplex.RunBatch(cfg)
}

GO ?= go

.PHONY: build test check race soak soak-smoke disk-torture wire-torture fuzz-smoke serve-smoke bench bench-json bench-check bench-telemetry bench-transport bench-wan experiments

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# check is the tier-1 gate plus static analysis and the race detector over
# the concurrency-heavy packages (networked runtime, reliable links, chaos
# injection, simulator, wire codec, telemetry registry).
check: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/runtime/... ./internal/rlink/... ./internal/chaos/... ./internal/dist/... ./internal/wire/... ./internal/wal/... ./internal/engine/... ./internal/multiplex/... ./internal/telemetry/...

race:
	$(GO) test -race ./...

# soak runs the long chaos matrix (many seeds x heavy profile x crash
# plans) under the race detector. Opt-in: it is too slow for tier-1.
soak:
	CHC_CHAOS_SOAK=1 $(GO) test -race -v -run TestChaosSoak -timeout 20m ./internal/runtime/

# soak-smoke is the WAN/soak gate: the WAN model and scheduler suites, the
# chcsoak harness tests, and a short bounded chcsoak against an in-process
# daemon under a geo topology — preceded by the 64-process sim-mesh gate
# (full delivery + bitwise-reproduced schedule) and followed by a drain that
# must leave zero undecided instances — all under the race detector.
soak-smoke: build
	$(GO) test -race -timeout 10m ./internal/wan/ ./cmd/chcsoak/
	$(GO) run -race ./cmd/chcsoak -self -n 5 -duration 5s -rate 8 \
		-wan 3-regions,delay=0.002 -wan-seed 3 -mesh 64 -instance-deadline 2m

# disk-torture is the storage-fault gate: the deterministic fault injector,
# the full WAL suite (torn checkpoints, mid-rotation crashes, compaction
# bounds, byte-identical checkpointed replay), and the runtime durability
# policies (fail-stop within the f budget, degrade + re-arm), all under the
# race detector.
disk-torture: build
	$(GO) test -race -timeout 10m ./internal/diskfault/ ./internal/wal/
	$(GO) test -race -timeout 10m -run 'Durab|FailStop|Degrad|DiskFault|WALReplay' ./internal/runtime/

# wire-torture is the adversarial-wire gate: the deterministic byte-stream
# fault injector, the hardened frame codec (CRC, caps, resync), the bounded
# reliable-link buffers, and the live-TCP netfault matrix (corruption,
# quarantine/readmit, handshake-under-corruption), all under the race
# detector.
wire-torture: build
	$(GO) test -race -timeout 10m ./internal/netfault/ ./internal/wire/
	$(GO) test -race -timeout 10m -run 'Bound|Inflight|Reorder' ./internal/rlink/
	$(GO) test -race -timeout 10m -run 'NetFault|Wire|Quarantine|Handshake|Coalesce' ./internal/runtime/

# fuzz-smoke runs each codec fuzzer briefly — long enough to shake out
# shallow decoder regressions on every commit; deep fuzzing stays offline.
FUZZ_TIME ?= 30s
fuzz-smoke: build
	$(GO) test -run '^$$' -fuzz FuzzDecodeFrame -fuzztime $(FUZZ_TIME) ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzDecodeMessage -fuzztime $(FUZZ_TIME) ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzStreamDecoder -fuzztime $(FUZZ_TIME) ./internal/wire/

# serve-smoke is the resident-service gate: the resident engine (dynamic
# instance lifecycle over a live cluster, including the WAL-relaunch-mid-
# stream scenario), the session/ticket layer, the service daemon (admission
# control, retention eviction, HTTP API, auth) and the chcd smoke test
# (submit over HTTP, SIGTERM, graceful drain), all under the race detector.
serve-smoke: build
	$(GO) test -race -timeout 10m -run 'Resident|Session' ./internal/engine/ ./internal/multiplex/
	$(GO) test -race -timeout 10m ./internal/service/ ./cmd/chcd/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# bench-json runs the curated benchmark suite and writes
# BENCH_<git-sha>.json (ns/op, allocs/op, B/op per case) so the perf
# trajectory of the repo is recorded commit by commit.
bench-json: build
	$(GO) run ./cmd/chcbench -benchjson BENCH_$$(git rev-parse --short HEAD).json

# The newest committed benchmark baseline; bump when a fresh BENCH_<sha>.json
# lands.
BENCH_BASELINE ?= BENCH_8af5106.json

# bench-check is the regression gate: re-measure the suite and fail when any
# case is more than 25% slower (ns/op) — or, for cases reporting msgs/sec,
# more than 25% below — the committed baseline. The baseline defaults to the
# newest committed BENCH_<sha>.json so the transport throughput cases (absent
# from the original seed file) are gated too.
bench-check: build
	$(GO) run ./cmd/chcbench -benchjson /tmp/chc-bench-check.json -baseline $(BENCH_BASELINE)
# Allowed ns/op regression of the telemetry-disabled consensus case. 2% is
# the overhead budget of DESIGN.md §9 (every instrument's disabled path is a
# single atomic load); CI overrides this with a coarser bound because shared
# runners are noisy.
TELEMETRY_MAX_REGRESS ?= 0.02

# bench-telemetry is the observability overhead gate: the telemetry-disabled
# consensus case must stay within TELEMETRY_MAX_REGRESS of the committed
# baseline, and the telemetry-enabled twin is measured alongside so the
# BENCH_*.json trajectory records the enabled overhead commit by commit.
bench-telemetry: build
	$(GO) run ./cmd/chcbench -benchjson /tmp/chc-bench-telemetry.json \
		-bench ConsensusN10F2D3,ConsensusN10F2D3Telemetry \
		-baseline $(BENCH_BASELINE) -max-regress $(TELEMETRY_MAX_REGRESS)

# Allowed msgs/sec regression of the saturated-link transport cases. Loopback
# TCP throughput is noisier than in-process microbenchmarks, so the bound is
# coarse; the structural claim (coalesced >> single-frame) is asserted by the
# committed BENCH_*.json trajectory.
TRANSPORT_MAX_REGRESS ?= 0.25

# bench-transport is the wire throughput gate: the three saturated-link cases
# (coalesced default, legacy single-frame, compressed batches) must hold
# their msgs/sec against the committed baseline.
bench-transport: build
	$(GO) run ./cmd/chcbench -benchjson /tmp/chc-bench-transport.json \
		-bench TransportSaturatedLink,TransportSaturatedLinkSingleFrame,TransportSaturatedLinkCompressed \
		-baseline $(BENCH_BASELINE) -max-regress $(TRANSPORT_MAX_REGRESS)

# Allowed instances/sec regression of the WAN/soak service cases. These go
# through a live multi-goroutine daemon, so the bound matches the transport
# gate's coarseness.
WAN_MAX_REGRESS ?= 0.25

# bench-wan is the WAN throughput gate: the shaped submit→decide case and the
# steady-state soak-burst case must hold their instances/sec against the
# committed baseline (skipped silently against baselines that predate them).
bench-wan: build
	$(GO) run ./cmd/chcbench -benchjson /tmp/chc-bench-wan.json \
		-bench WANRegionalDecide,SoakSteadyState \
		-baseline $(BENCH_BASELINE) -max-regress $(WAN_MAX_REGRESS)

experiments:
	$(GO) run ./cmd/chcbench -quick

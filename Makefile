GO ?= go

.PHONY: build test check race soak bench bench-json bench-check experiments

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# check is the tier-1 gate plus static analysis and the race detector over
# the concurrency-heavy packages (networked runtime, reliable links, chaos
# injection, simulator, wire codec).
check: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/runtime/... ./internal/rlink/... ./internal/chaos/... ./internal/dist/... ./internal/wire/... ./internal/wal/... ./internal/engine/... ./internal/multiplex/...

race:
	$(GO) test -race ./...

# soak runs the long chaos matrix (many seeds x heavy profile x crash
# plans) under the race detector. Opt-in: it is too slow for tier-1.
soak:
	CHC_CHAOS_SOAK=1 $(GO) test -race -v -run TestChaosSoak -timeout 20m ./internal/runtime/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# bench-json runs the curated benchmark suite and writes
# BENCH_<git-sha>.json (ns/op, allocs/op, B/op per case) so the perf
# trajectory of the repo is recorded commit by commit.
bench-json: build
	$(GO) run ./cmd/chcbench -benchjson BENCH_$$(git rev-parse --short HEAD).json

# bench-check is the regression gate: re-measure the suite and fail when any
# case is more than 25% slower (ns/op) than the committed seed baseline.
bench-check: build
	$(GO) run ./cmd/chcbench -benchjson /tmp/chc-bench-check.json -baseline BENCH_seed.json

experiments:
	$(GO) run ./cmd/chcbench -quick

package chc_test

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"time"

	"chc"
)

func inputs2D(n int, seed int64) []chc.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]chc.Point, n)
	for i := range pts {
		pts[i] = chc.NewPoint(rng.Float64()*10, rng.Float64()*10)
	}
	return pts
}

func params() chc.Params {
	return chc.Params{
		N: 5, F: 1, D: 2,
		Epsilon:    0.05,
		InputLower: 0, InputUpper: 10,
	}
}

func TestPublicRun(t *testing.T) {
	cfg := chc.RunConfig{
		Params:  params(),
		Inputs:  inputs2D(5, 1),
		Faulty:  []chc.ProcID{1},
		Crashes: []chc.CrashPlan{{Proc: 1, AfterSends: 6}},
		Seed:    1,
	}
	result, err := chc.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := chc.CheckAgreement(result)
	if err != nil || !rep.Holds {
		t.Fatalf("agreement: %+v, %v", rep, err)
	}
	if err := chc.CheckValidity(result, &cfg); err != nil {
		t.Error(err)
	}
	if err := chc.CheckOptimality(result); err != nil {
		t.Error(err)
	}
	iz, err := chc.OptimalityReference(result)
	if err != nil {
		t.Fatal(err)
	}
	if iz.NumVertices() == 0 {
		t.Error("I_Z should be non-empty")
	}
	hull, err := chc.CorrectInputHull(&cfg)
	if err != nil || hull.NumVertices() == 0 {
		t.Errorf("correct hull: %v", err)
	}
}

func TestPublicPolytopeOps(t *testing.T) {
	a, err := chc.NewPolytope([]chc.Point{
		chc.NewPoint(0, 0), chc.NewPoint(2, 0), chc.NewPoint(2, 2), chc.NewPoint(0, 2),
	}, chc.DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Translate(chc.NewPoint(1, 0))
	inter, err := chc.Intersect([]*chc.Polytope{a, b}, chc.DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	vol, err := inter.Volume(chc.DefaultEps)
	if err != nil || math.Abs(vol-2) > 1e-6 {
		t.Errorf("intersection volume = %v, want 2", vol)
	}
	avg, err := chc.AveragePolytopes([]*chc.Polytope{a, b}, chc.DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	d, err := chc.Hausdorff(avg, a.Translate(chc.NewPoint(0.5, 0)), chc.DefaultEps)
	if err != nil || d > 1e-6 {
		t.Errorf("average polytope mismatch: d = %v, %v", d, err)
	}
	lc, err := chc.LinearCombination([]*chc.Polytope{a, b}, []float64{0.25, 0.75}, chc.DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	dmax, err := chc.MaxPairwiseHausdorff([]*chc.Polytope{a, b, lc}, chc.DefaultEps)
	if err != nil || dmax <= 0 {
		t.Errorf("max pairwise = %v, %v", dmax, err)
	}
	if chc.PointPolytope(chc.NewPoint(1)).NumVertices() != 1 {
		t.Error("PointPolytope broken")
	}
}

func TestPublicOptimize(t *testing.T) {
	cfg := chc.RunConfig{
		Params: params(),
		Inputs: inputs2D(5, 2),
		Seed:   2,
	}
	cost := chc.QuadraticCost{Target: chc.NewPoint(5, 5), Scale: 1, Radius: 15}
	res, err := chc.Optimize(cfg, cost, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if spread := res.MaxValueSpread(); spread > 0.5 {
		t.Errorf("value spread %v > beta", spread)
	}
	// Standalone minimisation.
	p, err := chc.NewPolytope(cfg.Inputs, chc.DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	fv, err := chc.Minimize(chc.LinearCost{A: chc.NewPoint(1, 0)}, p, chc.MinimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fv.X == nil {
		t.Error("empty minimiser")
	}
}

func TestPublicVectorConsensus(t *testing.T) {
	cfg := chc.RunConfig{
		Params: params(),
		Inputs: inputs2D(5, 3),
		Seed:   3,
	}
	res, err := chc.RunVectorConsensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.MaxPairwiseDistance(); d > cfg.Params.Epsilon {
		t.Errorf("vector consensus agreement: %v", d)
	}
}

func TestPublicTraceAnalysis(t *testing.T) {
	cfg := chc.RunConfig{
		Params: params(),
		Inputs: inputs2D(5, 4),
		Seed:   4,
	}
	result, err := chc.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := chc.AnalyzeTrace(result)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckLemma3(1e-9); err != nil {
		t.Error(err)
	}
	if err := a.VerifyTheorem1(result, []int{1}, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestPublicSchedulers(t *testing.T) {
	for _, sched := range []chc.Scheduler{
		chc.NewRandomScheduler(),
		chc.NewRoundRobinScheduler(),
		chc.NewDelayScheduler(0),
		chc.NewSplitScheduler(0, 1),
	} {
		cfg := chc.RunConfig{
			Params:    params(),
			Inputs:    inputs2D(5, 5),
			Faulty:    []chc.ProcID{0},
			Seed:      5,
			Scheduler: sched,
		}
		result, err := chc.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := chc.CheckAgreement(result)
		if err != nil || !rep.Holds {
			t.Errorf("agreement under %T: %+v, %v", sched, rep, err)
		}
	}
}

func TestRunNetworkedInProcess(t *testing.T) {
	cfg := chc.RunConfig{
		Params: chc.Params{
			N: 5, F: 1, D: 2,
			Epsilon:    0.5, // fewer rounds: the concurrent run is heavier
			InputLower: 0, InputUpper: 10,
		},
		Inputs: inputs2D(5, 6),
	}
	result, err := chc.RunNetworked(cfg, chc.InProcess, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := chc.CheckAgreement(result)
	if err != nil || !rep.Holds {
		t.Fatalf("agreement: %+v, %v", rep, err)
	}
	if err := chc.CheckValidity(result, &cfg); err != nil {
		t.Error(err)
	}
}

func TestRunNetworkedTCP(t *testing.T) {
	cfg := chc.RunConfig{
		Params: chc.Params{
			N: 4, F: 0, D: 1,
			Epsilon:    0.5,
			InputLower: 0, InputUpper: 10,
		},
		Inputs: []chc.Point{chc.NewPoint(1), chc.NewPoint(4), chc.NewPoint(7), chc.NewPoint(9)},
	}
	result, err := chc.RunNetworked(cfg, chc.TCP, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Outputs) != 4 {
		t.Fatalf("%d outputs, want 4", len(result.Outputs))
	}
	rep, err := chc.CheckAgreement(result)
	if err != nil || !rep.Holds {
		t.Fatalf("agreement: %+v, %v", rep, err)
	}
	if result.Stats.Bytes == 0 {
		t.Error("TCP run should account bytes")
	}
}

func TestRunNetworkedChaos(t *testing.T) {
	cfg := chc.RunConfig{
		Params: chc.Params{
			N: 5, F: 1, D: 2,
			Epsilon:    0.5,
			InputLower: 0, InputUpper: 10,
		},
		Inputs: inputs2D(5, 6),
	}
	result, err := chc.RunNetworked(cfg, chc.InProcess, 60*time.Second,
		chc.WithNetworkChaos(chc.LightChaos(), 4))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := chc.CheckAgreement(result)
	if err != nil || !rep.Holds {
		t.Fatalf("agreement under chaos: %+v, %v", rep, err)
	}
	if err := chc.CheckValidity(result, &cfg); err != nil {
		t.Error(err)
	}
	if result.Stats == nil || result.Stats.Net == nil {
		t.Fatal("chaos run must surface network stats")
	}
	net := result.Stats.Net
	if net.FramesSent == 0 || net.AcksSent == 0 {
		t.Errorf("reliable layer inactive: %+v", net)
	}
	if net.InjectedDrops+net.InjectedDups+net.InjectedDelays == 0 {
		t.Errorf("light chaos injected nothing: %+v", net)
	}
}

func TestPublicBatch(t *testing.T) {
	cfg := chc.BatchConfig{
		N: 5,
		Instances: []chc.BatchInstance{
			{Params: params(), Inputs: inputs2D(5, 30)},
			{Params: params(), Inputs: inputs2D(5, 31)},
		},
		Seed: 30,
	}
	result, err := chc.RunBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Outputs) != 2 {
		t.Fatalf("%d instances, want 2", len(result.Outputs))
	}
	for k, outs := range result.Outputs {
		if len(outs) != 5 {
			t.Errorf("instance %d: %d outputs", k, len(outs))
		}
	}
}

func TestPublicTraceJSON(t *testing.T) {
	cfg := chc.RunConfig{Params: params(), Inputs: inputs2D(5, 32), Seed: 32}
	result, err := chc.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := chc.WriteTraceJSON(&buf, result); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("exported trace is not valid JSON")
	}
}

func TestPublicByzantine(t *testing.T) {
	cfg := chc.ByzantineRunConfig{
		Params: chc.Params{
			N: 5, F: 1, D: 2,
			Epsilon:    0.2,
			InputLower: 0, InputUpper: 10,
		},
		Inputs: inputs2D(5, 8),
		Faults: []chc.ByzantineFault{{Proc: 1, Behavior: chc.ByzEquivocator}},
		Seed:   8,
	}
	result, err := chc.RunByzantine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := chc.CheckByzantineValidity(result, &cfg); err != nil {
		t.Error(err)
	}
	d, holds, err := chc.CheckByzantineAgreement(result)
	if err != nil || !holds {
		t.Errorf("agreement: %v %v %v", d, holds, err)
	}
	if len(result.Correct()) != 4 {
		t.Errorf("Correct() = %v", result.Correct())
	}
}

// TestRunNetworkedCrashRecovery exercises the public crash-recovery path:
// with WithWAL + WithCrashRecovery, a planned crash becomes a
// kill-and-restart fault, and the killed process recovers from its
// write-ahead log and decides like every other correct process.
func TestRunNetworkedCrashRecovery(t *testing.T) {
	cfg := chc.RunConfig{
		Params: chc.Params{
			N: 5, F: 1, D: 2,
			Epsilon:    0.5,
			InputLower: 0, InputUpper: 10,
		},
		Inputs:  inputs2D(5, 6),
		Crashes: []chc.CrashPlan{{Proc: 2, AfterSends: 7}},
	}
	result, err := chc.RunNetworked(cfg, chc.InProcess, 120*time.Second,
		chc.WithWAL(t.TempDir()),
		chc.WithCrashRecovery(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// The killed process recovered: it must have decided, not crashed.
	if result.Crashed[chc.ProcID(2)] {
		t.Fatal("process 2 reported as crashed despite recovery")
	}
	if len(result.Outputs) != 5 {
		t.Fatalf("%d outputs, want 5 (restarted node must decide)", len(result.Outputs))
	}
	rep, err := chc.CheckAgreement(result)
	if err != nil || !rep.Holds {
		t.Fatalf("agreement across restart: %+v, %v", rep, err)
	}
	// No process is faulty here, so validity is against all five inputs.
	if err := chc.CheckValidity(result, &cfg); err != nil {
		t.Error(err)
	}
	if net := result.Stats.Net; net == nil || net.WALAppends == 0 || net.Resumes == 0 {
		t.Errorf("recovery counters missing: %+v", net)
	}
}

// TestRunNetworkedRecoveryValidation pins the option contract: crash
// recovery without a WAL directory is a configuration error.
func TestRunNetworkedRecoveryValidation(t *testing.T) {
	cfg := chc.RunConfig{
		Params: chc.Params{
			N: 5, F: 1, D: 2,
			Epsilon:    0.5,
			InputLower: 0, InputUpper: 10,
		},
		Inputs: inputs2D(5, 6),
	}
	if _, err := chc.RunNetworked(cfg, chc.InProcess, time.Second,
		chc.WithCrashRecovery(time.Millisecond)); err == nil {
		t.Fatal("WithCrashRecovery without WithWAL should error")
	}
}

func TestRunNetworkedBadTransport(t *testing.T) {
	cfg := chc.RunConfig{Params: params(), Inputs: inputs2D(5, 7)}
	if _, err := chc.RunNetworked(cfg, chc.TransportKind(99), time.Second); err == nil {
		t.Error("unknown transport should error")
	}
}
